//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` is used in this workspace; since Rust
//! 1.63 the standard library provides scoped threads, so this shim simply
//! adapts `std::thread::scope` to crossbeam's closure signature (spawned
//! closures receive the scope as an argument).

pub mod thread {
    //! Scoped threads.
    use std::any::Any;

    /// A scope for spawning threads that may borrow from the caller.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish.
        ///
        /// # Errors
        ///
        /// Returns the thread's panic payload if it panicked.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the
        /// scope, so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope; all threads spawned in the scope are joined
    /// before this returns. Unlike crossbeam, a panicking child propagates
    /// the panic instead of returning `Err` (no caller distinguishes).
    ///
    /// # Errors
    ///
    /// Never returns `Err`; the `Result` mirrors crossbeam's signature.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let mut cells = vec![0u32; 8];
        super::thread::scope(|scope| {
            for (i, slot) in cells.iter_mut().enumerate() {
                scope.spawn(move |_| {
                    *slot = i as u32 * 2;
                });
            }
        })
        .expect("scope");
        assert_eq!(cells, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let out = super::thread::scope(|scope| {
            let h = scope.spawn(|inner| inner.spawn(|_| 21).join().map(|v| v * 2).unwrap_or(0));
            h.join().unwrap_or(0)
        })
        .expect("scope");
        assert_eq!(out, 42);
    }
}
