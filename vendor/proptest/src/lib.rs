//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset this workspace's property tests use: `proptest!`,
//! strategies (`any`, ranges, tuples, `Just`, `prop_map`, `prop_oneof!`,
//! `collection::vec`), assertions (`prop_assert*`, `prop_assume!`), and
//! `TestCaseError`. Cases are generated from a per-test deterministic RNG;
//! there is **no shrinking** — a failing case panics with the assertion
//! message directly.

pub mod test_runner {
    //! Test execution support: the case RNG and failure type.

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!`; it does not count.
        Reject,
        /// The case failed an assertion.
        Fail(String),
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// Creates a rejection (alias kept for API familiarity).
        pub fn reject(_msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Reject => write!(f, "case rejected by prop_assume!"),
                TestCaseError::Fail(m) => write!(f, "{m}"),
            }
        }
    }

    /// Deterministic RNG driving case generation (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Creates an RNG seeded from a test name, so every test gets a
        /// stable, distinct stream.
        pub fn deterministic(name: &str) -> TestRng {
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                *slot = z ^ (z >> 31);
            }
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            TestRng { s }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }

        /// Uniform value below `bound` (`bound` = 0 means full range).
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                self.next_u64()
            } else {
                self.next_u64() % bound
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.
    use super::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Filters generated values; rejected values are retried.
        fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, f }
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 consecutive values");
        }
    }

    /// Uniform choice among boxed alternatives ([`prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Creates a union over `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    let off = (rng.next_u64() as u128 % span) as $t;
                    self.start.wrapping_add(off)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    let off = (rng.next_u64() as u128 % span) as $t;
                    lo.wrapping_add(off)
                }
            }
        )*};
    }
    int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategies {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }
}

pub mod arbitrary {
    //! Default strategies per type ([`any`](crate::prelude::any)).
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range generation strategy.
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// Strategy generating arbitrary values of `T`.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors of values from `element`, with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Uniform choice among strategy alternatives producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        // Weights are ignored: arms are drawn uniformly.
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), l, r
        );
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "{}\n  both: {:?}", format!($($fmt)+), l);
    }};
}

/// Rejects the current case (it is regenerated, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Defines property tests: each `#[test]` function body runs for many
/// generated cases. Unlike real proptest there is no shrinking; failures
/// report the assertion message of the first failing case.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                const CASES: u32 = 64;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                let mut accepted = 0u32;
                let mut attempts = 0u32;
                while accepted < CASES {
                    attempts += 1;
                    assert!(
                        attempts <= CASES * 20,
                        "proptest {}: too many prop_assume! rejections",
                        stringify!($name)
                    );
                    $( let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng); )*
                    let outcome =
                        (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("property {} failed (case {}):\n{}", stringify!($name), accepted, msg);
                        }
                    }
                }
            }
        )*
    };
}

pub mod prelude {
    //! Common imports for property tests.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace alias matching `proptest::prop::...` usage.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples((a, b) in (0u8..10, 5u64..6), v in crate::collection::vec(any::<u8>(), 0..4)) {
            prop_assert!(a < 10);
            prop_assert_eq!(b, 5);
            prop_assert!(v.len() < 4);
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![
            (0u32..5).prop_map(|v| v * 2),
            Just(100u32),
        ]) {
            prop_assert!(x == 100 || x < 10);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..4) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }
    }

    #[test]
    #[should_panic(expected = "property failing_case failed")]
    fn failures_panic_with_message() {
        proptest! {
            #[allow(unused)]
            fn failing_case(n in 0u32..1) {
                prop_assert_eq!(n, 99);
            }
        }
        failing_case();
    }
}
