//! Derive macros for the vendored `serde` stand-in.
//!
//! Implemented without `syn`/`quote` (unavailable offline): the input item
//! is parsed directly from the `proc_macro` token stream, and the generated
//! impls are rendered as strings. Supports the two shapes this workspace
//! derives: structs with named fields and enums with unit variants.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

/// Extracts the item kind, name, and field/variant names from a derive
/// input stream, skipping attributes (including doc comments).
fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    let mut kind: Option<String> = None;
    let mut name: Option<String> = None;
    let mut body: Option<TokenStream> = None;
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Skip the attribute's bracket group.
                tokens.next();
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                match s.as_str() {
                    "pub" | "crate" => {}
                    "struct" | "enum" if kind.is_none() => kind = Some(s),
                    _ if kind.is_some() && name.is_none() => name = Some(s),
                    _ => {}
                }
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace && name.is_some() => {
                body = Some(g.stream());
                break;
            }
            _ => {}
        }
    }
    let kind = kind.expect("derive input must be a struct or enum");
    let name = name.expect("item must have a name");
    let body = body.expect("item must have a braced body (tuple/unit shapes unsupported)");
    let chunks = split_top_level_commas(body);
    if kind == "struct" {
        let fields = chunks.iter().map(|c| field_name(c)).collect();
        Item::Struct { name, fields }
    } else {
        let variants = chunks.iter().map(|c| variant_name(c)).collect();
        Item::Enum { name, variants }
    }
}

/// Splits a brace-group body on commas, ignoring commas nested inside
/// angle brackets (generic arguments like `HashMap<K, V>`).
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if !current.is_empty() {
                        chunks.push(std::mem::take(&mut current));
                    }
                    continue;
                }
                _ => {}
            }
        }
        current.push(tt);
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// The field name is the identifier immediately before the first `:` of
/// the chunk (skipping attributes and visibility).
fn field_name(chunk: &[TokenTree]) -> String {
    let mut prev_ident: Option<String> = None;
    let mut i = 0;
    while i < chunk.len() {
        match &chunk[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 1, // skip attr group next
            TokenTree::Punct(p) if p.as_char() == ':' => {
                return prev_ident.expect("field name before `:`");
            }
            TokenTree::Ident(id) => prev_ident = Some(id.to_string()),
            _ => {}
        }
        i += 1;
    }
    panic!("could not find a named field in derive input (tuple fields unsupported)");
}

/// The variant name is the first identifier of the chunk; data-carrying
/// variants are rejected.
fn variant_name(chunk: &[TokenTree]) -> String {
    let mut name = None;
    let mut i = 0;
    while i < chunk.len() {
        match &chunk[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 1,
            TokenTree::Ident(id) if name.is_none() => name = Some(id.to_string()),
            TokenTree::Group(_) => {
                panic!("serde derive (vendored) supports only fieldless enum variants")
            }
            _ => {}
        }
        i += 1;
    }
    name.expect("enum variant name")
}

/// Derives `serde::Serialize` (vendored value-model flavor).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Value::Map(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => serde::Value::Str(\"{v}\".to_string()),"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (vendored value-model flavor).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: serde::field(v, \"{f}\")?,"))
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<{name}, serde::Error> {{\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<{name}, serde::Error> {{\n\
                         match v {{\n\
                             serde::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => Err(serde::Error::msg(format!(\n\
                                     \"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             _ => Err(serde::Error::msg(\"expected string for enum {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().expect("generated Deserialize impl parses")
}
