//! Offline stand-in for the `serde` crate.
//!
//! crates.io is unreachable in this build environment, so the workspace
//! vendors a minimal serialization framework under serde's names. Instead
//! of serde's visitor architecture, values convert to and from a single
//! self-describing [`Value`] tree; `serde_json` (also vendored) renders
//! that tree as JSON. The `#[derive(serde::Serialize, serde::Deserialize)]`
//! macros are provided by the vendored `serde_derive` and support named
//! structs and fieldless enums — exactly the shapes this workspace derives.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value: the interchange format between typed data and
/// concrete encodings (JSON via the vendored `serde_json`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Creates an error with the given message.
    pub fn msg(m: impl Into<String>) -> Error {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can convert themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs a value of this type from a value tree.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] if the tree has the wrong shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

pub mod de {
    //! Deserialization traits (naming-compatible subset).

    /// Marker for types deserializable without borrowing from the input;
    /// with this framework's owned [`Value`](crate::Value) tree, that is
    /// every [`Deserialize`](crate::Deserialize) type.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// Extracts and deserializes field `name` from a [`Value::Map`]. Used by
/// derived `Deserialize` impls.
///
/// # Errors
///
/// Returns an [`Error`] if the field is missing or has the wrong shape.
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get(name) {
        Some(inner) => T::from_value(inner),
        None => Err(Error::msg(format!("missing field `{name}`"))),
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let n = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    Value::F64(f) if f >= 0.0 && f.fract() == 0.0 => f as u64,
                    _ => return Err(Error::msg(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let n = match *v {
                    Value::U64(n) => i64::try_from(n).map_err(|_| Error::msg("overflow"))?,
                    Value::I64(n) => n,
                    Value::F64(f) if f.fract() == 0.0 => f as i64,
                    _ => return Err(Error::msg(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, Error> {
        match *v {
            Value::F64(f) => Ok(f),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            _ => Err(Error::msg("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::msg("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// String-keyed maps serialize as JSON objects. BTreeMap iterates in key
// order, so the emitted JSON is deterministic — which is what lets
// machine-readable benchmark files be diffed byte for byte.
impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<std::collections::BTreeMap<String, V>, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::msg("expected map")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip_through_value() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-3i64).to_value()), Ok(-3));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            Vec::<u32>::from_value(&vec![1u32, 2].to_value()),
            Ok(vec![1, 2])
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null), Ok(None));
    }

    #[test]
    fn wrong_shapes_error() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(bool::from_value(&Value::U64(1)).is_err());
        assert!(field::<u64>(&Value::Map(vec![]), "missing").is_err());
    }

    #[test]
    fn string_keyed_btreemap_roundtrips_in_key_order() {
        let mut m = std::collections::BTreeMap::new();
        m.insert("zeta".to_string(), 1u64);
        m.insert("alpha".to_string(), 2u64);
        let v = m.to_value();
        match &v {
            Value::Map(entries) => {
                let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, vec!["alpha", "zeta"], "must serialize sorted");
            }
            _ => panic!("expected map"),
        }
        assert_eq!(
            std::collections::BTreeMap::<String, u64>::from_value(&v),
            Ok(m)
        );
        assert!(std::collections::BTreeMap::<String, u64>::from_value(&Value::U64(1)).is_err());
    }
}
