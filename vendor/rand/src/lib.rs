//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, API-compatible subset of `rand 0.8`: `RngCore`,
//! `Rng` (`gen`, `gen_range`, `gen_bool`), `SeedableRng::seed_from_u64`,
//! and `rngs::StdRng` backed by xoshiro256++ (seeded via SplitMix64).
//! Streams differ from the real `StdRng`, but every use in this workspace
//! only needs deterministic, well-distributed values.

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete RNG implementations.
    use super::{RngCore, SeedableRng};

    /// Deterministic RNG (xoshiro256++; not the real `StdRng` stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = StdRng::splitmix(&mut state);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

pub mod distributions {
    //! The standard distribution and uniform range sampling.
    use super::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// A distribution of values of type `T`.
    pub trait Distribution<T> {
        /// Samples one value.
        fn sample<R: RngCore>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution: uniform over all values of the type
    /// (floats: uniform in `[0, 1)`).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    macro_rules! std_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    std_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: RngCore>(&self, rng: &mut R) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl<const N: usize> Distribution<[u8; N]> for Standard {
        fn sample<R: RngCore>(&self, rng: &mut R) -> [u8; N] {
            let mut out = [0u8; N];
            rng.fill_bytes(&mut out);
            out
        }
    }

    /// Ranges that can be sampled from uniformly.
    pub trait SampleRange<T> {
        /// Samples one value from the range.
        ///
        /// # Panics
        ///
        /// Panics if the range is empty.
        fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
    }

    macro_rules! range_int {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    // Modulo bias is negligible for the spans used here.
                    let offset = ((rng.next_u64() as u128) % span) as $t;
                    self.start.wrapping_add(offset)
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                    if span == 0 {
                        // Full-width inclusive range: every value is valid.
                        return rng.next_u64() as $t;
                    }
                    let offset = ((rng.next_u64() as u128) % span) as $t;
                    lo.wrapping_add(offset)
                }
            }
        )*};
    }
    range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleRange<f64> for Range<f64> {
        fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(5u64..=6);
            assert!((5..=6).contains(&w));
            let f = r.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }
}
