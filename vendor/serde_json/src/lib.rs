//! Offline stand-in for `serde_json`, rendering the vendored `serde`
//! value model as JSON text and parsing it back.

use serde::{Serialize, Value};

pub use serde::Error;

/// Serializes `value` as a JSON string.
///
/// # Errors
///
/// Returns an [`Error`] if the value contains a non-finite float.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Deserializes a value from a JSON string.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg("trailing characters"));
    }
    T::from_value(&v)
}

fn write_value(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if !f.is_finite() {
                return Err(Error::msg("JSON cannot represent non-finite floats"));
            }
            // Rust's Display for f64 is shortest-round-trip, so the value
            // survives to_string/from_str exactly.
            let s = f.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b" \t\n\r".contains(b))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::msg("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    entries.push((key, self.value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::msg("expected `,` or `}` in object")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::msg(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::msg("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| Error::msg("bad UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::msg("bad float"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::msg("bad integer"))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::msg("bad integer"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&42u64).expect("ser"), "42");
        assert_eq!(from_str::<u64>("42").expect("de"), 42);
        assert_eq!(to_string(&20.0f64).expect("ser"), "20.0");
        assert_eq!(from_str::<f64>("20.0").expect("de"), 20.0);
        assert_eq!(
            from_str::<f64>(&to_string(&0.1f64).expect("ser")).expect("de"),
            0.1
        );
        assert_eq!(from_str::<i64>("-7").expect("de"), -7);
        assert!(from_str::<bool>("true").expect("de"));
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd".to_string();
        let json = to_string(&s).expect("ser");
        assert_eq!(from_str::<String>(&json).expect("de"), s);
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v = vec![vec![1u32, 2], vec![3]];
        let json = to_string(&v).expect("ser");
        assert_eq!(from_str::<Vec<Vec<u32>>>(&json).expect("de"), v);
    }

    #[test]
    fn whitespace_tolerated() {
        assert_eq!(
            from_str::<Vec<u8>>(" [ 1 , 2 ,\n3 ] ").expect("de"),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn malformed_rejected() {
        assert!(from_str::<u64>("4 2").is_err());
        assert!(from_str::<Vec<u8>>("[1,").is_err());
        assert!(from_str::<String>("\"open").is_err());
    }
}
