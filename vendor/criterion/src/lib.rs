//! Offline stand-in for the `criterion` crate.
//!
//! Covers the API surface the workspace's micro-benchmarks use
//! (`criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`, `bench_with_input`, `Bencher::iter`). Measurement is
//! a plain mean over `sample_size` timed batches — no warm-up analysis,
//! outlier rejection, or plots — which is enough to eyeball relative
//! costs where the real crate is unavailable.

use std::time::Instant;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark over `input` under this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.criterion.sample_size, &mut |b| f(b, input));
        self
    }

    /// Runs a plain benchmark under this group.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.criterion.sample_size, &mut f);
        self
    }

    /// Finishes the group (no-op here; kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    sample_size: usize,
    mean_ns: Option<f64>,
}

impl Bencher {
    /// Times `f`, recording the mean over the configured samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate a batch size so one sample takes ≳100 µs.
        let mut batch = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let elapsed = t.elapsed().as_nanos() as u64;
            if elapsed >= 100_000 || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let mut total_ns = 0u128;
        let mut iters = 0u128;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            total_ns += t.elapsed().as_nanos();
            iters += u128::from(batch);
        }
        self.mean_ns = Some(total_ns as f64 / iters as f64);
    }
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        sample_size,
        mean_ns: None,
    };
    f(&mut b);
    match b.mean_ns {
        Some(ns) => println!("{label:<40} {ns:>12.1} ns/iter"),
        None => println!("{label:<40} (no measurement)"),
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test`/`cargo bench` pass harness flags; a benchmark
            // binary invoked with `--test` must not run the full suite.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::from_parameter(64), &64u32, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }
}
