#![warn(missing_docs)]

//! Umbrella crate for the DSN 2001 "Byzantine Fault Tolerance Can Be Fast"
//! reproduction. Re-exports the component crates.
//!
//! See the component crates for the real content:
//! - [`bft_core`] — the BFT replication library (the paper's contribution)
//! - [`bft_crypto`] — MD5 / UMAC-style MAC / RSA substrate
//! - [`bft_sim`] — deterministic discrete-event network + CPU simulator
//! - [`bft_fs`] — BFS, the replicated NFS-like file service, and baselines
//! - [`bft_workloads`] — micro-benchmark, Andrew and PostMark workloads

pub use bft_core as core;
pub use bft_crypto as crypto;
pub use bft_fs as fs;
pub use bft_sim as sim;
pub use bft_workloads as workloads;
