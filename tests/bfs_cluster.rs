//! End-to-end BFS: the NFS service replicated with the BFT library, with
//! real file bytes (Store mode), exercised through the kernel-client
//! model — including under Byzantine faults and a primary crash.

use pbft::core::prelude::*;
use pbft::core::wire::Wire;
use pbft::fs::client::{FileAction, NfsClientConfig, NfsClientModel, Step};
use pbft::fs::ops::NfsResult;
use pbft::fs::service::FsService;
use pbft::sim::dur;

/// Drives a list of file actions through the NFS client model over BFT.
struct FsDriver {
    actions: Vec<FileAction>,
    at: usize,
    model: NfsClientModel,
    reads: Vec<Vec<u8>>,
    read_buf: Vec<u8>,
    done: bool,
}

impl FsDriver {
    fn new(actions: Vec<FileAction>) -> FsDriver {
        FsDriver {
            actions,
            at: 0,
            model: NfsClientModel::new(NfsClientConfig {
                // Disable the data cache so reads hit the replicas and we
                // verify real replicated bytes.
                data_cache_bytes: 0,
                ..NfsClientConfig::default()
            }),
            reads: Vec::new(),
            read_buf: Vec::new(),
            done: false,
        }
    }

    fn pump(&mut self, api: &mut ClientApi<'_, '_>, mut step: Option<Step>) {
        loop {
            match step.take() {
                Some(Step::Rpc(op)) => {
                    let ro = op.is_read_only();
                    api.submit(op.to_bytes(), ro);
                    return;
                }
                Some(Step::Done { failed, .. }) => {
                    assert!(!failed, "file action failed");
                    if !self.read_buf.is_empty() {
                        self.reads.push(std::mem::take(&mut self.read_buf));
                    }
                }
                None => {}
            }
            let Some(action) = self.actions.get(self.at) else {
                self.done = true;
                return;
            };
            self.at += 1;
            step = Some(self.model.begin(action.clone()));
        }
    }
}

impl ClientDriver for FsDriver {
    fn on_start(&mut self, api: &mut ClientApi<'_, '_>) {
        self.pump(api, None);
    }
    fn on_complete(&mut self, api: &mut ClientApi<'_, '_>, result: &[u8], _lat: u64) {
        let response = NfsResult::from_bytes(result).expect("valid NFS result");
        if let NfsResult::Data { data, .. } = &response {
            self.read_buf.extend_from_slice(data);
        }
        let step = self.model.next(&response);
        self.pump(api, Some(step));
    }
}

fn workload() -> Vec<FileAction> {
    vec![
        FileAction::Mkdir("home".into()),
        FileAction::CreateFile("home/a.txt".into(), 5000),
        FileAction::CreateFile("home/b.txt".into(), 100),
        FileAction::ReadFile("home/a.txt".into()),
        FileAction::Append("home/a.txt".into(), 2000),
        FileAction::ReadFile("home/a.txt".into()),
        FileAction::Remove("home/b.txt".into()),
        FileAction::ListDir("home".into()),
    ]
}

fn bfs_cluster(seed: u64) -> Cluster {
    Cluster::builder(Config::new(1))
        .seed(seed)
        .net(NetConfig::SWITCHED_100MBPS)
        .build(|_| FsService::in_memory())
}

fn check_run(cluster: &Cluster, client: u32) {
    let driver = cluster.client::<FsDriver>(client).driver();
    assert!(
        driver.done,
        "workload incomplete at {:?}/{:?}",
        driver.at,
        driver.actions.len()
    );
    assert_eq!(driver.reads.len(), 2);
    assert_eq!(
        driver.reads[0].len(),
        5000,
        "first read sees the initial bytes"
    );
    assert_eq!(driver.reads[1].len(), 7000, "second read sees the append");
    // All replicas agree on the filesystem state.
    let digests: Vec<_> = (0..4)
        .map(|r| cluster.replica::<FsService>(r).service().state_digest())
        .collect();
    let agreeing = digests.iter().filter(|&&d| d == digests[0]).count();
    assert!(agreeing >= 3, "replica states diverged: {digests:?}");
}

#[test]
fn bfs_workload_end_to_end() {
    let mut cluster = bfs_cluster(1);
    let client = cluster.add_client(FsDriver::new(workload()));
    cluster.run_for(dur::secs(5));
    check_run(&cluster, client);
}

#[test]
fn bfs_survives_byzantine_replica() {
    let mut cluster = bfs_cluster(2);
    cluster
        .replica_mut::<FsService>(1)
        .set_behavior(Behavior::WrongResult);
    let client = cluster.add_client(FsDriver::new(workload()));
    cluster.run_for(dur::secs(10));
    let driver = cluster.client::<FsDriver>(client).driver();
    assert!(driver.done);
    assert_eq!(driver.reads[0].len(), 5000);
    assert_eq!(driver.reads[1].len(), 7000);
}

#[test]
fn bfs_survives_primary_crash_mid_workload() {
    let mut cluster = bfs_cluster(3);
    let client = cluster.add_client(FsDriver::new(workload()));
    // Let a couple of RPCs through, then kill the primary.
    cluster.run_for(dur::millis(2));
    cluster
        .replica_mut::<FsService>(0)
        .set_behavior(Behavior::Crashed);
    cluster.run_for(dur::secs(20));
    check_run_after_crash(&cluster, client);
}

fn check_run_after_crash(cluster: &Cluster, client: u32) {
    let driver = cluster.client::<FsDriver>(client).driver();
    assert!(driver.done, "workload must finish under the new primary");
    assert_eq!(driver.reads[0].len(), 5000);
    assert_eq!(driver.reads[1].len(), 7000);
    for r in 1..4 {
        assert!(cluster.replica::<FsService>(r).view() >= 1);
    }
}

#[test]
fn bfs_deterministic_across_seedless_replays() {
    let run = |seed| {
        let mut cluster = bfs_cluster(seed);
        let client = cluster.add_client(FsDriver::new(workload()));
        cluster.run_for(dur::secs(5));
        let d = cluster.replica::<FsService>(0).service().state_digest();
        (d, cluster.client::<FsDriver>(client).driver().reads.clone())
    };
    assert_eq!(run(9), run(9));
}
