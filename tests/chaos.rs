//! Chaos testing: seeded random fault schedules (partitions, healing,
//! loss bursts, delay spikes) applied while clients run, with full
//! linearizability checking afterwards. Every schedule is deterministic
//! in its seed, so a failure here is exactly reproducible.

use pbft::core::fuzz;
use pbft::core::prelude::*;
use pbft::sim::dur;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Incrementer {
    target: u64,
    seen: Vec<u64>,
}

impl ClientDriver for Incrementer {
    fn on_start(&mut self, api: &mut ClientApi<'_, '_>) {
        api.submit(CounterService::add_op(1), false);
    }
    fn on_complete(&mut self, api: &mut ClientApi<'_, '_>, result: &[u8], _lat: u64) {
        self.seen
            .push(u64::from_le_bytes(result.try_into().expect("8 bytes")));
        if (self.seen.len() as u64) < self.target {
            api.submit(CounterService::add_op(1), false);
        }
    }
}

/// One random fault event applied between simulation slices.
#[derive(Debug)]
enum Chaos {
    PartitionPair(u32, u32),
    Heal,
    LossBurst(f64),
    LossOff,
    Delay(u64),
    DelayOff,
}

fn random_chaos(rng: &mut StdRng, n: u32) -> Chaos {
    match rng.gen_range(0..6) {
        0 => Chaos::PartitionPair(rng.gen_range(0..n), rng.gen_range(0..n)),
        1 => Chaos::Heal,
        2 => Chaos::LossBurst(rng.gen_range(0.01..0.10)),
        3 => Chaos::LossOff,
        4 => Chaos::Delay(dur::micros(rng.gen_range(100..3_000))),
        _ => Chaos::DelayOff,
    }
}

/// Runs `clients × per_client` increments under a random fault schedule
/// and checks the history is linearizable.
fn chaos_run(seed: u64, clients: u32, per_client: u64) {
    let mut cfg = Config::new(1);
    cfg.checkpoint_interval = 32;
    cfg.log_window = 64;
    let mut cluster = Cluster::builder(cfg)
        .seed(seed)
        .net(NetConfig::SWITCHED_100MBPS)
        .build_counter();
    let ids: Vec<u32> = (0..clients)
        .map(|_| {
            cluster.add_client(Incrementer {
                target: per_client,
                seen: Vec::new(),
            })
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc4a0);

    // Fault phase: a new random fault every 200 ms of simulated time. The
    // injector never partitions more than one replica pair at a time, so
    // a quorum always exists *somewhere* once timers fire.
    for _ in 0..25 {
        let chaos = random_chaos(&mut rng, 4);
        match chaos {
            Chaos::PartitionPair(a, b) if a != b => {
                cluster.sim.network_mut().heal();
                cluster.sim.network_mut().partition(a, b);
            }
            Chaos::PartitionPair(..) => {}
            Chaos::Heal => cluster.sim.network_mut().heal(),
            Chaos::LossBurst(p) => cluster.sim.network_mut().set_loss_probability(p),
            Chaos::LossOff => cluster.sim.network_mut().set_loss_probability(0.0),
            Chaos::Delay(ns) => cluster.sim.network_mut().set_extra_delay_ns(ns),
            Chaos::DelayOff => cluster.sim.network_mut().set_extra_delay_ns(0),
        }
        cluster.run_for(dur::millis(200));
    }
    // Quiesce: remove all faults and let everything finish.
    cluster.sim.network_mut().heal();
    cluster.sim.network_mut().set_loss_probability(0.0);
    cluster.sim.network_mut().set_extra_delay_ns(0);
    cluster.run_for(dur::secs(60));

    // Liveness: every op finished. Safety: the union of results is
    // exactly 1..=N with per-client monotonicity.
    let mut all = Vec::new();
    for &id in &ids {
        let seen = &cluster.client::<Incrementer>(id).driver().seen;
        assert_eq!(
            seen.len() as u64,
            per_client,
            "seed {seed}: client {id} finished only {}/{per_client}",
            seen.len()
        );
        for w in seen.windows(2) {
            assert!(w[0] < w[1], "seed {seed}: non-monotone {w:?}");
        }
        all.extend_from_slice(seen);
    }
    all.sort_unstable();
    let n = per_client * clients as u64;
    assert_eq!(
        all,
        (1..=n).collect::<Vec<u64>>(),
        "seed {seed}: history is not linearizable"
    );
}

#[test]
fn chaos_seed_1() {
    chaos_run(1, 4, 30);
}

#[test]
fn chaos_seed_2() {
    chaos_run(2, 4, 30);
}

#[test]
fn chaos_seed_3() {
    chaos_run(3, 6, 20);
}

#[test]
fn chaos_seed_sweep() {
    for seed in 10..18 {
        chaos_run(seed, 3, 15);
    }
}

#[test]
fn chaos_seed_4_with_byzantine_replica() {
    // Random network chaos on top of a lying replica.
    let mut cfg = Config::new(1);
    cfg.checkpoint_interval = 32;
    cfg.log_window = 64;
    let mut cluster = Cluster::builder(cfg)
        .seed(4)
        .net(NetConfig::SWITCHED_100MBPS)
        .build_counter();
    cluster
        .replica_mut::<CounterService>(2)
        .set_behavior(Behavior::WrongResult);
    let ids: Vec<u32> = (0..3)
        .map(|_| {
            cluster.add_client(Incrementer {
                target: 20,
                seen: Vec::new(),
            })
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(0xbad5eed);
    for _ in 0..15 {
        let p = rng.gen_range(0.0..0.05);
        cluster.sim.network_mut().set_loss_probability(p);
        cluster.run_for(dur::millis(200));
    }
    cluster.sim.network_mut().set_loss_probability(0.0);
    cluster.run_for(dur::secs(60));
    let mut all = Vec::new();
    for &id in &ids {
        let seen = &cluster.client::<Incrementer>(id).driver().seen;
        assert_eq!(seen.len(), 20);
        all.extend_from_slice(seen);
    }
    all.sort_unstable();
    assert_eq!(all, (1..=60).collect::<Vec<u64>>());
}

// ---------------------------------------------------------------------
// The deterministic chaos engine (bft_core::fuzz): seed-replayable
// FaultPlan schedules with the full protocol invariant checker running
// after every event. Two tests split the budget so they run in parallel.
// On failure each panics with the seed, the minimized fault plan, and a
// replay command (`CHAOS_SEED=… cargo test -p bft-core --test chaos
// replay_one`). `CHAOS_SCHEDULES` scales the budget (nightly CI).
// ---------------------------------------------------------------------

const ENGINE_BASE_SEED: u64 = 0xCA05_2026;

#[test]
fn fuzz_engine_smoke_a() {
    let total = fuzz::env_u64("CHAOS_SCHEDULES", 120);
    let base = fuzz::env_u64("CHAOS_BASE_SEED", ENGINE_BASE_SEED);
    fuzz::check_schedules(base, total, 0, 2, 1);
}

#[test]
fn fuzz_engine_smoke_b() {
    let total = fuzz::env_u64("CHAOS_SCHEDULES", 120);
    let base = fuzz::env_u64("CHAOS_BASE_SEED", ENGINE_BASE_SEED);
    fuzz::check_schedules(base, total, 1, 2, 1);
}
