//! Linearizability checking: concurrent clients increment a shared
//! counter; the returned running totals must form a permutation-free,
//! gap-free sequence, and each client's view must be monotone — the
//! paper's Section 2 guarantee ("BFT provides linearizability").

use pbft::core::prelude::*;
use pbft::sim::dur;

struct Incrementer {
    target: u64,
    seen: Vec<u64>,
}

impl ClientDriver for Incrementer {
    fn on_start(&mut self, api: &mut ClientApi<'_, '_>) {
        api.submit(CounterService::add_op(1), false);
    }
    fn on_complete(&mut self, api: &mut ClientApi<'_, '_>, result: &[u8], _lat: u64) {
        let v = u64::from_le_bytes(result.try_into().expect("8 bytes"));
        self.seen.push(v);
        if (self.seen.len() as u64) < self.target {
            api.submit(CounterService::add_op(1), false);
        }
    }
}

fn run_and_check(mut tweak: impl FnMut(&mut Cluster), seed: u64, per_client: u64, clients: u32) {
    let mut cluster = Cluster::builder(Config::new(1))
        .seed(seed)
        .net(NetConfig::SWITCHED_100MBPS)
        .build_counter();
    let ids: Vec<u32> = (0..clients)
        .map(|_| {
            cluster.add_client(Incrementer {
                target: per_client,
                seen: Vec::new(),
            })
        })
        .collect();
    tweak(&mut cluster);
    cluster.run_for(dur::secs(30));

    let mut all: Vec<u64> = Vec::new();
    for &id in &ids {
        let seen = &cluster.client::<Incrementer>(id).driver().seen;
        assert_eq!(seen.len() as u64, per_client, "client {id} incomplete");
        // Each increment returns the counter *after* the add, so a
        // client's own results must be strictly increasing.
        for w in seen.windows(2) {
            assert!(w[0] < w[1], "client {id} saw non-monotone results {w:?}");
        }
        all.extend_from_slice(seen);
    }
    // Every add returns a unique total, and together they are exactly
    // 1..=N — increments were applied exactly once, in one global order.
    all.sort_unstable();
    let n = per_client * clients as u64;
    assert_eq!(
        all,
        (1..=n).collect::<Vec<u64>>(),
        "history is not linearizable"
    );
}

#[test]
fn increments_are_linearizable() {
    run_and_check(|_| {}, 11, 20, 8);
}

#[test]
fn linearizable_under_message_loss() {
    run_and_check(
        |cluster| cluster.sim.network_mut().set_loss_probability(0.02),
        12,
        10,
        4,
    );
}

#[test]
fn linearizable_with_byzantine_backup() {
    run_and_check(
        |cluster| {
            cluster
                .replica_mut::<CounterService>(3)
                .set_behavior(Behavior::WrongResult);
        },
        13,
        15,
        4,
    );
}

#[test]
fn linearizable_across_a_view_change() {
    run_and_check(
        |cluster| {
            cluster
                .replica_mut::<CounterService>(0)
                .set_behavior(Behavior::Crashed);
        },
        14,
        10,
        4,
    );
}

#[test]
fn linearizable_without_optimizations() {
    let mut cluster = Cluster::builder(Config::new(1).with_opts(Optimizations::NONE))
        .seed(15)
        .net(NetConfig::SWITCHED_100MBPS)
        .build_counter();
    let ids: Vec<u32> = (0..4)
        .map(|_| {
            cluster.add_client(Incrementer {
                target: 10,
                seen: Vec::new(),
            })
        })
        .collect();
    cluster.run_for(dur::secs(20));
    let mut all: Vec<u64> = Vec::new();
    for &id in &ids {
        all.extend_from_slice(&cluster.client::<Incrementer>(id).driver().seen);
    }
    all.sort_unstable();
    assert_eq!(all, (1..=40).collect::<Vec<u64>>());
}
