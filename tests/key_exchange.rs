//! The NEW-KEY session-key establishment flow (Section 1: "public-key
//! cryptography ... is used only to exchange the symmetric keys").
//!
//! This test performs the full exchange with the real primitives: a
//! principal generates fresh session keys, encrypts one per recipient
//! under the recipient's RSA public key, signs the message, and the
//! recipients verify + decrypt + use the keys for MACs.

use pbft::crypto::rsa::KeyPair;
use pbft::crypto::umac::MacKey;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A NEW-KEY message: per-recipient encrypted session keys, signed.
struct NewKey {
    sender: u32,
    /// (recipient, RSA ciphertext of the 16-byte session key).
    keys: Vec<(u32, Vec<u8>)>,
    signature: pbft::crypto::rsa::Signature,
}

fn signable(sender: u32, keys: &[(u32, Vec<u8>)]) -> Vec<u8> {
    let mut buf = sender.to_le_bytes().to_vec();
    for (r, ct) in keys {
        buf.extend_from_slice(&r.to_le_bytes());
        buf.extend_from_slice(ct);
    }
    buf
}

#[test]
fn new_key_exchange_establishes_working_macs() {
    let mut rng = StdRng::seed_from_u64(0x1e7);
    // Four replicas with long-term RSA keypairs.
    let keypairs: Vec<KeyPair> = (0..4).map(|_| KeyPair::generate(&mut rng, 256)).collect();

    // Replica 0 issues fresh session keys for everyone else.
    let sender = 0u32;
    let mut fresh: Vec<(u32, [u8; 16])> = Vec::new();
    let mut encrypted = Vec::new();
    for r in 1..4u32 {
        let key: [u8; 16] = rng.gen();
        let ct = keypairs[r as usize].public().encrypt(&mut rng, &key);
        fresh.push((r, key));
        encrypted.push((r, ct));
    }
    let signature = keypairs[0].sign(&signable(sender, &encrypted));
    let msg = NewKey {
        sender,
        keys: encrypted,
        signature,
    };

    // Every recipient verifies the signature and recovers its key.
    for (r, expected) in &fresh {
        keypairs[msg.sender as usize]
            .public()
            .verify(&signable(msg.sender, &msg.keys), &msg.signature)
            .expect("signature valid");
        let (_, ct) = msg.keys.iter().find(|(rid, _)| rid == r).expect("entry");
        let recovered = keypairs[*r as usize].decrypt(ct).expect("decrypts");
        assert_eq!(recovered.as_slice(), expected);

        // Both ends derive the same MAC key and can authenticate traffic.
        let k_sender = MacKey::from_bytes(*expected);
        let k_recipient = MacKey::from_bytes(recovered.try_into().expect("16 bytes"));
        let mac = k_sender.mac(b"pre-prepare", 1);
        assert!(k_recipient.verify(b"pre-prepare", 1, &mac.tag));
    }
}

#[test]
fn tampered_new_key_is_rejected() {
    let mut rng = StdRng::seed_from_u64(0x1e8);
    let sender_kp = KeyPair::generate(&mut rng, 256);
    let recipient_kp = KeyPair::generate(&mut rng, 256);
    let key: [u8; 16] = rng.gen();
    let ct = recipient_kp.public().encrypt(&mut rng, &key);
    let keys = vec![(1u32, ct)];
    let signature = sender_kp.sign(&signable(0, &keys));

    // An attacker swaps in a different ciphertext.
    let evil_ct = recipient_kp.public().encrypt(&mut rng, &[0u8; 16]);
    let tampered = vec![(1u32, evil_ct)];
    assert!(
        sender_kp
            .public()
            .verify(&signable(0, &tampered), &signature)
            .is_err(),
        "signature must not cover the forged ciphertext"
    );
}

#[test]
fn recipient_cannot_be_impersonated_without_private_key() {
    let mut rng = StdRng::seed_from_u64(0x1e9);
    let recipient_kp = KeyPair::generate(&mut rng, 256);
    let outsider_kp = KeyPair::generate(&mut rng, 256);
    let key: [u8; 16] = rng.gen();
    let ct = recipient_kp.public().encrypt(&mut rng, &key);
    // The outsider cannot decrypt another principal's session key.
    match outsider_kp.decrypt(&ct) {
        Err(_) => {}
        Ok(got) => assert_ne!(got.as_slice(), key.as_slice()),
    }
}
