//! Scaled-down re-checks of the paper's qualitative claims, fast enough
//! for `cargo test`. The full sweeps live in the bench harness; these
//! guard the shapes against regressions.

use bft_workloads::harness::*;
use pbft::core::config::Config;
use pbft::sim::dur;

fn small_bft_throughput(cfg: Config, clients: u32, shape: OpShape) -> f64 {
    bft_throughput_windowed(cfg, clients, shape, dur::millis(500), dur::millis(800)).ops_per_sec
}

#[test]
fn replication_is_not_orders_of_magnitude_slower() {
    // The paper's thesis: BFT is practical. A small-op invocation costs a
    // small constant factor over an unreplicated server, not the orders
    // of magnitude of signature-based predecessors.
    let bft = bft_latency(Config::new(1), OpShape::rw(8, 8), 30);
    let norep = norep_latency(OpShape::rw(8, 8), 30);
    let slowdown = bft.mean / norep.mean;
    assert!(slowdown > 1.0);
    assert!(slowdown < 8.0, "slowdown {slowdown}");
}

#[test]
fn slowdown_decreases_with_result_size() {
    // Figure 2's shape.
    let small = bft_latency(Config::new(1), OpShape::rw(8, 0), 30).mean
        / norep_latency(OpShape::rw(8, 0), 30).mean;
    let large = bft_latency(Config::new(1), OpShape::rw(8, 8192), 30).mean
        / norep_latency(OpShape::rw(8, 8192), 30).mean;
    assert!(large < small, "slowdown must shrink: {small} -> {large}");
    assert!(large < 2.0, "large-op slowdown must approach the asymptote");
}

#[test]
fn read_only_cuts_latency_roughly_in_half() {
    let rw = bft_latency(Config::new(1), OpShape::rw(8, 8), 30);
    let ro = bft_latency(Config::new(1), OpShape::ro(8, 8), 30);
    assert!(ro.mean < 0.7 * rw.mean, "ro {} vs rw {}", ro.mean, rw.mean);
}

#[test]
fn second_fault_costs_little() {
    // Figure 3's shape: f=2 adds a modest constant.
    let f1 = bft_latency(Config::new(1), OpShape::rw(0, 8), 30);
    let f2 = bft_latency(Config::new(2), OpShape::rw(0, 8), 30);
    let ratio = f2.mean / f1.mean;
    assert!(ratio > 1.0 && ratio < 1.6, "f2/f1 = {ratio}");
}

#[test]
fn digest_replies_beat_the_reply_link_cap() {
    // Figure 4/5's headline: with 4 KB results the unreplicated server is
    // capped by one transmit link; BFT's digest replies spread replies
    // over all replicas and exceed it.
    let bft = small_bft_throughput(Config::new(1), 40, OpShape::rw(0, 4096));
    let norep =
        norep_throughput_windowed(40, OpShape::rw(0, 4096), dur::millis(500), dur::millis(800));
    assert!(
        bft > norep.ops_per_sec,
        "BFT {bft} must beat NO-REP {}",
        norep.ops_per_sec
    );
}

#[test]
fn batching_lifts_saturation_throughput() {
    // Figure 6's shape.
    let mut unbatched_cfg = Config::new(1);
    unbatched_cfg.opts.batching = false;
    let batched = small_bft_throughput(Config::new(1), 40, OpShape::rw(0, 0));
    let unbatched = small_bft_throughput(unbatched_cfg, 40, OpShape::rw(0, 0));
    assert!(
        batched > 1.3 * unbatched,
        "batched {batched} vs unbatched {unbatched}"
    );
}

#[test]
fn separate_transmission_helps_large_requests() {
    // Figure 7's shape.
    let mut no_srt = Config::new(1);
    no_srt.opts.separate_request_transmission = false;
    let with = bft_latency(Config::new(1), OpShape::rw(8192, 8), 30);
    let without = bft_latency(no_srt, OpShape::rw(8192, 8), 30);
    assert!(
        with.mean < 0.85 * without.mean,
        "SRT {} vs no-SRT {}",
        with.mean,
        without.mean
    );
}
