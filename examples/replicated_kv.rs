//! A replicated key-value store built on the BFT library — shows how to
//! implement the [`Service`] trait for your own state machine, including
//! the undo support that tentative execution needs.
//!
//! Run with: `cargo run --example replicated_kv`

use pbft::core::prelude::*;
use pbft::core::service::RestoreError;
use pbft::crypto::md5::{digest_parts, Digest};
use pbft::sim::dur;
use std::collections::BTreeMap;

/// Operations: `set <key> <value>` and `get <key>`, encoded as text for
/// readability (`s<key>=<value>` / `g<key>`).
#[derive(Debug, Default, Clone)]
struct KvStore {
    map: BTreeMap<String, String>,
    /// Undo log for uncommitted operations: (key, previous value).
    undo: Vec<(String, Option<String>)>,
}

impl KvStore {
    fn set_op(key: &str, value: &str) -> Vec<u8> {
        format!("s{key}={value}").into_bytes()
    }

    fn get_op(key: &str) -> Vec<u8> {
        format!("g{key}").into_bytes()
    }

    fn lookup(&self, key: &str) -> Vec<u8> {
        self.map
            .get(key)
            .cloned()
            .unwrap_or_else(|| "<missing>".to_owned())
            .into_bytes()
    }
}

impl Service for KvStore {
    fn execute(&mut self, _client: ClientId, op: &[u8]) -> Vec<u8> {
        let text = String::from_utf8_lossy(op);
        if let Some(rest) = text.strip_prefix('s') {
            if let Some((key, value)) = rest.split_once('=') {
                let prev = self.map.insert(key.to_owned(), value.to_owned());
                self.undo.push((key.to_owned(), prev));
                return b"ok".to_vec();
            }
        }
        if let Some(key) = text.strip_prefix('g') {
            self.undo.push((String::new(), None)); // no-op undo entry
            return self.lookup(key);
        }
        b"bad op".to_vec()
    }

    fn execute_read_only(&self, _client: ClientId, op: &[u8]) -> Vec<u8> {
        let text = String::from_utf8_lossy(op);
        match text.strip_prefix('g') {
            Some(key) => self.lookup(key),
            None => b"bad op".to_vec(),
        }
    }

    fn is_read_only(&self, op: &[u8]) -> bool {
        op.first() == Some(&b'g')
    }

    fn state_digest(&self) -> Digest {
        let mut buf = Vec::new();
        for (k, v) in &self.map {
            buf.extend_from_slice(k.as_bytes());
            buf.push(0);
            buf.extend_from_slice(v.as_bytes());
            buf.push(0);
        }
        digest_parts(&[b"KV", &buf])
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        for (k, v) in &self.map {
            buf.extend_from_slice(format!("{k}={v}\n").as_bytes());
        }
        buf
    }

    fn restore(&mut self, snapshot: &[u8]) -> Result<(), RestoreError> {
        let text = String::from_utf8(snapshot.to_vec()).map_err(|e| RestoreError(e.to_string()))?;
        self.map = text
            .lines()
            .filter_map(|l| l.split_once('='))
            .map(|(k, v)| (k.to_owned(), v.to_owned()))
            .collect();
        self.undo.clear();
        Ok(())
    }

    fn commit_prefix(&mut self, ops: usize) {
        let n = ops.min(self.undo.len());
        self.undo.drain(..n);
    }

    fn rollback_suffix(&mut self, ops: usize) {
        for _ in 0..ops {
            if let Some((key, prev)) = self.undo.pop() {
                if key.is_empty() {
                    continue;
                }
                match prev {
                    Some(v) => self.map.insert(key, v),
                    None => self.map.remove(&key),
                };
            }
        }
    }
}

/// A scripted driver: runs a fixed list of (op, read_only) pairs.
struct Scripted {
    ops: Vec<(Vec<u8>, bool)>,
    at: usize,
    log: Vec<String>,
}

impl Scripted {
    fn next(&mut self, api: &mut ClientApi<'_, '_>) {
        if let Some((op, ro)) = self.ops.get(self.at) {
            self.at += 1;
            api.submit(op.clone(), *ro);
        }
    }
}

impl ClientDriver for Scripted {
    fn on_start(&mut self, api: &mut ClientApi<'_, '_>) {
        self.next(api);
    }
    fn on_complete(&mut self, api: &mut ClientApi<'_, '_>, result: &[u8], _lat: u64) {
        self.log.push(String::from_utf8_lossy(result).into_owned());
        self.next(api);
    }
}

fn main() {
    println!("Replicated key-value store over BFT (4 replicas, f = 1)\n");
    let mut cluster = Cluster::new(7, NetConfig::SWITCHED_100MBPS, Config::new(1), |_| {
        KvStore::default()
    });

    let writer = cluster.add_client(Scripted {
        ops: vec![
            (KvStore::set_op("lang", "rust"), false),
            (KvStore::set_op("paper", "dsn-2001"), false),
            (KvStore::get_op("lang"), true),
            (KvStore::set_op("lang", "still rust"), false),
            (KvStore::get_op("lang"), true),
            (KvStore::get_op("nope"), true),
        ],
        at: 0,
        log: Vec::new(),
    });

    // A Byzantine replica that lies about results cannot fool clients.
    cluster
        .replica_mut::<KvStore>(2)
        .set_behavior(Behavior::WrongResult);
    println!("(replica 2 is Byzantine: it corrupts every result it sends)\n");

    cluster.run_for(dur::secs(3));

    let client = cluster.client::<Scripted>(writer);
    for (i, r) in client.driver().log.iter().enumerate() {
        println!("  result #{i}: {r}");
    }
    assert_eq!(client.driver().log[2], "rust");
    assert_eq!(client.driver().log[4], "still rust");
    assert_eq!(client.driver().log[5], "<missing>");
    println!("\nall results correct despite the lying replica");
}
