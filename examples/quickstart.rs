//! Quickstart: replicate a counter across 4 simulated replicas (f = 1),
//! run a client against it, and inspect what happened.
//!
//! Run with: `cargo run --example quickstart`

use pbft::core::prelude::*;
use pbft::sim::dur;

/// A closed-loop driver that increments the counter `target` times and
/// remembers every result.
struct Incrementer {
    target: u64,
    results: Vec<u64>,
}

impl ClientDriver for Incrementer {
    fn on_start(&mut self, api: &mut ClientApi<'_, '_>) {
        api.submit(CounterService::add_op(1), false);
    }

    fn on_complete(&mut self, api: &mut ClientApi<'_, '_>, result: &[u8], latency_ns: u64) {
        let value = u64::from_le_bytes(result.try_into().expect("8-byte counter"));
        println!(
            "  op #{:<2} -> counter = {:<3} ({} us)",
            self.results.len() + 1,
            value,
            latency_ns / 1_000
        );
        self.results.push(value);
        if (self.results.len() as u64) < self.target {
            api.submit(CounterService::add_op(1), false);
        }
    }
}

fn main() {
    println!("BFT quickstart: 4 replicas (f = 1) on a simulated 100 Mb/s switched Ethernet\n");

    // The paper's default configuration: all optimizations on.
    let cfg = Config::new(1);
    let mut cluster = Cluster::new(42, NetConfig::SWITCHED_100MBPS, cfg, |_| {
        CounterService::default()
    });
    cluster.add_client(Incrementer {
        target: 10,
        results: Vec::new(),
    });

    cluster.run_for(dur::secs(2));

    println!("\ncompleted operations : {}", cluster.completed_ops());
    let lat = cluster.sim.metrics().summary("client.latency");
    println!("mean latency         : {} us", lat.mean as u64 / 1_000);
    println!(
        "messages on the wire : {}",
        cluster.sim.network().stats.delivered
    );
    for r in 0..4 {
        let rep = cluster.replica::<CounterService>(r);
        println!(
            "replica {r}: counter = {:<3} last_executed = {:<3} view = {}",
            rep.service().value(),
            rep.last_executed(),
            rep.view()
        );
    }
    assert_eq!(cluster.completed_ops(), 10);
}
