//! Fault drill: crash the primary mid-run and watch the view change
//! restore service; then let the crashed replica's replacement catch up.
//!
//! Run with: `cargo run --example view_change_drill`

use pbft::core::prelude::*;
use pbft::sim::dur;

struct Forever;

impl ClientDriver for Forever {
    fn on_start(&mut self, api: &mut ClientApi<'_, '_>) {
        api.submit(CounterService::add_op(1), false);
    }
    fn on_complete(&mut self, api: &mut ClientApi<'_, '_>, _r: &[u8], _lat: u64) {
        api.submit(CounterService::add_op(1), false);
    }
}

fn snapshot(cluster: &Cluster, label: &str) {
    println!("--- {label} ---");
    for r in 0..4 {
        let rep = cluster.replica::<CounterService>(r);
        println!(
            "  replica {r}: view = {} last_executed = {:<5} counter = {}",
            rep.view(),
            rep.last_executed(),
            rep.service().value()
        );
    }
    println!("  completed client ops: {}\n", cluster.completed_ops());
}

fn main() {
    println!("View-change drill: 4 replicas, 3 clients, primary crash at t = 100 ms\n");
    let mut cfg = Config::new(1);
    cfg.view_change_timeout_ns = dur::millis(300);
    let mut cluster = Cluster::new(13, NetConfig::SWITCHED_100MBPS, cfg, |_| {
        CounterService::default()
    });
    for _ in 0..3 {
        cluster.add_client(Forever);
    }

    cluster.run_for(dur::millis(100));
    snapshot(&cluster, "before the crash (replica 0 is the primary)");
    let before = cluster.completed_ops();

    cluster
        .replica_mut::<CounterService>(0)
        .set_behavior(Behavior::Crashed);
    println!(">>> replica 0 crashed <<<\n");

    cluster.run_for(dur::secs(3));
    snapshot(&cluster, "after recovery");
    let after = cluster.completed_ops();

    let views: Vec<u64> = (1..4)
        .map(|r| cluster.replica::<CounterService>(r).view())
        .collect();
    println!(
        "surviving replicas moved to views {views:?}; ops resumed: {}",
        after - before
    );
    assert!(
        views.iter().all(|&v| v >= 1),
        "view change must have happened"
    );
    assert!(after > before + 100, "service must keep making progress");
    let vc = cluster
        .sim
        .metrics()
        .counter("replica.view_changes_started");
    println!("view changes started: {vc}");
}
