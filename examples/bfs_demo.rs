//! BFS demo: drive the Byzantine-fault-tolerant NFS service through the
//! kernel-client cache model, then compare the same workload against the
//! unreplicated NO-REP server.
//!
//! Run with: `cargo run --example bfs_demo`

use pbft::core::config::Config;
use pbft::fs::client::NfsClientConfig;
use pbft::fs::disk::ServerMode;
use pbft::fs::FileAction;
use pbft::workloads::harness::{run_bfs, run_direct_fs};
use pbft::workloads::script::{Script, WorkItem};

fn build_script() -> Script {
    let mut items = Vec::new();
    let actions = [
        FileAction::Mkdir("projects".into()),
        FileAction::Mkdir("projects/bft".into()),
        FileAction::CreateFile("projects/bft/paper.tex".into(), 48_000),
        FileAction::CreateFile("projects/bft/results.dat".into(), 120_000),
        FileAction::Stat("projects/bft/paper.tex".into()),
        FileAction::ReadFile("projects/bft/paper.tex".into()),
        FileAction::Append("projects/bft/paper.tex".into(), 6_000),
        FileAction::ListDir("projects/bft".into()),
        FileAction::Remove("projects/bft/results.dat".into()),
        FileAction::ReadFile("projects/bft/paper.tex".into()),
    ];
    for a in actions {
        items.push(WorkItem::Action(a));
        items.push(WorkItem::Mark);
    }
    Script { items }
}

fn main() {
    println!("BFS demo: an NFS workload over BFT vs the unreplicated server\n");
    let client_cfg = NfsClientConfig::default();

    let bfs = run_bfs(Config::new(1), build_script(), client_cfg);
    println!(
        "BFS    (4 replicas): {} actions, {} NFS RPCs, {:.1} ms elapsed",
        bfs.marks,
        bfs.rpcs,
        bfs.elapsed_ns as f64 / 1e6
    );

    let norep = run_direct_fs(ServerMode::NoRep, build_script(), client_cfg);
    println!(
        "NO-REP (1 server)  : {} actions, {} NFS RPCs, {:.1} ms elapsed",
        norep.marks,
        norep.rpcs,
        norep.elapsed_ns as f64 / 1e6
    );

    println!(
        "\nreplication overhead on this metadata-heavy mini-workload: {:.0}%",
        (bfs.elapsed_ns as f64 / norep.elapsed_ns as f64 - 1.0) * 100.0
    );
    assert_eq!(
        bfs.rpcs, norep.rpcs,
        "identical client model, identical RPCs"
    );
    assert!(bfs.elapsed_ns > norep.elapsed_ns);
}
