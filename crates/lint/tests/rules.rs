//! Fixture-based tests: each rule catches its seeded violation, the
//! clean fixture passes every rule, pragmas suppress only when
//! justified, and the workspace scope map matches DESIGN.md §5.11.

use bft_lint::{
    check_source, scope_for, Scope, RULE_CATCHALL, RULE_DECODE, RULE_DETERMINISM, RULE_PRAGMA,
    RULE_QUORUM,
};

const DETERMINISM_FIXTURE: &str = include_str!("fixtures/determinism_violation.rs");
const QUORUM_FIXTURE: &str = include_str!("fixtures/quorum_violation.rs");
const FASTQUORUM_FIXTURE: &str = include_str!("fixtures/fastquorum_violation.rs");
const CATCHALL_FIXTURE: &str = include_str!("fixtures/catchall_violation.rs");
const DECODE_FIXTURE: &str = include_str!("fixtures/decode_violation.rs");
const CLEAN_FIXTURE: &str = include_str!("fixtures/clean.rs");

fn lines_for(findings: &[bft_lint::Finding], rule: &str) -> Vec<u32> {
    findings
        .iter()
        .filter(|fnd| fnd.rule == rule)
        .map(|fnd| fnd.line)
        .collect()
}

#[test]
fn determinism_rule_catches_hash_iteration() {
    let findings = check_source("fixture.rs", DETERMINISM_FIXTURE, Scope::all());
    let lines = lines_for(&findings, RULE_DETERMINISM);
    // `slot.prepares.iter()`, `for &peer in peers`, `.values()`.
    assert_eq!(lines.len(), 3, "findings: {findings:#?}");
    assert!(lines.contains(&10), "iter() on the struct field");
    assert!(lines.contains(&13), "for-in over the HashSet param");
    assert!(lines.contains(&20), "values() on the struct field");
    // The point lookup must not be flagged.
    assert!(!lines.contains(&25));
}

#[test]
fn quorum_rule_catches_inline_thresholds() {
    let findings = check_source("fixture.rs", QUORUM_FIXTURE, Scope::all());
    let lines = lines_for(&findings, RULE_QUORUM);
    assert!(lines.contains(&15), "2 * cfg.f as usize + 1: {findings:#?}");
    assert!(lines.contains(&19), "3 * f + 1");
    assert!(lines.contains(&23), "cfg.f() as usize + 1");
    // Comments mentioning 2f+1 and `frames` arithmetic stay clean.
    assert!(!lines.contains(&2));
    assert!(!lines.contains(&28));
}

#[test]
fn quorum_rule_catches_inline_fast_quorum() {
    let findings = check_source("fixture.rs", FASTQUORUM_FIXTURE, Scope::all());
    let lines = lines_for(&findings, RULE_QUORUM);
    assert!(lines.contains(&21), "cfg.n as usize - cfg.f: {findings:#?}");
    assert!(lines.contains(&25), "cfg.n() - cfg.f()");
    assert!(lines.contains(&29), "bare n - f");
    // `len - f` and `n - skipped` stay clean, as do the comments.
    assert!(!lines.contains(&34), "findings: {findings:#?}");
    assert!(!lines.contains(&39), "findings: {findings:#?}");
    assert!(!lines.contains(&3));
}

#[test]
fn catchall_rule_flags_msg_wildcards_only() {
    let findings = check_source("fixture.rs", CATCHALL_FIXTURE, Scope::all());
    let lines = lines_for(&findings, RULE_CATCHALL);
    assert_eq!(lines, vec![13], "findings: {findings:#?}");
}

#[test]
fn decode_rule_flags_panicking_decoders() {
    let findings = check_source("fixture.rs", DECODE_FIXTURE, Scope::all());
    let lines = lines_for(&findings, RULE_DECODE);
    // Indexing on line 15, indexing + expect on line 16.
    assert!(lines.contains(&15), "findings: {findings:#?}");
    assert!(lines.contains(&16));
    // The assert! in encode() is outside any decoder.
    assert!(!lines.contains(&25));
}

#[test]
fn clean_fixture_passes_every_rule() {
    let findings = check_source("fixture.rs", CLEAN_FIXTURE, Scope::all());
    assert!(findings.is_empty(), "findings: {findings:#?}");
}

#[test]
fn justified_pragma_suppresses_same_line_and_next_line() {
    let src = "\
pub fn size(f: u32) -> u32 {
    // bft-lint: allow(quorum-math) -- fixture exercises the pragma path
    3 * f + 1
}
pub fn size2(f: u32) -> u32 {
    3 * f + 1 // bft-lint: allow(quorum-math) -- trailing form
}
";
    let findings = check_source("fixture.rs", src, Scope::all());
    assert!(findings.is_empty(), "findings: {findings:#?}");
}

#[test]
fn unjustified_pragma_suppresses_nothing_and_is_reported() {
    let src = "\
pub fn size(f: u32) -> u32 {
    // bft-lint: allow(quorum-math)
    3 * f + 1
}
";
    let findings = check_source("fixture.rs", src, Scope::all());
    assert_eq!(lines_for(&findings, RULE_QUORUM), vec![3]);
    assert_eq!(lines_for(&findings, RULE_PRAGMA), vec![2]);
}

#[test]
fn pragma_for_the_wrong_rule_does_not_suppress() {
    let src = "\
pub fn size(f: u32) -> u32 {
    // bft-lint: allow(decode-panic) -- wrong rule entirely
    3 * f + 1
}
";
    let findings = check_source("fixture.rs", src, Scope::all());
    assert_eq!(lines_for(&findings, RULE_QUORUM), vec![3]);
}

#[test]
fn unknown_rule_in_pragma_is_reported() {
    let src = "// bft-lint: allow(made-up-rule) -- nope\n";
    let findings = check_source("fixture.rs", src, Scope::all());
    assert_eq!(lines_for(&findings, RULE_PRAGMA), vec![1]);
}

#[test]
fn cfg_test_modules_are_exempt() {
    let src = "\
pub fn prod() {}
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn scaffolding(f: u32) {
        let m: HashMap<u32, u32> = HashMap::new();
        for (_, _) in m.iter() {}
        let _ = 3 * f + 1;
    }
}
";
    let findings = check_source("fixture.rs", src, Scope::all());
    assert!(findings.is_empty(), "findings: {findings:#?}");
}

#[test]
fn scope_map_matches_design() {
    // types.rs is the one blessed home of quorum arithmetic.
    let types = scope_for("crates/core/src/types.rs");
    assert!(!types.quorum);
    assert!(types.determinism);

    // Observer-only subsystems are outside the determinism scope.
    assert!(!scope_for("crates/sim/src/trace.rs").determinism);
    assert!(!scope_for("crates/sim/src/metrics.rs").determinism);
    assert!(scope_for("crates/sim/src/engine.rs").determinism);
    assert!(scope_for("crates/core/src/replica.rs").determinism);

    // Dispatch and decode scopes.
    assert!(scope_for("crates/core/src/replica.rs").catchall);
    assert!(scope_for("crates/core/src/client.rs").catchall);
    assert!(!scope_for("crates/core/src/messages.rs").catchall);
    assert!(scope_for("crates/core/src/wire.rs").decode);
    assert!(scope_for("crates/core/src/messages.rs").decode);

    // Quorum math is policed everywhere else, including non-protocol
    // crates (keychain.rs regression) and the root package.
    assert!(scope_for("crates/crypto/src/keychain.rs").quorum);
    assert!(scope_for("src/lib.rs").quorum);
    assert!(!scope_for("crates/crypto/src/keychain.rs").determinism);

    // Non-src files are out of scope entirely.
    assert!(scope_for("crates/core/tests/prop.rs").is_empty());
    assert!(scope_for("crates/bench/benches/ablation_view_change.rs").is_empty());
}
