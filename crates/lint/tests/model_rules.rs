//! Fixture-based tests for the phase-2 (cross-file model) rules: each
//! rule catches its seeded violation when the fixtures are mapped onto
//! the anchor paths the rule pairs against, and the clean fixtures pass.

use bft_lint::{
    check_source, check_sources, Finding, Phase, Scope, RULE_COUNTER, RULE_HANDLER, RULE_INVARIANT,
    RULE_LAYERING, RULE_PRAGMA, RULE_SPAN, RULE_TIMER,
};

const MESSAGES: &str = include_str!("fixtures/model/handler_messages.rs");
const MESSAGES_SKEW: &str = include_str!("fixtures/model/handler_messages_skew.rs");
const REPLICA: &str = include_str!("fixtures/model/handler_replica.rs");
const REPLICA_MISSING: &str = include_str!("fixtures/model/handler_replica_missing.rs");
const CLIENT: &str = include_str!("fixtures/model/handler_client.rs");
const HEALTH_TAGS: &str = include_str!("fixtures/model/handler_health.rs");
const TIMER_VIOLATION: &str = include_str!("fixtures/model/timer_violation.rs");
const TIMER_CLEAN: &str = include_str!("fixtures/model/timer_clean.rs");
const SPAN_TRACE: &str = include_str!("fixtures/model/span_trace.rs");
const SPAN_VIOLATION: &str = include_str!("fixtures/model/span_violation.rs");
const SPAN_CLEAN: &str = include_str!("fixtures/model/span_clean.rs");
const INV_VIOLATION: &str = include_str!("fixtures/model/inv_invariants_violation.rs");
const INV_CLEAN: &str = include_str!("fixtures/model/inv_invariants_clean.rs");
const INV_TESTS: &str = include_str!("fixtures/model/inv_tests.rs");
const COUNTER_HEALTH: &str = include_str!("fixtures/model/counter_health.rs");
const COUNTER_VIOLATION: &str = include_str!("fixtures/model/counter_core_violation.rs");
const COUNTER_CLEAN: &str = include_str!("fixtures/model/counter_core_clean.rs");
const LAYERING_VIOLATION: &str = include_str!("fixtures/model/layering_violation.rs");
const LAYERING_CLEAN: &str = include_str!("fixtures/model/layering_clean.rs");

const MESSAGES_PATH: &str = "crates/core/src/messages.rs";
const REPLICA_PATH: &str = "crates/core/src/replica.rs";
const CLIENT_PATH: &str = "crates/core/src/client.rs";
const HEALTH_PATH: &str = "crates/sim/src/health.rs";
const TRACE_PATH: &str = "crates/sim/src/trace.rs";
const INVARIANTS_PATH: &str = "crates/core/src/invariants.rs";

fn check(files: &[(&str, &str)]) -> Vec<Finding> {
    let owned: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    check_sources(&owned, Phase::Model)
}

fn rule_findings<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

// --- handler-coverage ---------------------------------------------------

#[test]
fn handler_clean_fixture_set_passes() {
    let findings = check(&[
        (MESSAGES_PATH, MESSAGES),
        (REPLICA_PATH, REPLICA),
        (CLIENT_PATH, CLIENT),
        (HEALTH_PATH, HEALTH_TAGS),
    ]);
    assert!(findings.is_empty(), "findings: {findings:#?}");
}

#[test]
fn handler_missing_dispatch_arm_is_caught() {
    let findings = check(&[
        (MESSAGES_PATH, MESSAGES),
        (REPLICA_PATH, REPLICA_MISSING),
        (CLIENT_PATH, CLIENT),
    ]);
    let hits = rule_findings(&findings, RULE_HANDLER);
    assert_eq!(hits.len(), 1, "findings: {findings:#?}");
    assert!(hits[0].message.contains("`Msg::Pong` has no dispatch arm"));
    assert!(hits[0].message.contains(REPLICA_PATH));
    // The finding anchors on the variant declaration in messages.rs.
    assert_eq!(hits[0].file, MESSAGES_PATH);
    assert_eq!(hits[0].line, 10);
}

#[test]
fn handler_cfg_test_variant_is_exempt_from_dispatch() {
    // `Msg::Probe` is #[cfg(test)]-only and appears in no dispatcher
    // and no wire map; the clean set above passing already proves the
    // exemption, but pin it explicitly against a lone dispatcher too.
    let findings = check(&[(MESSAGES_PATH, MESSAGES), (REPLICA_PATH, REPLICA)]);
    assert!(
        !findings.iter().any(|f| f.message.contains("Probe")),
        "findings: {findings:#?}"
    );
}

#[test]
fn handler_wire_map_skew_is_caught() {
    let findings = check(&[(MESSAGES_PATH, MESSAGES_SKEW)]);
    let hits = rule_findings(&findings, RULE_HANDLER);
    assert_eq!(hits.len(), 3, "findings: {findings:#?}");
    // Pong's encode tag disagrees with tag()/decode.
    assert!(hits
        .iter()
        .any(|f| f.message.contains("`Msg::Pong` disagrees")
            && f.message.contains("tag()=1, encode=2, decode=1")));
    // Gap is absent from the encode table.
    assert!(hits.iter().any(|f| f
        .message
        .contains("`Msg::Gap` has no wire tag mapping in Wire::encode")));
    // Gap's decode tag collides with Ping's.
    assert!(hits.iter().any(|f| f.message.contains("wire tag 0")
        && f.message.contains("Wire::decode")
        && f.message.contains("`Msg::Gap`")
        && f.message.contains("`Msg::Ping`")));
}

#[test]
fn handler_tag_count_mismatch_is_caught() {
    let skewed_health = HEALTH_TAGS.replace("= 2", "= 3");
    let findings = check(&[
        (MESSAGES_PATH, MESSAGES),
        (REPLICA_PATH, REPLICA),
        (CLIENT_PATH, CLIENT),
        (HEALTH_PATH, &skewed_health),
    ]);
    let hits = rule_findings(&findings, RULE_HANDLER);
    assert_eq!(hits.len(), 1, "findings: {findings:#?}");
    assert!(hits[0].message.contains("TAG_COUNT is 3 but `Msg` has 2"));
    assert_eq!(hits[0].file, HEALTH_PATH);
}

// --- timer-pairing ------------------------------------------------------

#[test]
fn timer_violations_are_caught() {
    let findings = check(&[(REPLICA_PATH, TIMER_VIOLATION)]);
    let hits = rule_findings(&findings, RULE_TIMER);
    assert_eq!(hits.len(), 3, "findings: {findings:#?}");
    assert!(hits.iter().any(|f| f
        .message
        .contains("`TIMER_DEAD` is declared but never armed")
        && f.line == 9));
    assert!(hits.iter().any(|f| f
        .message
        .contains("`TIMER_ORPHAN` is armed via set_timer but no code inspects")
        && f.line == 19));
    assert!(hits
        .iter()
        .any(|f| f.message.contains("never calls cancel_timer") && f.line == 20));
}

#[test]
fn timer_clean_fixture_passes() {
    let findings = check(&[(REPLICA_PATH, TIMER_CLEAN)]);
    assert!(findings.is_empty(), "findings: {findings:#?}");
}

#[test]
fn timer_cross_file_reference_suppresses_pairing() {
    // A token referenced from another file is outside the file-local
    // pairing argument (re-exported base constants).
    let other = "pub fn peek() { let _ = TIMER_ORPHAN; let _ = TIMER_DEAD; }\n";
    let findings = check(&[(REPLICA_PATH, TIMER_VIOLATION), (CLIENT_PATH, other)]);
    let hits = rule_findings(&findings, RULE_TIMER);
    // Only the stored-without-cancel finding remains.
    assert_eq!(hits.len(), 1, "findings: {findings:#?}");
    assert!(hits[0].message.contains("cancel_timer"));
}

// --- span-pairing -------------------------------------------------------

#[test]
fn span_violations_are_caught() {
    let findings = check(&[(TRACE_PATH, SPAN_TRACE), (REPLICA_PATH, SPAN_VIOLATION)]);
    let hits = rule_findings(&findings, RULE_SPAN);
    assert_eq!(hits.len(), 2, "findings: {findings:#?}");
    assert!(
        hits.iter()
            .any(|f| f.message.contains("`TracePhase::Request`")
                && f.message.contains("never closed"))
    );
    assert!(hits
        .iter()
        .any(|f| f.message.contains("`TracePhase::Commit`") && f.message.contains("never opened")));
}

#[test]
fn span_clean_fixture_passes_including_variable_phase() {
    // `exec_phase(tentative)` computes the phase; the rule attributes
    // the variable-phase trace calls through the one-hop helper.
    let findings = check(&[(TRACE_PATH, SPAN_TRACE), (REPLICA_PATH, SPAN_CLEAN)]);
    assert!(findings.is_empty(), "findings: {findings:#?}");
}

// --- invariant-coverage -------------------------------------------------

#[test]
fn invariant_coverage_holes_are_caught() {
    let findings = check(&[
        (INVARIANTS_PATH, INV_VIOLATION),
        ("crates/core/tests/violations.rs", INV_TESTS),
    ]);
    let hits = rule_findings(&findings, RULE_INVARIANT);
    assert_eq!(hits.len(), 3, "findings: {findings:#?}");
    // Beta appears only in Display: never constructed and never tested.
    assert!(hits
        .iter()
        .any(|f| f.message.contains("`Violation::Beta` is never constructed")));
    assert!(hits.iter().any(|f| f
        .message
        .contains("`Violation::Beta` is not referenced by any test")));
    // Gamma is referenced by the test file but no checker constructs it.
    assert!(hits.iter().any(|f| f
        .message
        .contains("`Violation::Gamma` is never constructed")));
    assert!(!hits
        .iter()
        .any(|f| f.message.contains("`Violation::Gamma` is not referenced")));
    // Alpha is fully covered (constructed in check(), tested in cfg(test)).
    assert!(!hits.iter().any(|f| f.message.contains("Alpha")));
}

#[test]
fn invariant_clean_fixture_passes() {
    let findings = check(&[
        (INVARIANTS_PATH, INV_CLEAN),
        ("crates/core/tests/violations.rs", INV_TESTS),
    ]);
    assert!(findings.is_empty(), "findings: {findings:#?}");
}

// --- counter-coverage ---------------------------------------------------

#[test]
fn counter_without_emission_site_is_caught() {
    let findings = check(&[
        (HEALTH_PATH, COUNTER_HEALTH),
        (CLIENT_PATH, COUNTER_VIOLATION),
    ]);
    let hits = rule_findings(&findings, RULE_COUNTER);
    assert_eq!(hits.len(), 1, "findings: {findings:#?}");
    assert!(hits[0].message.contains("`Counter::Retries`"));
    // The `Counter::ALL` table in health.rs itself is not an emission
    // site — only protocol code in crates/core counts.
    assert_eq!(hits[0].file, HEALTH_PATH);
    assert_eq!(hits[0].line, 5);
}

#[test]
fn counter_clean_fixture_passes() {
    let findings = check(&[(HEALTH_PATH, COUNTER_HEALTH), (CLIENT_PATH, COUNTER_CLEAN)]);
    assert!(findings.is_empty(), "findings: {findings:#?}");
}

// --- layering -----------------------------------------------------------

#[test]
fn layering_violations_are_caught() {
    let findings = check(&[(REPLICA_PATH, LAYERING_VIOLATION)]);
    let hits = rule_findings(&findings, RULE_LAYERING);
    assert_eq!(hits.len(), 3, "findings: {findings:#?}");
    let lines: Vec<u32> = hits.iter().map(|f| f.line).collect();
    assert!(lines.contains(&9), "use bft_sim::network::NetConfig");
    assert!(lines.contains(&10), "Simulation in the use tree");
    assert!(lines.contains(&16), "inline bft_sim::Network path");
    // The sanctioned `Context` import must not fire.
    assert!(!hits.iter().any(|f| f.message.contains("`Context`")));
}

#[test]
fn layering_clean_fixture_passes() {
    let findings = check(&[(REPLICA_PATH, LAYERING_CLEAN)]);
    assert!(findings.is_empty(), "findings: {findings:#?}");
}

#[test]
fn layering_harness_modules_are_exempt() {
    // cluster.rs is a sanctioned harness module and may drive the
    // simulator directly.
    let findings = check(&[("crates/core/src/cluster.rs", LAYERING_VIOLATION)]);
    assert!(findings.is_empty(), "findings: {findings:#?}");
}

// --- pragmas across phases ----------------------------------------------

#[test]
fn justified_pragma_suppresses_model_finding() {
    let patched = LAYERING_VIOLATION.replace(
        "use bft_sim::network::NetConfig;",
        "// bft-lint: allow(layering) -- fixture exercises the pragma path\n\
         use bft_sim::network::NetConfig;",
    );
    let findings = check(&[(REPLICA_PATH, &patched)]);
    let hits = rule_findings(&findings, RULE_LAYERING);
    // The NetConfig import is excused; Simulation and Network still fire.
    assert_eq!(hits.len(), 2, "findings: {findings:#?}");
    assert!(rule_findings(&findings, RULE_PRAGMA).is_empty());
}

#[test]
fn stale_pragma_is_reported_when_rule_ran_clean() {
    let patched = LAYERING_CLEAN.replace(
        "use bft_sim::time::dur;",
        "// bft-lint: allow(layering) -- excused a ref that has since been removed\n\
         use bft_sim::time::dur;",
    );
    let findings = check(&[(REPLICA_PATH, &patched)]);
    let hits = rule_findings(&findings, RULE_PRAGMA);
    assert_eq!(hits.len(), 1, "findings: {findings:#?}");
    assert!(hits[0].message.contains("stale pragma"));
}

#[test]
fn pragma_for_unexecuted_phase_is_not_stale() {
    // In a token-phase run the layering rule never executes, so a
    // layering pragma cannot be judged stale.
    let src = "// bft-lint: allow(layering) -- waiting on the host split\n\
               pub fn quiet() {}\n";
    let findings = check_source("crates/core/src/replica.rs", src, Scope::all());
    assert!(findings.is_empty(), "findings: {findings:#?}");
}
