//! Fixture: a file every rule accepts — BTree containers, thresholds via
//! Quorums, exhaustive Msg dispatch, total decode.
use std::collections::{BTreeMap, BTreeSet};

pub struct Quorums {
    pub f: u32,
}

impl Quorums {
    pub fn commit_quorum(&self) -> usize {
        // (The real arithmetic lives in crates/core/src/types.rs, which
        // is exempt; this fixture just calls through.)
        self.f as usize
    }
}

pub enum Msg {
    Request(u32),
    Prepare(u64),
}

pub struct Slot {
    pub prepares: BTreeMap<u32, u64>,
    pub seen: BTreeSet<u32>,
}

pub fn ordered_votes(slot: &Slot, q: &Quorums) -> bool {
    let mut count = 0;
    for (_, _) in slot.prepares.iter() {
        count += 1;
    }
    count >= q.commit_quorum() && !slot.seen.is_empty()
}

pub fn dispatch(msg: Msg) -> u64 {
    match msg {
        Msg::Request(client) => u64::from(client),
        Msg::Prepare(seq) => seq,
    }
}

pub fn decode(bytes: &[u8]) -> Result<u32, String> {
    let raw: [u8; 4] = bytes
        .get(..4)
        .ok_or("truncated")?
        .try_into()
        .map_err(|_| "truncated")?;
    Ok(u32::from_le_bytes(raw))
}
