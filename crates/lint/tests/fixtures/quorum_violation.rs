//! Fixture: inline quorum arithmetic (rule: quorum-math).
//! Doc text like 2f+1 or `3 * f + 1` in comments must NOT be flagged.

pub struct Cfg {
    pub f: u32,
}

impl Cfg {
    pub fn f(&self) -> u32 {
        self.f
    }
}

pub fn commit_quorum_inline(cfg: &Cfg) -> usize {
    2 * cfg.f as usize + 1
}

pub fn group_size_inline(f: u32) -> u32 {
    3 * f + 1
}

pub fn reply_quorum_inline(cfg: &Cfg) -> usize {
    cfg.f() as usize + 1
}

pub fn not_a_threshold(frames: u32) -> u32 {
    // `frames` does not end in the identifier `f`; must NOT be flagged.
    2 * frames + 1
}
