//! Fixture: inline `n - f` participation arithmetic (rule: quorum-math).
//! `n - f` is the classic wrong fast quorum: with 2f+1 view-change
//! quorums its intersection can be a single replica. Prose like `n - f`
//! in comments must NOT be flagged.

pub struct Cfg {
    pub n: u32,
    pub f: u32,
}

impl Cfg {
    pub fn n(&self) -> u32 {
        self.n
    }
    pub fn f(&self) -> u32 {
        self.f
    }
}

pub fn fast_quorum_inline(cfg: &Cfg) -> usize {
    cfg.n as usize - cfg.f as usize
}

pub fn fast_quorum_inline_calls(cfg: &Cfg) -> u32 {
    cfg.n() - cfg.f()
}

pub fn fast_quorum_inline_locals(n: u32, f: u32) -> u32 {
    n - f
}

pub fn not_a_threshold(len: u32, f: u32) -> u32 {
    // The left operand is not the identifier `n`; must NOT be flagged.
    len - f
}

pub fn nor_this(n: u32, skipped: u32) -> u32 {
    // The right operand does not end in `f`; must NOT be flagged.
    n - skipped
}
