//! Fixture (violations): protocol code reaching into unsanctioned
//! simulator internals.
//!
//! Seeded defects: a `use` of the network engine module, a `use` of the
//! `Simulation` driver type, and an inline fully-qualified reference to
//! `bft_sim::Network` — three layering findings. The `Context` import is
//! sanctioned and must not fire.

use bft_sim::network::NetConfig;
use bft_sim::{Context, Simulation};

pub fn attach(sim: &mut Simulation, cfg: NetConfig) {
    let _ = (sim, cfg);
}

pub fn peek(net: &bft_sim::Network) {
    let _ = net;
}

pub fn ok(ctx: &mut Context) {
    let _ = ctx.now();
}
