//! Fixture (violation): protocol code emits `Sent` but never `Retries`.

pub fn send(ctx: &mut Context) {
    ctx.count(Counter::Sent);
}
