//! Fixture (violations): unpaired span edges.
//!
//! Seeded defects: `Request` is opened but never closed; `Commit` is
//! closed but never opened.

pub struct R;

impl R {
    pub fn open_only(&self, ctx: &mut Context) {
        ctx.trace(SpanEdge::Open, TracePhase::Request, TraceMeta::default());
    }

    pub fn close_only(&self, ctx: &mut Context) {
        ctx.trace(SpanEdge::Close, TracePhase::Commit, TraceMeta::default());
    }
}
