//! Fixture (clean): protocol code touching only the sanctioned
//! simulator surface.

use bft_sim::time::dur;
use bft_sim::{Context, NodeId, TimerId};

pub struct Widget {
    timer: Option<TimerId>,
}

pub fn greet(ctx: &mut Context, peer: NodeId) -> Widget {
    let t = ctx.set_timer(dur::ms(10), 0);
    let _ = peer;
    Widget { timer: Some(t) }
}
