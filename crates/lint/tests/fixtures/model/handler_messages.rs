//! Fixture (clean): a `Msg` enum whose wire maps agree, plus a
//! `#[cfg(test)]`-only variant that coverage rules must exempt.

pub struct Ping;
pub struct Pong;
pub struct Probe;

pub enum Msg {
    Ping(Ping),
    Pong(Pong),
    #[cfg(test)]
    Probe(Probe),
}

impl Msg {
    pub fn tag(&self) -> u8 {
        match self {
            Msg::Ping(_) => 0,
            Msg::Pong(_) => 1,
        }
    }

    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Msg::Ping(m) => {
                buf.push(0);
                m.encode(buf);
            }
            Msg::Pong(m) => {
                buf.push(1);
                m.encode(buf);
            }
        }
    }

    pub fn decode(tag: u8) -> Option<Msg> {
        Some(match tag {
            0 => Msg::Ping(Ping),
            1 => Msg::Pong(Pong),
            _ => return None,
        })
    }
}
