//! Fixture (clean): every registered counter has an emission site.

pub fn send(ctx: &mut Context) {
    ctx.count(Counter::Sent);
}

pub fn retry(ctx: &mut Context) {
    ctx.count(Counter::Retries);
}
