//! Fixture (clean): every opened phase is closed, including spans whose
//! phase is computed by a helper (the `exec_phase` handoff pattern).

pub struct R;

impl R {
    fn exec_phase(tentative: bool) -> TracePhase {
        if tentative {
            TracePhase::ExecuteTentative
        } else {
            TracePhase::Execute
        }
    }

    pub fn run(&self, ctx: &mut Context, tentative: bool) {
        ctx.trace(SpanEdge::Open, TracePhase::Request, TraceMeta::default());
        let phase = Self::exec_phase(tentative);
        ctx.trace(SpanEdge::Open, phase, TraceMeta::default());
        ctx.trace(SpanEdge::Close, phase, TraceMeta::default());
        ctx.trace(SpanEdge::Close, TracePhase::Request, TraceMeta::default());
    }

    pub fn also_commit(&self, ctx: &mut Context) {
        ctx.trace(SpanEdge::Open, TracePhase::Commit, TraceMeta::default());
        ctx.trace(SpanEdge::Close, TracePhase::Commit, TraceMeta::default());
    }
}
