//! Fixture (violations): a `Violation` enum with coverage holes.
//!
//! Seeded defects: `Beta` appears only in the Display formatter —
//! never constructed, never tested; `Gamma` is never constructed by a
//! checker (but a test file references it); `Alpha` is fully covered
//! (constructed by `check`, referenced from the cfg(test) module).

use std::fmt;

pub enum Violation {
    Alpha { seq: u64 },
    Beta { detail: String },
    Gamma { replica: u32 },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Alpha { seq } => write!(f, "alpha at {seq}"),
            Violation::Beta { detail } => write!(f, "beta: {detail}"),
            Violation::Gamma { replica } => write!(f, "gamma on {replica}"),
        }
    }
}

pub fn check(seq: u64) -> Result<(), Violation> {
    if seq == 0 {
        return Err(Violation::Alpha { seq });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_fires() {
        assert!(matches!(check(0), Err(Violation::Alpha { .. })));
    }
}
