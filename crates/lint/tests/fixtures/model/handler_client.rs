//! Fixture (clean): client dispatch covering every production variant.

pub fn on_message(msg: Msg) {
    match msg {
        Msg::Ping(_) => {}
        Msg::Pong(_) => {}
    }
}
