//! Fixture: the health counter registry.

pub enum Counter {
    Sent,
    Retries,
}

impl Counter {
    pub const ALL: [Counter; 2] = [Counter::Sent, Counter::Retries];
}
