//! Fixture (violations): skewed wire maps.
//!
//! Seeded defects: `Pong`'s encode tag disagrees with tag()/decode;
//! `Gap` is missing from the encode table entirely; `Gap`'s decode tag
//! collides with `Ping`'s.

pub struct Ping;
pub struct Pong;
pub struct Gap;

pub enum Msg {
    Ping(Ping),
    Pong(Pong),
    Gap(Gap),
}

impl Msg {
    pub fn tag(&self) -> u8 {
        match self {
            Msg::Ping(_) => 0,
            Msg::Pong(_) => 1,
            Msg::Gap(_) => 2,
        }
    }

    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Msg::Ping(m) => {
                buf.push(0);
                m.encode(buf);
            }
            Msg::Pong(m) => {
                buf.push(2);
                m.encode(buf);
            }
            Msg::Gap(_) => {}
        }
    }

    pub fn decode(tag: u8) -> Option<Msg> {
        Some(match tag {
            0 => Msg::Ping(Ping),
            1 => Msg::Pong(Pong),
            0 => Msg::Gap(Gap),
            _ => return None,
        })
    }
}
