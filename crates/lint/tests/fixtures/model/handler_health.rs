//! Fixture: the per-tag array size in the health registry.

pub const TAG_COUNT: usize = 2;
