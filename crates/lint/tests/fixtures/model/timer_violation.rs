//! Fixture (violations): timer tokens out of pairing.
//!
//! Seeded defects: `TIMER_ORPHAN` is armed but nothing inspects the
//! token; `TIMER_DEAD` is declared but never armed; the stored
//! `TIMER_VC` id has no cancel_timer anywhere in the file.

const TIMER_RETRY: u64 = 0;
const TIMER_ORPHAN: u64 = 1;
const TIMER_DEAD: u64 = 2;
const TIMER_VC: u64 = 3;

pub struct Keeper {
    vc_timer: Option<TimerId>,
}

impl Keeper {
    pub fn arm(&mut self, ctx: &mut Context) {
        ctx.set_timer(10, TIMER_RETRY);
        ctx.set_timer(10, TIMER_ORPHAN);
        self.vc_timer = Some(ctx.set_timer(50, TIMER_VC));
    }

    pub fn on_timer(&mut self, token: u64) {
        if token == TIMER_RETRY {
            // retry
        }
        if token == TIMER_VC {
            // view change
        }
    }
}
