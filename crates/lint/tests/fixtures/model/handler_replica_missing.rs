//! Fixture (violation): replica dispatch with the `Pong` arm deleted.

pub fn on_message(msg: Msg) {
    match msg {
        Msg::Ping(_) => {}
    }
}
