//! Fixture: an integration-test file whose `Violation` references count
//! toward the invariant-coverage test side.

#[test]
fn gamma_report() {
    let v = Violation::Gamma { replica: 1 };
    assert_eq!(v.to_string(), "gamma on 1");
}
