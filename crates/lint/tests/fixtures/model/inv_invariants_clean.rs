//! Fixture (clean): every `Violation` variant is constructed by a
//! checker and referenced by a test.

use std::fmt;

pub enum Violation {
    Alpha { seq: u64 },
    Beta { detail: String },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Alpha { seq } => write!(f, "alpha at {seq}"),
            Violation::Beta { detail } => write!(f, "beta: {detail}"),
        }
    }
}

pub fn check(seq: u64, detail: &str) -> Result<(), Violation> {
    if seq == 0 {
        return Err(Violation::Alpha { seq });
    }
    if !detail.is_empty() {
        return Err(Violation::Beta {
            detail: detail.to_string(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_fires() {
        assert!(matches!(check(0, ""), Err(Violation::Alpha { .. })));
    }

    #[test]
    fn beta_fires() {
        assert!(matches!(check(1, "bad"), Err(Violation::Beta { .. })));
    }
}
