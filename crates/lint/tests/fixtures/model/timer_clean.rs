//! Fixture (clean): every armed timer is handled, and the stored
//! one-shot id has a cancel site.

const TIMER_RETRY: u64 = 0;
const TIMER_VC: u64 = 1;

pub struct Keeper {
    vc_timer: Option<TimerId>,
}

impl Keeper {
    pub fn arm(&mut self, ctx: &mut Context) {
        ctx.set_timer(10, TIMER_RETRY);
        if let Some(t) = self.vc_timer.take() {
            ctx.cancel_timer(t);
        }
        self.vc_timer = Some(ctx.set_timer(50, TIMER_VC));
    }

    pub fn on_timer(&mut self, ctx: &mut Context, token: u64) {
        match token {
            TIMER_RETRY => {}
            TIMER_VC => {}
            _ => {}
        }
    }
}
