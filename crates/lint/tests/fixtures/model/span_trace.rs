//! Fixture: the `TracePhase` vocabulary the span rule pairs against.

pub enum TracePhase {
    Request,
    Commit,
    Execute,
    ExecuteTentative,
}
