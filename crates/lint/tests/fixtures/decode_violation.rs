//! Fixture: panicking constructs in untrusted decoders (rule: decode-panic).

pub struct Reader<'a> {
    pub data: &'a [u8],
    pub pos: usize,
}

pub struct Thing {
    pub tag: u8,
    pub value: u32,
}

impl Thing {
    pub fn decode(r: &mut Reader<'_>) -> Result<Thing, String> {
        let tag = r.data[r.pos];
        let raw: [u8; 4] = r.data[r.pos + 1..r.pos + 5].try_into().expect("4 bytes");
        Ok(Thing {
            tag,
            value: u32::from_le_bytes(raw),
        })
    }

    pub fn encode(&self, out: &mut Vec<u8>) {
        // Panics outside decode paths are out of scope for this rule.
        assert!(out.len() < 1024);
        out.push(self.tag);
    }
}
