//! Fixture: hash-ordered iteration in a protocol path (rule: determinism).
use std::collections::{HashMap, HashSet};

pub struct Slot {
    pub prepares: HashMap<u32, u64>,
}

pub fn broadcast_order(slot: &Slot, peers: &HashSet<u32>) -> Vec<u32> {
    let mut out = Vec::new();
    for (&replica, _) in slot.prepares.iter() {
        out.push(replica);
    }
    for &peer in peers {
        out.push(peer);
    }
    out
}

pub fn first_vote(slot: &Slot) -> Option<u64> {
    slot.prepares.values().next().copied()
}

pub fn lookup_only(slot: &Slot, replica: u32) -> Option<u64> {
    // Point lookups are order-independent and must NOT be flagged.
    slot.prepares.get(&replica).copied()
}
