//! Fixture: wildcard arm in a Msg dispatch (rule: catch-all).

pub enum Msg {
    Request(u32),
    Prepare(u64),
    Commit(u64),
}

pub fn dispatch(msg: Msg) -> u64 {
    match msg {
        Msg::Request(client) => u64::from(client),
        Msg::Prepare(seq) => seq,
        _ => 0,
    }
}

pub fn timer_token(token: u64) -> u64 {
    // A wildcard over a plain integer is fine; must NOT be flagged.
    match token {
        1 => 10,
        _ => 0,
    }
}
