//! Reality-anchored tests: the cross-file rules are exercised against
//! the actual workspace sources, not just fixtures. These pin three
//! things the fixture suite cannot: the item-model extractor parses
//! every real file, the workspace is currently clean under all ten
//! rules, and handler-coverage genuinely fires when a real dispatch
//! arm is deleted (the rule watches reality, not a toy grammar).

use bft_lint::lexer::lex;
use bft_lint::model::FileModel;
use bft_lint::{check_sources, check_workspace, Phase};
use std::path::{Path, PathBuf};

/// The repository root, two levels up from crates/lint.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf()
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("readable dir") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "fixtures") {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
}

fn workspace_files() -> Vec<(String, String)> {
    let root = workspace_root();
    let mut files = Vec::new();
    for entry in std::fs::read_dir(root.join("crates")).expect("crates dir") {
        let krate = entry.expect("dir entry").path();
        for sub in ["src", "tests"] {
            let dir = krate.join(sub);
            if dir.is_dir() {
                collect_rs(&dir, &mut files);
            }
        }
    }
    files.sort();
    files
        .into_iter()
        .map(|p| {
            let rel = p
                .strip_prefix(&root)
                .expect("workspace-relative path")
                .to_string_lossy()
                .replace('\\', "/");
            let src = std::fs::read_to_string(&p).expect("readable source");
            (rel, src)
        })
        .collect()
}

fn read_rel(rel: &str) -> String {
    std::fs::read_to_string(workspace_root().join(rel)).expect("readable workspace file")
}

/// The model extractor round-trips every workspace file: the lexer's
/// delimiter stream balances and extraction never panics or bails.
#[test]
fn model_extractor_round_trips_every_workspace_file() {
    let files = workspace_files();
    assert!(
        files.len() > 20,
        "workspace scan looks wrong: only {} files",
        files.len()
    );
    let mut unbalanced = Vec::new();
    for (rel, src) in &files {
        let lexed = lex(src);
        let model = FileModel::build(rel, src, lexed.tokens, lexed.comments);
        if !model.balanced {
            unbalanced.push(rel.clone());
        }
    }
    assert!(unbalanced.is_empty(), "unbalanced files: {unbalanced:?}");
}

/// The anchor files the cross-file rules pair against actually yield
/// the items the rules look up — a rename would silently disarm them.
#[test]
fn anchor_items_exist_in_the_real_sources() {
    let files = workspace_files();
    let model_of = |rel: &str| {
        let (path, src) = files
            .iter()
            .find(|(p, _)| p == rel)
            .unwrap_or_else(|| panic!("{rel} missing from workspace scan"));
        let lexed = lex(src);
        FileModel::build(path, src, lexed.tokens, lexed.comments)
    };
    let msgs = model_of("crates/core/src/messages.rs");
    let msg = msgs.enum_def("Msg").expect("Msg enum in messages.rs");
    assert!(msg.variants.len() >= 20, "Msg should be a large enum");
    let inv = model_of("crates/core/src/invariants.rs");
    assert!(inv.enum_def("Violation").is_some());
    let trace = model_of("crates/sim/src/trace.rs");
    assert!(trace.enum_def("TracePhase").is_some());
    let health = model_of("crates/sim/src/health.rs");
    assert!(health.enum_def("Counter").is_some());
}

/// The workspace is clean under all ten rules. This is the same check
/// CI runs via `bft-lint --check`; keeping it as a test means `cargo
/// test` alone catches a regression.
#[test]
fn workspace_is_clean_under_all_rules() {
    let findings = check_workspace(&workspace_root(), Phase::All).expect("workspace scan");
    assert!(findings.is_empty(), "findings: {findings:#?}");
}

/// Directed regression: delete a real dispatch arm from the real
/// client.rs and handler-coverage must fire, naming the variant. The
/// client's explicit-rejection arm is the variant's ONLY mention in
/// that file, so deleting it is exactly the forgotten-arm scenario the
/// rule exists for. This pins the rule against reality — if the
/// dispatch idiom drifts away from what the scanner recognizes, this
/// test fails before the rule silently goes blind.
#[test]
fn handler_coverage_fires_when_a_real_dispatch_arm_is_deleted() {
    let messages = read_rel("crates/core/src/messages.rs");
    let replica = read_rel("crates/core/src/replica.rs");
    let client = read_rel("crates/core/src/client.rs");
    let health = read_rel("crates/sim/src/health.rs");

    const ARM: &str = "| Msg::PrePrepare(_)";
    assert!(
        client.contains(ARM),
        "expected the PrePrepare rejection arm in client.rs; update ARM if it moved"
    );

    let baseline = check_sources(
        &[
            ("crates/core/src/messages.rs".into(), messages.clone()),
            ("crates/core/src/replica.rs".into(), replica.clone()),
            ("crates/core/src/client.rs".into(), client.clone()),
            ("crates/sim/src/health.rs".into(), health.clone()),
        ],
        Phase::Model,
    );
    let baseline_handler: Vec<_> = baseline
        .iter()
        .filter(|f| f.rule == "handler-coverage")
        .collect();
    assert!(
        baseline_handler.is_empty(),
        "real sources should be clean: {baseline_handler:#?}"
    );

    let broken = client.replace(ARM, "");
    let findings = check_sources(
        &[
            ("crates/core/src/messages.rs".into(), messages),
            ("crates/core/src/replica.rs".into(), replica),
            ("crates/core/src/client.rs".into(), broken),
            ("crates/sim/src/health.rs".into(), health),
        ],
        Phase::Model,
    );
    let hits: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "handler-coverage")
        .collect();
    assert_eq!(hits.len(), 1, "findings: {findings:#?}");
    assert!(hits[0]
        .message
        .contains("`Msg::PrePrepare` has no dispatch arm"));
    assert!(hits[0].message.contains("client.rs"));
}

/// A `#[cfg(test)]`-only variant added to the real Msg enum is test
/// scaffolding: handler-coverage must not demand dispatch arms or wire
/// tags for it.
#[test]
fn cfg_test_only_msg_variant_stays_exempt() {
    let messages = read_rel("crates/core/src/messages.rs");
    let replica = read_rel("crates/core/src/replica.rs");
    let client = read_rel("crates/core/src/client.rs");
    let health = read_rel("crates/sim/src/health.rs");

    const FIRST_VARIANT: &str = "pub enum Msg {";
    assert!(messages.contains(FIRST_VARIANT));
    let patched = messages.replace(
        FIRST_VARIANT,
        "pub enum Msg {\n    #[cfg(test)]\n    FaultProbe(Status),",
    );

    let findings = check_sources(
        &[
            ("crates/core/src/messages.rs".into(), patched),
            ("crates/core/src/replica.rs".into(), replica),
            ("crates/core/src/client.rs".into(), client),
            ("crates/sim/src/health.rs".into(), health),
        ],
        Phase::Model,
    );
    assert!(
        !findings.iter().any(|f| f.message.contains("FaultProbe")),
        "cfg(test) variant must be exempt: {findings:#?}"
    );
}
