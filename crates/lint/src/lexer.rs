//! A minimal Rust lexer: just enough structure to let the rule engine
//! match real code tokens while ignoring comments, string/char literal
//! *contents*, and attributes' textual noise.
//!
//! The protocol docs in this workspace are saturated with literal
//! `2f+1` / `3f+1` text, so stripping comments and string literals is
//! not an optimisation — it is what makes the quorum-arithmetic rule
//! usable at all.

/// Token classification. Literal contents are deliberately dropped
/// (`Literal` tokens carry an empty `text`) so rule patterns can never
/// match inside strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (text kept verbatim, suffix included).
    Num,
    /// Punctuation / operator (some two-character operators fused).
    Punct,
    /// Lifetime such as `'a`.
    Lifetime,
    /// String, byte-string, or char literal (content stripped).
    Literal,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub line: u32,
    pub text: String,
    pub kind: Kind,
}

/// A comment, preserved verbatim so the pragma parser can read
/// allow-directives (see the crate docs for the syntax).
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// Lexer output: the token stream plus every comment encountered.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Two-character operators fused into single tokens. Order matters only
/// in that each entry is tried before single-character fallback.
const TWO_CHAR_OPS: &[&str] = &[
    "=>", "::", "->", "..", "&&", "||", "<<", ">>", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=",
    "%=", "^=", "|=", "&=",
];

pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident_cont = |c: char| c.is_alphanumeric() || c == '_';

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }

        // Line comment.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            out.comments.push(Comment {
                line,
                text: chars[start..i].iter().collect(),
            });
            continue;
        }

        // Block comment (Rust block comments nest).
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start_line = line;
            let start = i;
            let mut depth = 1usize;
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            out.comments.push(Comment {
                line: start_line,
                text: chars[start..i.min(chars.len())].iter().collect(),
            });
            continue;
        }

        // Raw strings: r"…", r#"…"#, and byte variants br…, b"…".
        if c == 'r' || c == 'b' {
            let mut j = i + 1;
            if c == 'b' && chars.get(j) == Some(&'r') {
                j += 1;
            }
            if c == 'b' && chars.get(j) == Some(&'"') {
                // Plain byte string b"…".
                i = consume_string(&chars, j, &mut line);
                out.tokens.push(Token {
                    line,
                    text: String::new(),
                    kind: Kind::Literal,
                });
                continue;
            }
            if (c == 'r' || (c == 'b' && j > i + 1)) && j > i {
                let mut hashes = 0usize;
                while chars.get(j + hashes) == Some(&'#') {
                    hashes += 1;
                }
                if chars.get(j + hashes) == Some(&'"') {
                    // Raw (byte) string: scan for `"` followed by `hashes` #s.
                    let lit_line = line;
                    let mut k = j + hashes + 1;
                    while k < chars.len() {
                        if chars[k] == '\n' {
                            line += 1;
                            k += 1;
                            continue;
                        }
                        if chars[k] == '"' && chars[k + 1..].iter().take(hashes).all(|&h| h == '#')
                        {
                            k += 1 + hashes;
                            break;
                        }
                        k += 1;
                    }
                    i = k;
                    out.tokens.push(Token {
                        line: lit_line,
                        text: String::new(),
                        kind: Kind::Literal,
                    });
                    continue;
                }
                // Not a raw string (e.g. the raw identifier `r#match`):
                // fall through to identifier lexing below.
            }
        }

        // String literal.
        if c == '"' {
            let lit_line = line;
            i = consume_string(&chars, i, &mut line);
            out.tokens.push(Token {
                line: lit_line,
                text: String::new(),
                kind: Kind::Literal,
            });
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            let after = chars.get(i + 2).copied();
            if next.is_some_and(is_ident_start) && after != Some('\'') {
                // Lifetime: 'a, 'static, …
                let mut j = i + 1;
                while j < chars.len() && is_ident_cont(chars[j]) {
                    j += 1;
                }
                out.tokens.push(Token {
                    line,
                    text: chars[i..j].iter().collect(),
                    kind: Kind::Lifetime,
                });
                i = j;
                continue;
            }
            // Char literal: consume until the unescaped closing quote.
            let lit_line = line;
            let mut j = i + 1;
            while j < chars.len() {
                match chars[j] {
                    '\\' => j += 2,
                    '\'' => {
                        j += 1;
                        break;
                    }
                    '\n' => {
                        line += 1;
                        j += 1;
                    }
                    _ => j += 1,
                }
            }
            out.tokens.push(Token {
                line: lit_line,
                text: String::new(),
                kind: Kind::Literal,
            });
            i = j;
            continue;
        }

        // Numeric literal (hex/oct/bin/suffixes all glued into one token,
        // so `0x2f` can never be mistaken for the identifier `f`).
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < chars.len() && (is_ident_cont(chars[j])) {
                j += 1;
            }
            out.tokens.push(Token {
                line,
                text: chars[i..j].iter().collect(),
                kind: Kind::Num,
            });
            i = j;
            continue;
        }

        // Identifier / keyword (including raw identifiers r#ident).
        if is_ident_start(c) {
            let mut j = i;
            if (c == 'r' || c == 'b') && chars.get(j + 1) == Some(&'#') {
                j += 2; // raw identifier prefix
            }
            let word_start = j;
            while j < chars.len() && is_ident_cont(chars[j]) {
                j += 1;
            }
            out.tokens.push(Token {
                line,
                text: chars[word_start..j].iter().collect(),
                kind: Kind::Ident,
            });
            i = j;
            continue;
        }

        // Two-character operators, then single-character punctuation.
        if i + 1 < chars.len() {
            let pair: String = chars[i..i + 2].iter().collect();
            if TWO_CHAR_OPS.contains(&pair.as_str()) {
                out.tokens.push(Token {
                    line,
                    text: pair,
                    kind: Kind::Punct,
                });
                i += 2;
                continue;
            }
        }
        out.tokens.push(Token {
            line,
            text: c.to_string(),
            kind: Kind::Punct,
        });
        i += 1;
    }

    out
}

/// Consumes a `"`-delimited string starting at `open` (the quote);
/// returns the index just past the closing quote and tracks newlines.
fn consume_string(chars: &[char], open: usize, line: &mut u32) -> usize {
    let mut j = open + 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => j += 2,
            '"' => return j + 1,
            '\n' => {
                *line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn strips_comments_and_strings() {
        let lexed = lex("let x = 1; // 2f+1 in a comment\nlet y = \"3 * f + 1\";");
        assert!(lexed.tokens.iter().all(|t| t.text != "f"));
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("2f+1"));
    }

    #[test]
    fn doc_comments_are_comments() {
        let lexed = lex("/// needs 2f+1 votes\nfn quorum() {}\n/** block\ndoc */\nstruct S;");
        assert_eq!(lexed.comments.len(), 2);
        assert!(texts("/// 2f+1\nfn g() {}").contains(&"fn".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = toks
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(toks.tokens.iter().any(|t| t.kind == Kind::Literal));
    }

    #[test]
    fn raw_strings_consumed() {
        let toks = lex(r####"let s = r#"f + 1 inside raw"#; let t = 2;"####);
        assert!(toks.tokens.iter().all(|t| t.text != "f"));
        assert!(toks.tokens.iter().any(|t| t.text == "2"));
    }

    #[test]
    fn hex_literal_is_one_token() {
        let toks = texts("let v = 0x2f + 1;");
        assert!(toks.contains(&"0x2f".to_string()));
        assert!(!toks.contains(&"f".to_string()));
    }

    #[test]
    fn two_char_ops_fused() {
        let toks = texts("match x { _ => y::z }");
        assert!(toks.contains(&"=>".to_string()));
        assert!(toks.contains(&"::".to_string()));
    }

    #[test]
    fn lines_tracked_across_multiline_strings() {
        let lexed = lex("let a = \"line\none\";\nlet b = 9;");
        let b = lexed.tokens.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 3);
    }
}
