//! CLI entry point: `cargo run -p bft-lint -- --check`
//!
//! Scans every `src/` tree in the workspace, prints each finding as
//! `file:line: [rule] message` plus the offending snippet, and (with
//! `--check`) exits nonzero if any unjustified finding remains.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut check = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--root" => match args.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("bft-lint: protocol-aware static analysis");
                println!();
                println!("USAGE: bft-lint [--check] [--root <workspace>]");
                println!();
                println!("  --check   exit nonzero if any unjustified finding remains");
                println!("  --root    workspace root (default: auto-detected)");
                println!();
                println!("Rules: {}", bft_lint::RULES.join(", "));
                println!("Suppress with: // bft-lint: allow(<rule>) -- <reason>");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(find_workspace_root) {
        Some(root) => root,
        None => {
            eprintln!("could not locate the workspace root; pass --root");
            return ExitCode::from(2);
        }
    };

    let findings = match bft_lint::check_workspace(&root) {
        Ok(findings) => findings,
        Err(err) => {
            eprintln!("bft-lint: failed to scan {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    for finding in &findings {
        println!("{finding}");
    }
    if findings.is_empty() {
        println!("bft-lint: clean ({} rules)", bft_lint::RULES.len());
        ExitCode::SUCCESS
    } else {
        println!("bft-lint: {} finding(s)", findings.len());
        if check {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}

/// Walks up from the current directory looking for a `Cargo.toml` that
/// declares a `[workspace]`; falls back to the location this crate was
/// built from (two levels above its manifest).
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok();
    while let Some(d) = dir {
        if is_workspace_root(&d) {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    let baked = Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2)?;
    is_workspace_root(baked).then(|| baked.to_path_buf())
}

fn is_workspace_root(dir: &Path) -> bool {
    std::fs::read_to_string(dir.join("Cargo.toml"))
        .map(|s| s.contains("[workspace]"))
        .unwrap_or(false)
}
