//! CLI entry point: `cargo run -p bft-lint -- --check`
//!
//! Scans every `src/` tree in the workspace (plus `tests/` trees for
//! the model's test-reference checks), prints each finding, and (with
//! `--check`) exits nonzero if any unjustified finding remains.
//!
//! Output formats: `text` (default, `file:line: [rule] message` plus
//! the offending snippet), `json` (machine-readable, hand-rolled — the
//! crate stays dependency-free), and `github` (`::error …` workflow
//! commands so findings annotate PR diffs inline).

use bft_lint::{Finding, Phase};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

enum Format {
    Text,
    Json,
    Github,
}

fn main() -> ExitCode {
    let mut check = false;
    let mut root: Option<PathBuf> = None;
    let mut phase = Phase::All;
    let mut format = Format::Text;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--root" => match args.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--phase" => match args.next().as_deref() {
                Some("token") => phase = Phase::Token,
                Some("model") => phase = Phase::Model,
                Some("all") => phase = Phase::All,
                other => {
                    eprintln!("--phase must be token, model, or all (got {other:?})");
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("github") => format = Format::Github,
                other => {
                    eprintln!("--format must be text, json, or github (got {other:?})");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("bft-lint: protocol-aware static analysis");
                println!();
                println!(
                    "USAGE: bft-lint [--check] [--root <workspace>] [--phase <p>] [--format <f>]"
                );
                println!();
                println!("  --check    exit nonzero if any unjustified finding remains");
                println!("  --root     workspace root (default: auto-detected)");
                println!("  --phase    token | model | all (default: all)");
                println!("             token: per-file lexical rules");
                println!("             model: cross-file rules over the item model");
                println!("  --format   text | json | github (default: text)");
                println!();
                println!("Token rules: {}", bft_lint::TOKEN_RULES.join(", "));
                println!("Model rules: {}", bft_lint::MODEL_RULES.join(", "));
                println!("Suppress with: // bft-lint: allow(<rule>) -- <reason>");
                println!("(a justified pragma that suppresses nothing is itself a finding)");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(find_workspace_root) {
        Some(root) => root,
        None => {
            eprintln!("could not locate the workspace root; pass --root");
            return ExitCode::from(2);
        }
    };

    let findings = match bft_lint::check_workspace(&root, phase) {
        Ok(findings) => findings,
        Err(err) => {
            eprintln!("bft-lint: failed to scan {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    match format {
        Format::Text => {
            for finding in &findings {
                println!("{finding}");
            }
            if findings.is_empty() {
                println!("bft-lint: clean ({} rules)", bft_lint::RULES.len());
            } else {
                println!("bft-lint: {} finding(s)", findings.len());
            }
        }
        Format::Json => println!("{}", to_json(&findings)),
        Format::Github => {
            for finding in &findings {
                println!(
                    "::error file={},line={},title=bft-lint [{}]::{}",
                    finding.file,
                    finding.line,
                    finding.rule,
                    github_escape(&finding.message)
                );
            }
            eprintln!("bft-lint: {} finding(s)", findings.len());
        }
    }

    if findings.is_empty() || !check {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Serializes findings as JSON by hand; the crate is deliberately
/// dependency-free.
fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, fnd) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\", \
             \"snippet\": \"{}\"}}",
            json_escape(&fnd.file),
            fnd.line,
            json_escape(fnd.rule),
            json_escape(&fnd.message),
            json_escape(&fnd.snippet)
        ));
    }
    if !findings.is_empty() {
        out.push('\n');
        out.push_str("  ");
    }
    out.push_str(&format!("],\n  \"count\": {}\n}}", findings.len()));
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// GitHub workflow-command escaping for the message portion.
fn github_escape(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

/// Walks up from the current directory looking for a `Cargo.toml` that
/// declares a `[workspace]`; falls back to the location this crate was
/// built from (two levels above its manifest).
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok();
    while let Some(d) = dir {
        if is_workspace_root(&d) {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    let baked = Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2)?;
    is_workspace_root(baked).then(|| baked.to_path_buf())
}

fn is_workspace_root(dir: &Path) -> bool {
    std::fs::read_to_string(dir.join("Cargo.toml"))
        .map(|s| s.contains("[workspace]"))
        .unwrap_or(false)
}
