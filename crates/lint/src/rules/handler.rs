//! Rule: handler-coverage — every `Msg` variant is dispatched, and the
//! wire tag bytes agree across `Msg::tag()`, encode, and decode.
//!
//! The catch-all rule bans `_ =>` wildcards in `Msg` dispatch, so a
//! variant is handled iff the dispatch file names it; this rule closes
//! the remaining gap: a variant added to `messages.rs` whose match arms
//! were *forgotten entirely* would only surface as a compile error in
//! the same crate — but the wire maps (`tag()`, `encode`, `decode`) are
//! three hand-maintained parallel tables, and a skew between them is a
//! silent protocol bug (a message decoded as the wrong kind, or two
//! kinds sharing a tag byte and corrupting the per-tag health
//! counters). `TAG_COUNT` in `bft_sim::health` sizes those per-tag
//! arrays and must track the variant count.

use crate::model::{matching, num_value, WorkspaceModel};
use crate::rules::DISPATCH_ENUM;
use crate::{Finding, RULE_HANDLER};
use std::collections::BTreeMap;

/// The file declaring the `Msg` enum and its wire maps.
const MESSAGES: &str = "crates/core/src/messages.rs";
/// The files that must dispatch every variant.
const DISPATCHERS: &[&str] = &["crates/core/src/replica.rs", "crates/core/src/client.rs"];
/// The file sizing the per-tag counter arrays.
const HEALTH: &str = "crates/sim/src/health.rs";

pub(crate) fn run(model: &WorkspaceModel, findings: &mut Vec<Finding>) {
    let Some(msgs) = model.file(MESSAGES) else {
        return;
    };
    let Some(def) = msgs.enum_def(DISPATCH_ENUM) else {
        return;
    };

    // 1. Dispatch coverage: each variant must be named in each
    //    dispatcher present in the model (`#[cfg(test)]`-only variants
    //    are scaffolding and exempt, like all cfg(test) code).
    for dispatcher in DISPATCHERS {
        let Some(df) = model.file(dispatcher) else {
            continue;
        };
        let named = df.variant_ref_names(DISPATCH_ENUM);
        for variant in def.variants.iter().filter(|v| !v.cfg_test) {
            if !named.contains(&variant.name) {
                findings.push(Finding {
                    file: msgs.path.clone(),
                    line: variant.line,
                    rule: RULE_HANDLER,
                    message: format!(
                        "`{DISPATCH_ENUM}::{}` has no dispatch arm in {dispatcher}; every \
                         variant must be handled (or rejected) explicitly",
                        variant.name
                    ),
                    snippet: msgs.snippet(variant.line),
                });
            }
        }
    }

    // 2. Wire tag agreement across the three hand-maintained maps.
    let tag_map = scan_tag_arms(msgs);
    let enc_map = scan_encode_arms(msgs);
    let dec_map = scan_decode_arms(msgs);
    for variant in def.variants.iter().filter(|v| !v.cfg_test) {
        let tag = tag_map.get(&variant.name);
        let enc = enc_map.get(&variant.name);
        let dec = dec_map.get(&variant.name);
        let missing: Vec<&str> = [
            (tag.is_none(), "Msg::tag()"),
            (enc.is_none(), "Wire::encode"),
            (dec.is_none(), "Wire::decode"),
        ]
        .iter()
        .filter(|(absent, _)| *absent)
        .map(|(_, what)| *what)
        .collect();
        if !missing.is_empty() {
            findings.push(Finding {
                file: msgs.path.clone(),
                line: variant.line,
                rule: RULE_HANDLER,
                message: format!(
                    "`{DISPATCH_ENUM}::{}` has no wire tag mapping in {}; tag(), encode and \
                     decode are parallel tables and must all cover every variant",
                    variant.name,
                    missing.join(", ")
                ),
                snippet: msgs.snippet(variant.line),
            });
        }
        if let (Some(&(t, line)), Some(&(e, _)), Some(&(d, _))) = (tag, enc, dec) {
            if t != e || t != d {
                findings.push(Finding {
                    file: msgs.path.clone(),
                    line,
                    rule: RULE_HANDLER,
                    message: format!(
                        "wire tag for `{DISPATCH_ENUM}::{}` disagrees: tag()={t}, \
                         encode={e}, decode={d}; a skewed table decodes messages as the \
                         wrong kind",
                        variant.name
                    ),
                    snippet: msgs.snippet(line),
                });
            }
        }
    }

    // 3. Tag uniqueness within each map.
    for (map, what) in [
        (&tag_map, "Msg::tag()"),
        (&enc_map, "Wire::encode"),
        (&dec_map, "Wire::decode"),
    ] {
        let mut seen: BTreeMap<u64, &str> = BTreeMap::new();
        for (name, &(value, line)) in map {
            if let Some(prior) = seen.insert(value, name) {
                findings.push(Finding {
                    file: msgs.path.clone(),
                    line,
                    rule: RULE_HANDLER,
                    message: format!(
                        "wire tag {value} in {what} is claimed by both \
                         `{DISPATCH_ENUM}::{prior}` and `{DISPATCH_ENUM}::{name}`; tag \
                         bytes must be unique"
                    ),
                    snippet: msgs.snippet(line),
                });
            }
        }
    }

    // 4. TAG_COUNT in the health registry sizes the per-tag arrays.
    if let Some(health) = model.file(HEALTH) {
        if let Some((count, line)) = scan_tag_count(health) {
            let variants = def.variants.iter().filter(|v| !v.cfg_test).count() as u64;
            if count != variants {
                findings.push(Finding {
                    file: health.path.clone(),
                    line,
                    rule: RULE_HANDLER,
                    message: format!(
                        "TAG_COUNT is {count} but `{DISPATCH_ENUM}` has {variants} wire \
                         variants; the per-tag send/receive arrays must cover every tag"
                    ),
                    snippet: health.snippet(line),
                });
            }
        }
    }
}

/// `Msg::Variant(_) => N` arms (the `tag()` table).
fn scan_tag_arms(file: &crate::model::FileModel) -> BTreeMap<String, (u64, u32)> {
    let toks = &file.tokens;
    let mut out = BTreeMap::new();
    for i in 0..toks.len().saturating_sub(7) {
        if toks[i].text == DISPATCH_ENUM
            && toks[i + 1].text == "::"
            && toks[i + 3].text == "("
            && toks[i + 4].text == "_"
            && toks[i + 5].text == ")"
            && toks[i + 6].text == "=>"
        {
            if let Some(value) = num_value(&toks[i + 7]) {
                out.entry(toks[i + 2].text.clone())
                    .or_insert((value, toks[i + 7].line));
            }
        }
    }
    out
}

/// `Msg::Variant(m) => { … buf.push(N) … }` arms (the encode table):
/// the first byte pushed in the arm body is the wire tag.
fn scan_encode_arms(file: &crate::model::FileModel) -> BTreeMap<String, (u64, u32)> {
    let toks = &file.tokens;
    let mut out = BTreeMap::new();
    for i in 0..toks.len().saturating_sub(7) {
        if !(toks[i].text == DISPATCH_ENUM
            && toks[i + 1].text == "::"
            && toks[i + 3].text == "("
            && toks[i + 4].text != "_"
            && toks[i + 5].text == ")"
            && toks[i + 6].text == "=>"
            && toks[i + 7].text == "{")
        {
            continue;
        }
        let close = matching(toks, i + 7, "{", "}");
        for j in i + 8..close.saturating_sub(2) {
            if toks[j].text == "push" && toks[j + 1].text == "(" {
                if let Some(value) = num_value(&toks[j + 2]) {
                    out.entry(toks[i + 2].text.clone())
                        .or_insert((value, toks[j + 2].line));
                }
                break;
            }
        }
    }
    out
}

/// `N => Msg::Variant(…)` arms (the decode table).
fn scan_decode_arms(file: &crate::model::FileModel) -> BTreeMap<String, (u64, u32)> {
    let toks = &file.tokens;
    let mut out = BTreeMap::new();
    for i in 0..toks.len().saturating_sub(4) {
        if toks[i + 1].text == "=>" && toks[i + 2].text == DISPATCH_ENUM && toks[i + 3].text == "::"
        {
            if let Some(value) = num_value(&toks[i]) {
                out.entry(toks[i + 4].text.clone())
                    .or_insert((value, toks[i].line));
            }
        }
    }
    out
}

/// `const TAG_COUNT: usize = N` in the health registry.
fn scan_tag_count(file: &crate::model::FileModel) -> Option<(u64, u32)> {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if toks[i].text == "TAG_COUNT" && i > 0 && toks[i - 1].text == "const" {
            for j in i + 1..(i + 6).min(toks.len()) {
                if toks[j].text == "=" {
                    return num_value(toks.get(j + 1)?).map(|v| (v, toks[j + 1].line));
                }
            }
        }
    }
    None
}
