//! Rule: quorum-math — thresholds come from `Quorums`, nowhere else.
//!
//! Every quorum threshold (`2f+1`, `3f+1`, `f+1`, and participation
//! bounds like `n - f`) must come from `bft_core::types::Quorums`;
//! inline re-derivations are where off-by-one safety bugs hide.

use crate::lexer::{Kind, Token};
use crate::{Finding, RULE_QUORUM};

pub(crate) fn run(
    file: &str,
    toks: &[Token],
    snippet: &dyn Fn(u32) -> String,
    findings: &mut Vec<Finding>,
) {
    let num_is = |tok: &Token, value: &[&str]| -> bool {
        if tok.kind != Kind::Num {
            return false;
        }
        let digits: String = tok
            .text
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect();
        value.contains(&digits.as_str())
    };

    let mut hit = |line: u32, shape: &str| {
        findings.push(Finding {
            file: file.to_string(),
            line,
            rule: RULE_QUORUM,
            message: format!(
                "inline quorum arithmetic ({shape}); thresholds must come from \
                 `bft_core::types::Quorums`"
            ),
            snippet: snippet(line),
        });
    };

    // `2 * f…`, `3 * f…` and `1 + f…` (forward forms).
    for i in 0..toks.len() {
        if num_is(&toks[i], &["2", "3"])
            && toks.get(i + 1).map(|t| t.text.as_str()) == Some("*")
            && f_path_forward(toks, i + 2).is_some()
        {
            hit(toks[i].line, "k * f");
        }
        if num_is(&toks[i], &["1"])
            && toks.get(i + 1).map(|t| t.text.as_str()) == Some("+")
            && f_path_forward(toks, i + 2).is_some()
        {
            hit(toks[i].line, "1 + f");
        }
    }

    // Backward forms anchored on a terminal `f`: `f… * k`, `f… + 1`,
    // allowing a call `()` and `as <ty>` casts in between.
    for i in 0..toks.len() {
        if !(toks[i].kind == Kind::Ident && toks[i].text == "f") {
            continue;
        }
        // Terminal: not a path segment (`f.something`).
        if toks.get(i + 1).map(|t| t.text.as_str()) == Some(".") {
            continue;
        }
        let mut end = i;
        if toks.get(end + 1).map(|t| t.text.as_str()) == Some("(")
            && toks.get(end + 2).map(|t| t.text.as_str()) == Some(")")
        {
            end += 2;
        }
        while toks.get(end + 1).map(|t| t.text.as_str()) == Some("as")
            && toks.get(end + 2).map(|t| t.kind) == Some(Kind::Ident)
        {
            end += 2;
        }
        let next = toks.get(end + 1).map(|t| t.text.as_str());
        if next == Some("+") && toks.get(end + 2).is_some_and(|t| num_is(t, &["1"])) {
            hit(toks[i].line, "f + 1");
        }
        if next == Some("*") && toks.get(end + 2).is_some_and(|t| num_is(t, &["2", "3"])) {
            hit(toks[i].line, "f * k");
        }
    }

    // `n… - f…`: a participation threshold derived by hand. `n - f` is
    // the classic wrong fast quorum — its intersection with a 2f+1
    // view-change quorum can be a single (possibly Byzantine) replica —
    // and the correct value (`n`, see `Quorums::fast_quorum`) is easy to
    // get wrong when rederived inline, so any `n - f` outside `Quorums`
    // is a finding. Anchored on a terminal `n` (not a path segment),
    // allowing a call `()` and `as <ty>` casts before the `-`.
    for i in 0..toks.len() {
        if !(toks[i].kind == Kind::Ident && toks[i].text == "n") {
            continue;
        }
        if toks.get(i + 1).map(|t| t.text.as_str()) == Some(".") {
            continue;
        }
        let mut end = i;
        if toks.get(end + 1).map(|t| t.text.as_str()) == Some("(")
            && toks.get(end + 2).map(|t| t.text.as_str()) == Some(")")
        {
            end += 2;
        }
        while toks.get(end + 1).map(|t| t.text.as_str()) == Some("as")
            && toks.get(end + 2).map(|t| t.kind) == Some(Kind::Ident)
        {
            end += 2;
        }
        if toks.get(end + 1).map(|t| t.text.as_str()) == Some("-")
            && f_path_forward(toks, end + 2).is_some()
        {
            hit(toks[i].line, "n - f");
        }
    }
}

/// If the tokens starting at `start` form a dotted path whose terminal
/// identifier is `f` (e.g. `f`, `self.f`, `cfg.f()`), returns the index
/// of that terminal token.
fn f_path_forward(toks: &[Token], start: usize) -> Option<usize> {
    let mut k = start;
    loop {
        let tok = toks.get(k)?;
        if tok.kind != Kind::Ident {
            return None;
        }
        if toks.get(k + 1).map(|t| t.text.as_str()) == Some(".") {
            k += 2;
            continue;
        }
        return if tok.text == "f" { Some(k) } else { None };
    }
}
