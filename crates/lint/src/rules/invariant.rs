//! Rule: invariant-coverage — every `Violation` variant is constructed
//! by a checker and referenced by at least one test.
//!
//! The chaos battery's whole correctness argument is "the invariant
//! checker would have caught it". A `Violation` variant that no checker
//! constructs is an invariant the suite *claims* to enforce but cannot
//! raise; one that no test references is an alarm that has never been
//! heard — nothing pins its trigger conditions or its report format.
//! References inside `impl Display for Violation` are formatting, not
//! enforcement, and do not count as construction.

use crate::model::{variant_refs_in, WorkspaceModel};
use crate::{Finding, RULE_INVARIANT};
use std::collections::BTreeSet;

/// The file declaring `Violation` and its checkers.
const INVARIANTS: &str = "crates/core/src/invariants.rs";
/// The enum of checkable invariant violations.
const VIOLATION_ENUM: &str = "Violation";

pub(crate) fn run(model: &WorkspaceModel, findings: &mut Vec<Finding>) {
    let Some(inv) = model.file(INVARIANTS) else {
        return;
    };
    let Some(def) = inv.enum_def(VIOLATION_ENUM) else {
        return;
    };
    let display_ranges = inv.impl_ranges("Display", VIOLATION_ENUM);

    // Constructed: referenced from production code in crates/core,
    // excluding the enum declaration and the Display formatter.
    let mut constructed: BTreeSet<String> = BTreeSet::new();
    for file in model.src_files("crates/core/src/") {
        for (name, _, idx) in file.variant_refs(VIOLATION_ENUM) {
            let excluded = file.path == INVARIANTS
                && (display_ranges.iter().any(|&(a, b)| a <= idx && idx <= b)
                    || (def.body.0 <= idx && idx <= def.body.1));
            if !excluded {
                constructed.insert(name);
            }
        }
    }

    // Tested: referenced from any test file or any `#[cfg(test)]`
    // region of a src file.
    let mut tested: BTreeSet<String> = BTreeSet::new();
    let mut have_tests = false;
    for file in model.test_files() {
        have_tests = true;
        tested.extend(
            variant_refs_in(&file.tokens, VIOLATION_ENUM)
                .into_iter()
                .map(|(name, _, _)| name),
        );
    }
    for file in &model.files {
        if !file.cfg_test_tokens.is_empty() {
            have_tests = true;
            tested.extend(
                variant_refs_in(&file.cfg_test_tokens, VIOLATION_ENUM)
                    .into_iter()
                    .map(|(name, _, _)| name),
            );
        }
    }

    for variant in &def.variants {
        if !constructed.contains(&variant.name) {
            findings.push(Finding {
                file: inv.path.clone(),
                line: variant.line,
                rule: RULE_INVARIANT,
                message: format!(
                    "`{VIOLATION_ENUM}::{}` is never constructed by any checker in \
                     crates/core; the suite claims an invariant it cannot raise",
                    variant.name
                ),
                snippet: inv.snippet(variant.line),
            });
        }
        if have_tests && !tested.contains(&variant.name) {
            findings.push(Finding {
                file: inv.path.clone(),
                line: variant.line,
                rule: RULE_INVARIANT,
                message: format!(
                    "`{VIOLATION_ENUM}::{}` is not referenced by any test; nothing pins \
                     when this violation fires or what it reports",
                    variant.name
                ),
                snippet: inv.snippet(variant.line),
            });
        }
    }
}
