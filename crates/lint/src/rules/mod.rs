//! Rule implementations, one module per rule.
//!
//! Token rules (phase 1, per file): [`determinism`], [`quorum`],
//! [`catchall`], [`decode`]. They see one file's `#[cfg(test)]`-stripped
//! token stream and report purely lexical violations.
//!
//! Model rules (phase 2, cross-file): [`handler`], [`timer`], [`span`],
//! [`invariant`], [`counter`], [`layering`]. They run over the
//! assembled [`crate::model::WorkspaceModel`] and check properties no
//! single file can witness: dispatch coverage, wire-tag agreement,
//! timer and span pairing, invariant/counter coverage, and the
//! core↔sim layering boundary.

pub mod catchall;
pub mod counter;
pub mod decode;
pub mod determinism;
pub mod handler;
pub mod invariant;
pub mod layering;
pub mod quorum;
pub mod span;
pub mod timer;

/// The enum whose dispatch must be exhaustive (catch-all rule) and
/// whose variants need handlers (handler-coverage rule).
pub(crate) const DISPATCH_ENUM: &str = "Msg";
