//! Rule: decode-panic — decoders must be total over arbitrary bytes.
//!
//! `wire.rs` decoders consume untrusted network bytes;
//! `unwrap`/`expect`/slice-indexing turn a Byzantine payload into a
//! crash instead of an `Err`.

use crate::lexer::{Kind, Token};
use crate::model::matching;
use crate::{Finding, RULE_DECODE};

pub(crate) fn run(
    file: &str,
    toks: &[Token],
    snippet: &dyn Fn(u32) -> String,
    findings: &mut Vec<Finding>,
) {
    const PANIC_MACROS: &[&str] = &[
        "panic",
        "unreachable",
        "todo",
        "unimplemented",
        "assert",
        "assert_eq",
        "assert_ne",
        "debug_assert",
        "debug_assert_eq",
        "debug_assert_ne",
    ];

    for i in 0..toks.len() {
        if !(toks[i].text == "fn"
            && toks
                .get(i + 1)
                .is_some_and(|t| t.text == "decode" || t.text == "from_bytes"))
        {
            continue;
        }
        // Find the body block.
        let mut depth = 0i32;
        let mut open = None;
        let mut j = i + 2;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    open = Some(j);
                    break;
                }
                ";" if depth == 0 => break, // trait method without default body
                _ => {}
            }
            j += 1;
        }
        let Some(open) = open else { continue };
        let close = matching(toks, open, "{", "}");
        let fn_name = &toks[i + 1].text;

        for k in open + 1..close {
            let tok = &toks[k];
            if tok.kind == Kind::Ident
                && matches!(tok.text.as_str(), "unwrap" | "expect" | "unwrap_unchecked")
                && toks[k - 1].text == "."
                && toks.get(k + 1).map(|t| t.text.as_str()) == Some("(")
            {
                findings.push(Finding {
                    file: file.to_string(),
                    line: tok.line,
                    rule: RULE_DECODE,
                    message: format!(
                        "`.{}()` in `fn {fn_name}`; decoders consume untrusted bytes and \
                         must return Err, never panic",
                        tok.text
                    ),
                    snippet: snippet(tok.line),
                });
            }
            if tok.kind == Kind::Ident
                && PANIC_MACROS.contains(&tok.text.as_str())
                && toks.get(k + 1).map(|t| t.text.as_str()) == Some("!")
            {
                findings.push(Finding {
                    file: file.to_string(),
                    line: tok.line,
                    rule: RULE_DECODE,
                    message: format!(
                        "`{}!` in `fn {fn_name}`; decoders must be total over arbitrary input",
                        tok.text
                    ),
                    snippet: snippet(tok.line),
                });
            }
            // `expr[i]` / `expr?[0]` — indexing panics on short input.
            // (`#[attr]` and type syntax `<[u8; 16]>` are preceded by `#`
            // or `<` and never match; keywords before `[` are array
            // literals or patterns, not indexing.)
            const KEYWORDS: &[&str] = &[
                "for", "in", "return", "as", "if", "else", "match", "let", "mut", "ref", "move",
                "break", "continue", "where", "impl", "dyn", "box", "while", "loop", "yield",
            ];
            let prev = &toks[k - 1];
            let prev_indexable = matches!(prev.text.as_str(), ")" | "]" | "?")
                || (prev.kind == Kind::Ident && !KEYWORDS.contains(&prev.text.as_str()));
            if tok.text == "[" && prev_indexable {
                findings.push(Finding {
                    file: file.to_string(),
                    line: tok.line,
                    rule: RULE_DECODE,
                    message: format!(
                        "slice indexing in `fn {fn_name}`; out-of-range access panics on \
                         truncated input — use a checked take"
                    ),
                    snippet: snippet(tok.line),
                });
            }
        }
    }
}
