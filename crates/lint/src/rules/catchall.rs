//! Rule: catch-all — `Msg` dispatch must be exhaustive.
//!
//! Replica/client dispatch over the `Msg` enum must handle every
//! variant explicitly, so adding a message variant forces every handler
//! to make a decision instead of silently dropping the message.

use crate::lexer::{Kind, Token};
use crate::model::matching;
use crate::rules::DISPATCH_ENUM;
use crate::{Finding, RULE_CATCHALL};

pub(crate) fn run(
    file: &str,
    toks: &[Token],
    snippet: &dyn Fn(u32) -> String,
    findings: &mut Vec<Finding>,
) {
    for i in 0..toks.len() {
        if !(toks[i].kind == Kind::Ident && toks[i].text == "match") {
            continue;
        }
        if i > 0 && matches!(toks[i - 1].text.as_str(), "." | "::") {
            continue; // a method or path segment named `match`, not the keyword
        }
        // Find the match body: the first `{` outside any scrutinee parens.
        let mut depth = 0i32;
        let mut open = None;
        let mut j = i + 1;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    open = Some(j);
                    break;
                }
                ";" if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = open else { continue };
        let close = matching(toks, open, "{", "}");

        // Parse arms: pattern tokens up to each top-level `=>`.
        let mut pos = open + 1;
        let mut dispatches_enum = false;
        let mut wildcard_lines: Vec<u32> = Vec::new();
        while pos < close {
            let pat_start = pos;
            let mut depth = 0i32;
            while pos < close {
                match toks[pos].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "=>" if depth == 0 => break,
                    _ => {}
                }
                pos += 1;
            }
            if pos >= close {
                break;
            }
            let pattern = &toks[pat_start..pos];
            // Strip a trailing `if <guard>` for the wildcard check.
            let guard_at = pattern
                .iter()
                .position(|t| t.text == "if" && t.kind == Kind::Ident)
                .unwrap_or(pattern.len());
            let head = &pattern[..guard_at];
            if pattern
                .windows(2)
                .any(|w| w[0].text == DISPATCH_ENUM && w[1].text == "::")
            {
                dispatches_enum = true;
            }
            if head.len() == 1 && head[0].text == "_" {
                wildcard_lines.push(head[0].line);
            }

            // Skip the arm body.
            pos += 1; // past `=>`
            if pos < close && toks[pos].text == "{" {
                pos = matching(toks, pos, "{", "}") + 1;
            } else {
                let mut depth = 0i32;
                while pos < close {
                    match toks[pos].text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "," if depth == 0 => {
                            pos += 1;
                            break;
                        }
                        _ => {}
                    }
                    pos += 1;
                }
            }
            // Consume a trailing comma after block bodies.
            if pos < close && toks[pos].text == "," {
                pos += 1;
            }
        }

        if dispatches_enum {
            for line in wildcard_lines {
                findings.push(Finding {
                    file: file.to_string(),
                    line,
                    rule: RULE_CATCHALL,
                    message: format!(
                        "`_ =>` catch-all in a `{DISPATCH_ENUM}` dispatch; handle every \
                         variant explicitly so new messages cannot be silently dropped"
                    ),
                    snippet: snippet(line),
                });
            }
        }
    }
}
