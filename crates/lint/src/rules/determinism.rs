//! Rule: determinism — no hash-ordered iteration in protocol paths.
//!
//! Replicas are deterministic state machines and the seed-replayable
//! simulator assumes it; iterating a `HashMap`/`HashSet` in a protocol
//! path lets hasher randomness reach message emission order.

use crate::lexer::{Kind, Token};
use crate::{Finding, RULE_DETERMINISM};
use std::collections::BTreeSet;

/// Hash-ordered iteration methods flagged by this rule. `retain`,
/// `insert`, `get`, `contains_key`, and `len` are order-independent and
/// deliberately not listed.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

pub(crate) fn run(
    file: &str,
    toks: &[Token],
    snippet: &dyn Fn(u32) -> String,
    findings: &mut Vec<Finding>,
) {
    let tracked = tracked_hash_names(toks);
    if tracked.is_empty() {
        return;
    }

    // Direct iteration-method calls: `name.keys()`, `self.name.iter()`, …
    for i in 2..toks.len() {
        if toks[i].kind == Kind::Ident
            && ITER_METHODS.contains(&toks[i].text.as_str())
            && toks[i - 1].text == "."
            && toks.get(i + 1).map(|t| t.text.as_str()) == Some("(")
            && toks[i - 2].kind == Kind::Ident
            && tracked.contains(&toks[i - 2].text)
        {
            findings.push(Finding {
                file: file.to_string(),
                line: toks[i].line,
                rule: RULE_DETERMINISM,
                message: format!(
                    "iteration over hash-ordered `{}` (`.{}()`); hasher randomness can reach \
                     protocol order — use BTreeMap/BTreeSet or sort at emission",
                    toks[i - 2].text,
                    toks[i].text
                ),
                snippet: snippet(toks[i].line),
            });
        }
    }

    // `for … in <expr over a tracked container> { … }`
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text == "for" && toks[i].kind == Kind::Ident {
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut in_idx = None;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => break,
                    ";" if depth == 0 => break,
                    "in" if depth == 0 && toks[j].kind == Kind::Ident && in_idx.is_none() => {
                        in_idx = Some(j);
                    }
                    _ => {}
                }
                j += 1;
            }
            if let Some(start) = in_idx {
                for tok in &toks[start + 1..j.min(toks.len())] {
                    if tok.kind == Kind::Ident && tracked.contains(&tok.text) {
                        findings.push(Finding {
                            file: file.to_string(),
                            line: tok.line,
                            rule: RULE_DETERMINISM,
                            message: format!(
                                "`for … in` over hash-ordered `{}`; iteration order is \
                                 hasher-dependent — use BTreeMap/BTreeSet",
                                tok.text
                            ),
                            snippet: snippet(tok.line),
                        });
                        break;
                    }
                }
            }
        }
        i += 1;
    }
}

/// Collects identifiers bound to a `HashMap`/`HashSet` type in this
/// file: struct fields, fn params, `let` bindings (annotated or
/// constructed via `HashMap::new()`-style calls).
fn tracked_hash_names(toks: &[Token]) -> BTreeSet<String> {
    let mut tracked = BTreeSet::new();
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != Kind::Ident || (tok.text != "HashMap" && tok.text != "HashSet") {
            continue;
        }
        // Walk left across type-ish tokens to the binding site.
        let mut j = i as isize - 1;
        while j >= 0 {
            let t = &toks[j as usize];
            match t.text.as_str() {
                ":" => {
                    if j >= 1 && toks[j as usize - 1].kind == Kind::Ident {
                        tracked.insert(toks[j as usize - 1].text.clone());
                    }
                    break;
                }
                "=" => {
                    // `let [mut] name = HashMap::new()` — scan for the `let`.
                    let mut k = j - 1;
                    let floor = (j - 8).max(0);
                    while k >= floor {
                        let lt = &toks[k as usize];
                        if lt.text == "let" {
                            let mut name_idx = k as usize + 1;
                            while name_idx < toks.len()
                                && matches!(toks[name_idx].text.as_str(), "mut" | "ref")
                            {
                                name_idx += 1;
                            }
                            if toks[name_idx].kind == Kind::Ident {
                                tracked.insert(toks[name_idx].text.clone());
                            }
                            break;
                        }
                        if matches!(lt.text.as_str(), ";" | "{" | "}") {
                            break;
                        }
                        k -= 1;
                    }
                    break;
                }
                "::" | "<" | ">" | "," | "&" | "(" | ")" | "mut" => j -= 1,
                _ if t.kind == Kind::Ident || t.kind == Kind::Lifetime => j -= 1,
                _ => break,
            }
        }
    }
    tracked
}
