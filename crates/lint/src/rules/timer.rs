//! Rule: timer-pairing — every armed `TIMER_*` token has a fire
//! handler, and stored one-shot timers have a cancel site.
//!
//! A timer armed via `set_timer` whose token no other code inspects is
//! a silent liveness bug: the `on_timer` dispatch falls through and the
//! retransmission/view-change/lease refresh it was meant to drive never
//! happens. Conversely, a `TIMER_*` constant that is never armed is
//! dead protocol surface. When the `TimerId` returned by `set_timer`
//! is stored (`x = Some(ctx.set_timer(…))`), the protocol intends to
//! cancel it later — a file that stores timer ids but never calls
//! `cancel_timer` leaks timers that fire into stale state.

use crate::lexer::Kind;
use crate::model::{call_arg_ranges, WorkspaceModel};
use crate::{Finding, RULE_TIMER};

pub(crate) fn run(model: &WorkspaceModel, findings: &mut Vec<Finding>) {
    for file in model.src_files("crates/core/src/") {
        let timers: Vec<_> = file
            .consts
            .iter()
            .filter(|c| c.name.starts_with("TIMER_"))
            .collect();
        if timers.is_empty() {
            continue;
        }
        let toks = &file.tokens;
        let arm_ranges = call_arg_ranges(toks, "set_timer");
        let has_cancel = toks
            .iter()
            .any(|t| t.kind == Kind::Ident && t.text == "cancel_timer");

        for timer in &timers {
            let mut armed_line = None;
            let mut handled = false;
            for (i, tok) in toks.iter().enumerate() {
                if tok.kind != Kind::Ident || tok.text != timer.name {
                    continue;
                }
                if i > 0 && toks[i - 1].text == "const" {
                    continue; // the declaration itself
                }
                if arm_ranges.iter().any(|&(a, b)| a <= i && i < b) {
                    armed_line.get_or_insert(tok.line);
                } else {
                    // Any non-arming reference counts as a handler: a
                    // match arm, a `token == TIMER_X` comparison, or a
                    // `t if t >= TIMER_BASE` guard.
                    handled = true;
                }
            }
            // A token referenced from another file (re-exported base
            // constants) is outside this file-local pairing argument.
            let used_elsewhere = model
                .files
                .iter()
                .filter(|other| other.path != file.path)
                .any(|other| {
                    other
                        .tokens
                        .iter()
                        .any(|t| t.kind == Kind::Ident && t.text == timer.name)
                });
            match armed_line {
                None if !handled && !used_elsewhere => findings.push(Finding {
                    file: file.path.clone(),
                    line: timer.line,
                    rule: RULE_TIMER,
                    message: format!(
                        "`{}` is declared but never armed via set_timer; dead timer tokens \
                         hide protocol surface that no longer runs",
                        timer.name
                    ),
                    snippet: file.snippet(timer.line),
                }),
                Some(line) if !handled && !used_elsewhere => findings.push(Finding {
                    file: file.path.clone(),
                    line,
                    rule: RULE_TIMER,
                    message: format!(
                        "`{}` is armed via set_timer but no code inspects the token when it \
                         fires; the timer's protocol action never runs",
                        timer.name
                    ),
                    snippet: file.snippet(line),
                }),
                _ => {}
            }
        }

        // Stored one-shot timers need a cancel site in the same file.
        for &(args_start, _) in &arm_ranges {
            // `set_timer` sits two tokens before its `(`: `ctx . set_timer (`.
            let call = args_start.saturating_sub(2);
            let stored = is_stored_call(toks, call);
            if stored && !has_cancel {
                let line = toks[call].line;
                findings.push(Finding {
                    file: file.path.clone(),
                    line,
                    rule: RULE_TIMER,
                    message: "the TimerId from this set_timer is stored but the file never \
                              calls cancel_timer; a superseded timer will fire into stale \
                              state"
                        .to_string(),
                    snippet: file.snippet(line),
                });
            }
        }
    }
}

/// True when the call at token index `call` has its result bound:
/// `x = recv.call(…)`, `x = Some(recv.call(…))`, or `let x = call(…)`.
fn is_stored_call(toks: &[crate::lexer::Token], call: usize) -> bool {
    // Walk back over the receiver (`ctx .` / `self . ctx .`).
    let mut j = call;
    while j >= 2 && toks[j - 1].text == "." && toks[j - 2].kind == Kind::Ident {
        j -= 2;
    }
    if j == 0 {
        return false;
    }
    match toks[j - 1].text.as_str() {
        "=" => true,
        "(" => j >= 3 && toks[j - 2].text == "Some" && toks[j - 3].text == "=",
        _ => false,
    }
}
