//! Rule: counter-coverage — every health counter registered in
//! `health.rs` has at least one emission site in the protocol crate.
//!
//! The health observatory reports whatever the registry declares; a
//! `Counter` variant that no protocol path ever emits reads as a
//! permanently-zero statistic, which is worse than no statistic — it
//! looks like "this never happened" when the truth is "nothing counts
//! it". Keeping the registry and the emission sites in lockstep makes
//! a zero in a health report meaningful.

use crate::model::WorkspaceModel;
use crate::{Finding, RULE_COUNTER};
use std::collections::BTreeSet;

/// The file declaring the counter registry.
const HEALTH: &str = "crates/sim/src/health.rs";
/// The registry enum.
const COUNTER_ENUM: &str = "Counter";

pub(crate) fn run(model: &WorkspaceModel, findings: &mut Vec<Finding>) {
    let Some(health) = model.file(HEALTH) else {
        return;
    };
    let Some(def) = health.enum_def(COUNTER_ENUM) else {
        return;
    };
    if model.src_files("crates/core/src/").next().is_none() {
        return; // no protocol code in the model to search for emissions
    }

    let mut emitted: BTreeSet<String> = BTreeSet::new();
    for file in model.src_files("crates/core/src/") {
        emitted.extend(file.variant_ref_names(COUNTER_ENUM));
    }

    for variant in &def.variants {
        if !emitted.contains(&variant.name) {
            findings.push(Finding {
                file: health.path.clone(),
                line: variant.line,
                rule: RULE_COUNTER,
                message: format!(
                    "`{COUNTER_ENUM}::{}` is registered in health.rs but nothing in \
                     crates/core emits it; a permanently-zero counter misreports \
                     \"never happened\"",
                    variant.name
                ),
                snippet: health.snippet(variant.line),
            });
        }
    }
}
