//! Rule: layering — protocol modules in `crates/core` may name only
//! the sanctioned `bft_sim` surface.
//!
//! ROADMAP item 2 (runtime-agnostic replica core + a real async
//! transport) requires the replica/client protocol logic to depend on
//! an abstract host interface, not the simulator. Today that interface
//! is, de facto, the `Context` surface plus the observer vocabulary
//! (trace/health/metrics *types*, not their engines). This rule makes
//! the boundary explicit: protocol modules may reference the allowlist
//! below — everything a future `Host` trait would have to provide —
//! and nothing else from `bft_sim`. Engine, network, chaos, and
//! registry types are the simulator's own business; naming them from a
//! protocol module deepens exactly the coupling the split must undo.
//! The harness modules (`lib.rs`, `cluster.rs`, `fuzz.rs`) assemble
//! simulations on purpose and are exempt, as is `#[cfg(test)]` code.

use crate::lexer::Kind;
use crate::model::WorkspaceModel;
use crate::{Finding, RULE_LAYERING};
use std::collections::BTreeSet;

/// The simulator crate whose surface is restricted.
const SIM_CRATE: &str = "bft_sim";

/// Items a protocol module may name: the `Context`/`Node` host surface,
/// identity and time scalars, and the observer vocabulary types.
const ALLOWED_ITEMS: &[&str] = &[
    "Context",
    "Node",
    "TimerId",
    "NodeId",
    "SimTime",
    "CostModel",
    "CostKind",
    "SpanEdge",
    "TraceMeta",
    "TracePhase",
    "Counter",
    "Metrics",
    "HealthSnapshot",
    "Role",
    "dur",
];

/// Modules whose whole subtree is sanctioned (pure vocabulary, no
/// engine state): the clock and the CPU cost model.
const ALLOWED_MODULES: &[&str] = &["time", "cost"];

/// Harness modules that assemble simulations by design.
const HARNESS: &[&str] = &[
    "crates/core/src/lib.rs",
    "crates/core/src/cluster.rs",
    "crates/core/src/fuzz.rs",
];

pub(crate) fn run(model: &WorkspaceModel, findings: &mut Vec<Finding>) {
    for file in model.src_files("crates/core/src/") {
        if HARNESS.contains(&file.path.as_str()) {
            continue;
        }

        // `use bft_sim::…` edges (flattened, aliases resolved).
        let mut use_lines: BTreeSet<u32> = BTreeSet::new();
        for edge in &file.uses {
            if edge.path.first().map(String::as_str) != Some(SIM_CRATE) {
                continue;
            }
            use_lines.insert(edge.line);
            let Some(second) = edge.path.get(1) else {
                continue;
            };
            if !sanctioned(second) {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: edge.line,
                    rule: RULE_LAYERING,
                    message: format!(
                        "protocol module imports `{}` from {SIM_CRATE}; only the \
                         sanctioned Context surface ({}) may cross the core↔sim \
                         boundary (see DESIGN.md §5.16)",
                        edge.path[1..].join("::"),
                        ALLOWED_ITEMS.join(", "),
                    ),
                    snippet: file.snippet(edge.line),
                });
            }
        }

        // Inline `bft_sim::X` paths outside use statements.
        let toks = &file.tokens;
        for i in 0..toks.len().saturating_sub(2) {
            if toks[i].kind == Kind::Ident
                && toks[i].text == SIM_CRATE
                && toks[i + 1].text == "::"
                && toks[i + 2].kind == Kind::Ident
                && !use_lines.contains(&toks[i].line)
            {
                let name = &toks[i + 2].text;
                if !sanctioned(name) {
                    findings.push(Finding {
                        file: file.path.clone(),
                        line: toks[i].line,
                        rule: RULE_LAYERING,
                        message: format!(
                            "protocol module names `{SIM_CRATE}::{name}`; only the \
                             sanctioned Context surface may cross the core↔sim boundary \
                             (see DESIGN.md §5.16)"
                        ),
                        snippet: file.snippet(toks[i].line),
                    });
                }
            }
        }
    }
}

fn sanctioned(name: &str) -> bool {
    ALLOWED_ITEMS.contains(&name) || ALLOWED_MODULES.contains(&name)
}
