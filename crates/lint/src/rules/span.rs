//! Rule: span-pairing — every `TracePhase` opened is also closed.
//!
//! The trace assembler attributes request latency to phases by pairing
//! `SpanEdge::Open` with `SpanEdge::Close` per `(phase, seq)`. A phase
//! that protocol code opens but never closes leaks spans that silently
//! corrupt the `breakdown` attribution (the open is dropped when the
//! ring wraps, or the phase absorbs time until the end of the run); a
//! close without any open is a stale emission left behind by a
//! refactor. Spans whose phase is computed (`exec_phase`,
//! `commit_close_phase(slot)`) are attributed to every `TracePhase`
//! variant the enclosing function — or a function it directly calls —
//! literally mentions, which keeps the rule exact on today's handoff
//! patterns without a dataflow engine.

use crate::lexer::Kind;
use crate::model::{
    called_names, fn_variant_mentions, leading_path_tail, matching, split_args, WorkspaceModel,
};
use crate::{Finding, RULE_SPAN};
use std::collections::{BTreeMap, BTreeSet};

/// The file declaring `TracePhase`.
const TRACE: &str = "crates/sim/src/trace.rs";
/// The enum whose open/close edges must pair.
const PHASE_ENUM: &str = "TracePhase";

pub(crate) fn run(model: &WorkspaceModel, findings: &mut Vec<Finding>) {
    let Some(trace_file) = model.file(TRACE) else {
        return;
    };
    let Some(def) = trace_file.enum_def(PHASE_ENUM) else {
        return;
    };

    // fn name -> TracePhase variants its body literally mentions,
    // unioned across all core files (for one-hop callee attribution).
    let mut mentions_by_fn: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for file in model.src_files("crates/core/src/") {
        for (name, vars) in fn_variant_mentions(file, PHASE_ENUM) {
            mentions_by_fn.entry(name).or_default().extend(vars);
        }
    }

    // Per-variant first Open and first Close emission sites.
    let mut opens: BTreeMap<String, (String, u32)> = BTreeMap::new();
    let mut closes: BTreeMap<String, (String, u32)> = BTreeMap::new();

    for file in model.src_files("crates/core/src/") {
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if toks[i].kind != Kind::Ident
                || (toks[i].text != "trace" && toks[i].text != "trace_now")
                || toks.get(i + 1).map(|t| t.text.as_str()) != Some("(")
                || i == 0
                || toks[i - 1].text != "."
            {
                continue;
            }
            let close = matching(toks, i + 1, "(", ")");
            let args = split_args(toks, (i + 2, close));
            if args.len() < 2 {
                continue; // an accessor like `sim.trace()`, not an emission
            }
            let Some(edge) = leading_path_tail(toks, args[0], "SpanEdge") else {
                continue; // edge passed as a variable: no static pairing claim
            };
            if edge == "Instant" {
                continue;
            }
            let site = (file.path.clone(), toks[i].line);
            let phases: BTreeSet<String> = match leading_path_tail(toks, args[1], PHASE_ENUM) {
                Some(name) => BTreeSet::from([name]),
                None => {
                    // Computed phase: attribute to every variant the
                    // enclosing fn (or a direct callee) mentions.
                    let mut candidates = BTreeSet::new();
                    for encl in file.enclosing_fns(i) {
                        if let Some(vars) = fn_variant_mentions(file, PHASE_ENUM).get(&encl.name) {
                            candidates.extend(vars.iter().cloned());
                        }
                        if let Some(body) = encl.body {
                            for callee in called_names(toks, body) {
                                if let Some(vars) = mentions_by_fn.get(&callee) {
                                    candidates.extend(vars.iter().cloned());
                                }
                            }
                        }
                    }
                    candidates
                }
            };
            let book = if edge == "Open" {
                &mut opens
            } else {
                &mut closes
            };
            for phase in phases {
                book.entry(phase).or_insert_with(|| site.clone());
            }
        }
    }

    for variant in &def.variants {
        match (opens.get(&variant.name), closes.get(&variant.name)) {
            (Some((file, line)), None) => findings.push(Finding {
                file: file.clone(),
                line: *line,
                rule: RULE_SPAN,
                message: format!(
                    "`{PHASE_ENUM}::{}` is opened here but never closed anywhere in \
                     crates/core; leaked spans corrupt the latency breakdown",
                    variant.name
                ),
                snippet: model
                    .file(file)
                    .map(|f| f.snippet(*line))
                    .unwrap_or_default(),
            }),
            (None, Some((file, line))) => findings.push(Finding {
                file: file.clone(),
                line: *line,
                rule: RULE_SPAN,
                message: format!(
                    "`{PHASE_ENUM}::{}` is closed here but never opened anywhere in \
                     crates/core; a stale close is refactoring debris",
                    variant.name
                ),
                snippet: model
                    .file(file)
                    .map(|f| f.snippet(*line))
                    .unwrap_or_default(),
            }),
            _ => {}
        }
    }
}
