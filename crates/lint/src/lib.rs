//! `bft-lint`: protocol-aware static analysis for the BFT workspace.
//!
//! The correctness argument of the protocol (Castro & Liskov, DSN 2001)
//! leans on invariants that ordinary type checking cannot see. The
//! linter enforces them in two phases.
//!
//! **Phase 1 — token rules** (per file, purely lexical):
//!
//! 1. **determinism** — replicas are deterministic state machines, and
//!    the seed-replayable simulator assumes it; iterating a
//!    `HashMap`/`HashSet` in a protocol path lets hasher randomness
//!    reach message emission order.
//! 2. **quorum-math** — every quorum threshold (`2f+1`, `3f+1`, `f+1`,
//!    and participation bounds like `n - f`) must come from
//!    `bft_core::types::Quorums`; inline re-derivations are where
//!    off-by-one safety bugs hide.
//! 3. **catch-all** — replica/client dispatch over the `Msg` enum must
//!    be exhaustive, so adding a message variant forces every handler
//!    to make an explicit decision.
//! 4. **decode-panic** — `wire.rs` decoders consume untrusted network
//!    bytes; `unwrap`/`expect`/slice-indexing turn a Byzantine payload
//!    into a crash instead of an `Err`.
//!
//! **Phase 2 — model rules** (cross-file, over the [`model`] item
//! model):
//!
//! 5. **handler-coverage** — every `Msg` variant has a dispatch arm in
//!    `replica.rs`/`client.rs`, and the wire tag byte is unique and
//!    agrees between `Msg::tag()`, encode, and decode.
//! 6. **timer-pairing** — every armed `TIMER_*` token has a fire
//!    handler; stored one-shot timers have a cancel site.
//! 7. **span-pairing** — every `TracePhase` opened is closed.
//! 8. **invariant-coverage** — every `Violation` variant is constructed
//!    by a checker and referenced by at least one test.
//! 9. **counter-coverage** — every registered health counter has an
//!    emission site.
//! 10. **layering** — protocol modules in `crates/core` name only the
//!     sanctioned `bft_sim` surface (the future `Host` boundary).
//!
//! A finding may be suppressed with a *justified* pragma on the same
//! line or the line above:
//!
//! ```text
//! // bft-lint: allow(determinism) -- membership set, never iterated
//! ```
//!
//! A pragma without a `-- reason` suppresses nothing and is itself
//! reported; a justified pragma that suppresses zero findings is a
//! *stale* pragma and also reported, so the exemption list can only
//! shrink as code is fixed.

pub mod lexer;
pub mod model;
pub mod rules;

use lexer::{Comment, Lexed, Token};
use model::matching;
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Rule identifiers, as used in pragmas and reports.
pub const RULE_DETERMINISM: &str = "determinism";
pub const RULE_QUORUM: &str = "quorum-math";
pub const RULE_CATCHALL: &str = "catch-all";
pub const RULE_DECODE: &str = "decode-panic";
pub const RULE_HANDLER: &str = "handler-coverage";
pub const RULE_TIMER: &str = "timer-pairing";
pub const RULE_SPAN: &str = "span-pairing";
pub const RULE_INVARIANT: &str = "invariant-coverage";
pub const RULE_COUNTER: &str = "counter-coverage";
pub const RULE_LAYERING: &str = "layering";
pub const RULE_PRAGMA: &str = "pragma";

/// Phase-1 rules: per-file, token-level.
pub const TOKEN_RULES: &[&str] = &[RULE_DETERMINISM, RULE_QUORUM, RULE_CATCHALL, RULE_DECODE];

/// Phase-2 rules: cross-file, over the item model.
pub const MODEL_RULES: &[&str] = &[
    RULE_HANDLER,
    RULE_TIMER,
    RULE_SPAN,
    RULE_INVARIANT,
    RULE_COUNTER,
    RULE_LAYERING,
];

/// All suppressible rules.
pub const RULES: &[&str] = &[
    RULE_DETERMINISM,
    RULE_QUORUM,
    RULE_CATCHALL,
    RULE_DECODE,
    RULE_HANDLER,
    RULE_TIMER,
    RULE_SPAN,
    RULE_INVARIANT,
    RULE_COUNTER,
    RULE_LAYERING,
];

/// Which analysis phases to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Per-file token rules only.
    Token,
    /// Cross-file model rules only.
    Model,
    /// Both phases (the default).
    All,
}

impl Phase {
    fn token(self) -> bool {
        matches!(self, Phase::Token | Phase::All)
    }
    fn model(self) -> bool {
        matches!(self, Phase::Model | Phase::All)
    }
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Rule identifier.
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
    /// The trimmed offending source line.
    pub snippet: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            out,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )?;
        write!(out, "    {}", self.snippet)
    }
}

/// Which token rules apply to a given file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Scope {
    pub determinism: bool,
    pub quorum: bool,
    pub catchall: bool,
    pub decode: bool,
}

impl Scope {
    pub fn all() -> Scope {
        Scope {
            determinism: true,
            quorum: true,
            catchall: true,
            decode: true,
        }
    }

    pub fn is_empty(&self) -> bool {
        *self == Scope::default()
    }
}

/// Maps a workspace-relative path to the token rules that apply there.
///
/// - `determinism`: the protocol paths — all of `crates/core/src` and
///   `crates/sim/src`, minus the observer-only subsystems (`trace.rs`,
///   `metrics.rs`, `health.rs`), which post-process events and never
///   feed state back into the protocol.
/// - `quorum-math`: every `src/` file in the workspace except
///   `crates/core/src/types.rs`, the one blessed home of the
///   arithmetic.
/// - `catch-all`: the two message-dispatch sites, `replica.rs` and
///   `client.rs`.
/// - `decode-panic`: the untrusted-byte decoders, `wire.rs` and
///   `messages.rs`.
///
/// Model rules are not scoped per file: each anchors on the workspace
/// files it names (see [`rules`]).
pub fn scope_for(rel_path: &str) -> Scope {
    let path = rel_path.replace('\\', "/");
    if !path.ends_with(".rs") {
        return Scope::default();
    }
    let in_src = path.contains("/src/") || path.starts_with("src/");
    if !in_src {
        return Scope::default();
    }

    let observer = path.ends_with("/trace.rs")
        || path.ends_with("/metrics.rs")
        || path.ends_with("/health.rs");
    let protocol_crate =
        path.starts_with("crates/core/src/") || path.starts_with("crates/sim/src/");

    Scope {
        determinism: protocol_crate && !observer,
        quorum: path != "crates/core/src/types.rs",
        catchall: path == "crates/core/src/replica.rs" || path == "crates/core/src/client.rs",
        decode: path == "crates/core/src/wire.rs" || path == "crates/core/src/messages.rs",
    }
}

/// Lints one file's source under the given scope (token rules only —
/// cross-file rules need [`check_sources`]). `rel_path` is used only
/// for reporting.
pub fn check_source(rel_path: &str, source: &str, scope: Scope) -> Vec<Finding> {
    let lexed = lexer::lex(source);
    let (toks, _) = split_cfg_test(&lexed);
    let lines: Vec<&str> = source.lines().collect();
    let snippet = |line: u32| -> String {
        lines
            .get(line.saturating_sub(1) as usize)
            .map(|s| s.trim().to_string())
            .unwrap_or_default()
    };

    let mut findings = Vec::new();
    run_token_rules(rel_path, &toks, scope, &snippet, &mut findings);
    findings.sort_by_key(|fnd| (fnd.line, fnd.rule));
    findings.dedup_by_key(|fnd| (fnd.line, fnd.rule));

    let executed = executed_rules(scope, true, false);
    apply_pragmas(rel_path, &lexed.comments, findings, &snippet, &executed)
}

/// Lints a set of in-memory sources as one workspace: builds the item
/// model over all of them, runs the requested phases, and applies
/// pragmas per file. Paths containing a `tests/` component are test
/// files: they feed the model's test-reference checks but no rules or
/// pragma checks run on them.
pub fn check_sources(files: &[(String, String)], phase: Phase) -> Vec<Finding> {
    let mut work = model::WorkspaceModel::default();
    for (path, source) in files {
        let rel = path.replace('\\', "/");
        let lexed = lexer::lex(source);
        let is_test = rel.contains("/tests/") || rel.starts_with("tests/");
        let (active, stripped) = if is_test {
            (lexed.tokens.clone(), Vec::new())
        } else {
            split_cfg_test(&lexed)
        };
        let mut fm = model::FileModel::build(&rel, source, active, lexed.comments);
        fm.cfg_test_tokens = stripped;
        work.files.push(fm);
    }
    work.files.sort_by(|a, b| a.path.cmp(&b.path));

    let mut findings: Vec<Finding> = Vec::new();
    if phase.token() {
        for fm in work.files.iter().filter(|f| !f.is_test) {
            let scope = scope_for(&fm.path);
            if scope.is_empty() {
                continue;
            }
            let snippet = |line: u32| fm.snippet(line);
            run_token_rules(&fm.path, &fm.tokens, scope, &snippet, &mut findings);
        }
    }
    if phase.model() {
        rules::handler::run(&work, &mut findings);
        rules::timer::run(&work, &mut findings);
        rules::span::run(&work, &mut findings);
        rules::invariant::run(&work, &mut findings);
        rules::counter::run(&work, &mut findings);
        rules::layering::run(&work, &mut findings);
    }

    let mut by_file: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    for fnd in findings {
        by_file.entry(fnd.file.clone()).or_default().push(fnd);
    }
    let mut out = Vec::new();
    for fm in work.files.iter().filter(|f| !f.is_test) {
        let mut fnds = by_file.remove(&fm.path).unwrap_or_default();
        fnds.sort_by_key(|f| (f.line, f.rule));
        // Distinct defects can anchor on the same line (e.g. a variant
        // both unconstructed and untested), so dedup on the message too.
        fnds.dedup_by(|a, b| a.line == b.line && a.rule == b.rule && a.message == b.message);
        let executed = executed_rules(scope_for(&fm.path), phase.token(), phase.model());
        let snippet = |line: u32| fm.snippet(line);
        out.extend(apply_pragmas(
            &fm.path,
            &fm.comments,
            fnds,
            &snippet,
            &executed,
        ));
    }
    // Findings attributed to unmodeled or test files pass through.
    for fnds in by_file.into_values() {
        out.extend(fnds);
    }
    out.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    out
}

/// Lints the workspace rooted at `root`: every `src/` tree for the
/// token rules, plus `tests/` trees (fixture directories excluded) for
/// the model's test-reference checks.
pub fn check_workspace(root: &Path, phase: Phase) -> std::io::Result<Vec<Finding>> {
    let mut files: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let krate = entry?.path();
            for sub in ["src", "tests"] {
                let dir = krate.join(sub);
                if dir.is_dir() {
                    collect_rs(&dir, &mut files)?;
                }
            }
        }
    }
    for sub in ["src", "tests"] {
        let dir = root.join(sub);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    files.sort();

    let mut sources = Vec::new();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, std::fs::read_to_string(file)?));
    }
    Ok(check_sources(&sources, phase))
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            // Fixture trees hold deliberate violations and stand-in
            // files; they are test data, not workspace code.
            if path.file_name().is_some_and(|n| n == "fixtures") {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn run_token_rules(
    file: &str,
    toks: &[Token],
    scope: Scope,
    snippet: &dyn Fn(u32) -> String,
    findings: &mut Vec<Finding>,
) {
    if scope.determinism {
        rules::determinism::run(file, toks, snippet, findings);
    }
    if scope.quorum {
        rules::quorum::run(file, toks, snippet, findings);
    }
    if scope.catchall {
        rules::catchall::run(file, toks, snippet, findings);
    }
    if scope.decode {
        rules::decode::run(file, toks, snippet, findings);
    }
}

/// The rule ids actually executed against a file, for stale-pragma
/// accounting: a pragma is only "stale" if every rule it names ran and
/// still suppressed nothing.
fn executed_rules(scope: Scope, token_phase: bool, model_phase: bool) -> Vec<&'static str> {
    let mut out = Vec::new();
    if token_phase {
        if scope.determinism {
            out.push(RULE_DETERMINISM);
        }
        if scope.quorum {
            out.push(RULE_QUORUM);
        }
        if scope.catchall {
            out.push(RULE_CATCHALL);
        }
        if scope.decode {
            out.push(RULE_DECODE);
        }
    }
    if model_phase {
        out.extend(MODEL_RULES);
    }
    out
}

// ---------------------------------------------------------------------
// Token preprocessing
// ---------------------------------------------------------------------

/// Splits the token stream into (production tokens, `#[cfg(test)]`
/// tokens). The lint targets production protocol code; test modules may
/// build whatever scaffolding they like — but their tokens still count
/// as test references for coverage rules.
fn split_cfg_test(lexed: &Lexed) -> (Vec<Token>, Vec<Token>) {
    let toks = &lexed.tokens;
    let mut skip = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text == "#" && i + 1 < toks.len() && toks[i + 1].text == "[" {
            let close = matching(toks, i + 1, "[", "]");
            let attr = &toks[i + 2..close.min(toks.len())];
            let is_cfg_test =
                attr.iter().any(|t| t.text == "cfg") && attr.iter().any(|t| t.text == "test");
            if is_cfg_test {
                // Skip from the attribute through the gated item's body.
                // Only applied when the item introduces a block (mod/fn),
                // which is every use in this workspace.
                let mut j = close + 1;
                let mut saw_item = false;
                while j < toks.len() && j < close + 8 {
                    if toks[j].text == "mod" || toks[j].text == "fn" {
                        saw_item = true;
                    }
                    if toks[j].text == "{" {
                        break;
                    }
                    j += 1;
                }
                if saw_item && j < toks.len() && toks[j].text == "{" {
                    let body_close = matching(toks, j, "{", "}");
                    for flag in skip.iter_mut().take(body_close + 1).skip(i) {
                        *flag = true;
                    }
                    i = body_close + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    let mut active = Vec::new();
    let mut stripped = Vec::new();
    for (tok, skipped) in toks.iter().zip(&skip) {
        if *skipped {
            stripped.push(tok.clone());
        } else {
            active.push(tok.clone());
        }
    }
    (active, stripped)
}

// ---------------------------------------------------------------------
// Pragmas
// ---------------------------------------------------------------------

#[derive(Debug)]
struct Pragma {
    line: u32,
    rules: Vec<String>,
    justified: bool,
}

fn parse_pragmas(comments: &[Comment]) -> (Vec<Pragma>, Vec<(u32, String)>) {
    let mut pragmas = Vec::new();
    let mut malformed = Vec::new();
    for comment in comments {
        let Some(at) = comment.text.find("bft-lint:") else {
            continue;
        };
        let rest = comment.text[at + "bft-lint:".len()..].trim();
        let Some(inner) = rest
            .strip_prefix("allow")
            .map(str::trim_start)
            .and_then(|s| s.strip_prefix('('))
            .and_then(|s| s.split_once(')'))
        else {
            malformed.push((
                comment.line,
                "malformed pragma; expected `bft-lint: allow(<rule>) -- <reason>`".to_string(),
            ));
            continue;
        };
        let (rule_list, tail) = inner;
        let rules: Vec<String> = rule_list
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let unknown: Vec<&String> = rules
            .iter()
            .filter(|r| !RULES.contains(&r.as_str()))
            .collect();
        if rules.is_empty() || !unknown.is_empty() {
            malformed.push((
                comment.line,
                format!(
                    "pragma names unknown rule(s) {:?}; known rules: {:?}",
                    unknown, RULES
                ),
            ));
            continue;
        }
        let justified = tail
            .trim_start()
            .strip_prefix("--")
            .map(|reason| !reason.trim().is_empty())
            .unwrap_or(false);
        pragmas.push(Pragma {
            line: comment.line,
            rules,
            justified,
        });
    }
    (pragmas, malformed)
}

fn apply_pragmas(
    file: &str,
    comments: &[Comment],
    findings: Vec<Finding>,
    snippet: &dyn Fn(u32) -> String,
    executed: &[&'static str],
) -> Vec<Finding> {
    let (pragmas, malformed) = parse_pragmas(comments);
    let mut used = vec![false; pragmas.len()];
    let mut out: Vec<Finding> = Vec::new();
    'next: for fnd in findings {
        for (pi, p) in pragmas.iter().enumerate() {
            if p.justified
                && (p.line == fnd.line || p.line + 1 == fnd.line)
                && p.rules.iter().any(|r| r == fnd.rule)
            {
                used[pi] = true;
                continue 'next;
            }
        }
        out.push(fnd);
    }
    for (pi, pragma) in pragmas.iter().enumerate() {
        if !pragma.justified {
            out.push(Finding {
                file: file.to_string(),
                line: pragma.line,
                rule: RULE_PRAGMA,
                message: format!(
                    "allow({}) pragma without a `-- <reason>` justification suppresses nothing",
                    pragma.rules.join(", ")
                ),
                snippet: snippet(pragma.line),
            });
        } else if !used[pi] && pragma.rules.iter().all(|r| executed.iter().any(|e| e == r)) {
            out.push(Finding {
                file: file.to_string(),
                line: pragma.line,
                rule: RULE_PRAGMA,
                message: format!(
                    "stale pragma: allow({}) suppresses no findings — the code it excused \
                     is fixed or gone, remove the pragma",
                    pragma.rules.join(", ")
                ),
                snippet: snippet(pragma.line),
            });
        }
    }
    for (line, message) in malformed {
        out.push(Finding {
            file: file.to_string(),
            line,
            rule: RULE_PRAGMA,
            message,
            snippet: snippet(line),
        });
    }
    out.sort_by_key(|fnd| (fnd.line, fnd.rule));
    out
}
