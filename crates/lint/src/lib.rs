//! `bft-lint`: protocol-aware static analysis for the BFT workspace.
//!
//! The correctness argument of the protocol (Castro & Liskov, DSN 2001)
//! leans on invariants that ordinary type checking cannot see:
//!
//! 1. **determinism** — replicas are deterministic state machines, and
//!    the seed-replayable simulator assumes it; iterating a
//!    `HashMap`/`HashSet` in a protocol path lets hasher randomness
//!    reach message emission order.
//! 2. **quorum-math** — every quorum threshold (`2f+1`, `3f+1`, `f+1`,
//!    and participation bounds like `n - f`) must come from
//!    `bft_core::types::Quorums`; inline re-derivations are where
//!    off-by-one safety bugs hide (`n - f` as a fast quorum being the
//!    canonical example — see `Quorums::fast_quorum`).
//! 3. **catch-all** — replica/client dispatch over the `Msg` enum must
//!    be exhaustive, so adding a message variant forces every handler
//!    to make an explicit decision.
//! 4. **decode-panic** — `wire.rs` decoders consume untrusted network
//!    bytes; `unwrap`/`expect`/slice-indexing turn a Byzantine payload
//!    into a crash instead of an `Err`.
//!
//! A finding may be suppressed with a *justified* pragma on the same
//! line or the line above:
//!
//! ```text
//! // bft-lint: allow(determinism) -- membership set, never iterated
//! ```
//!
//! A pragma without a `-- reason` suppresses nothing and is itself
//! reported, so every exemption in the tree carries its argument.

pub mod lexer;

use lexer::{Comment, Kind, Lexed, Token};
use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// Rule identifiers, as used in pragmas and reports.
pub const RULE_DETERMINISM: &str = "determinism";
pub const RULE_QUORUM: &str = "quorum-math";
pub const RULE_CATCHALL: &str = "catch-all";
pub const RULE_DECODE: &str = "decode-panic";
pub const RULE_PRAGMA: &str = "pragma";

/// All suppressible rules.
pub const RULES: &[&str] = &[RULE_DETERMINISM, RULE_QUORUM, RULE_CATCHALL, RULE_DECODE];

/// The enum whose dispatch must be exhaustive (rule 3).
const DISPATCH_ENUM: &str = "Msg";

/// Hash-ordered iteration methods flagged by rule 1. `retain`,
/// `insert`, `get`, `contains_key`, and `len` are order-independent and
/// deliberately not listed.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Rule identifier.
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
    /// The trimmed offending source line.
    pub snippet: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            out,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )?;
        write!(out, "    {}", self.snippet)
    }
}

/// Which rules apply to a given file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Scope {
    pub determinism: bool,
    pub quorum: bool,
    pub catchall: bool,
    pub decode: bool,
}

impl Scope {
    pub fn all() -> Scope {
        Scope {
            determinism: true,
            quorum: true,
            catchall: true,
            decode: true,
        }
    }

    pub fn is_empty(&self) -> bool {
        *self == Scope::default()
    }
}

/// Maps a workspace-relative path to the rules that apply there.
///
/// - `determinism`: the protocol paths — all of `crates/core/src` and
///   `crates/sim/src`, minus the observer-only subsystems (`trace.rs`,
///   `metrics.rs`, `health.rs`), which post-process events and never
///   feed state back into the protocol.
/// - `quorum-math`: every `src/` file in the workspace except
///   `crates/core/src/types.rs`, the one blessed home of the
///   arithmetic.
/// - `catch-all`: the two message-dispatch sites, `replica.rs` and
///   `client.rs`.
/// - `decode-panic`: the untrusted-byte decoders, `wire.rs` and
///   `messages.rs`.
pub fn scope_for(rel_path: &str) -> Scope {
    let path = rel_path.replace('\\', "/");
    if !path.ends_with(".rs") {
        return Scope::default();
    }
    let in_src = path.contains("/src/") || path.starts_with("src/");
    if !in_src {
        return Scope::default();
    }

    let observer = path.ends_with("/trace.rs")
        || path.ends_with("/metrics.rs")
        || path.ends_with("/health.rs");
    let protocol_crate =
        path.starts_with("crates/core/src/") || path.starts_with("crates/sim/src/");

    Scope {
        determinism: protocol_crate && !observer,
        quorum: path != "crates/core/src/types.rs",
        catchall: path == "crates/core/src/replica.rs" || path == "crates/core/src/client.rs",
        decode: path == "crates/core/src/wire.rs" || path == "crates/core/src/messages.rs",
    }
}

/// Lints one file's source under the given scope. `rel_path` is used
/// only for reporting.
pub fn check_source(rel_path: &str, source: &str, scope: Scope) -> Vec<Finding> {
    let lexed = lexer::lex(source);
    let toks = active_tokens(&lexed);
    let lines: Vec<&str> = source.lines().collect();
    let snippet = |line: u32| -> String {
        lines
            .get(line.saturating_sub(1) as usize)
            .map(|s| s.trim().to_string())
            .unwrap_or_default()
    };

    let mut findings = Vec::new();
    if scope.determinism {
        rule_determinism(rel_path, &toks, &snippet, &mut findings);
    }
    if scope.quorum {
        rule_quorum(rel_path, &toks, &snippet, &mut findings);
    }
    if scope.catchall {
        rule_catchall(rel_path, &toks, &snippet, &mut findings);
    }
    if scope.decode {
        rule_decode(rel_path, &toks, &snippet, &mut findings);
    }

    findings.sort_by_key(|fnd| (fnd.line, fnd.rule));
    findings.dedup_by_key(|fnd| (fnd.line, fnd.rule));

    apply_pragmas(rel_path, &lexed.comments, findings, &snippet)
}

/// Lints every `src/` tree in the workspace rooted at `root`.
pub fn check_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut files)?;
    }
    files.sort();

    let mut findings = Vec::new();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let scope = scope_for(&rel);
        if scope.is_empty() {
            continue;
        }
        let source = std::fs::read_to_string(file)?;
        findings.extend(check_source(&rel, &source, scope));
    }
    Ok(findings)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Token preprocessing
// ---------------------------------------------------------------------

/// Returns the token stream with `#[cfg(test)]`-gated items removed.
/// The lint targets production protocol code; test modules may build
/// whatever scaffolding they like.
fn active_tokens(lexed: &Lexed) -> Vec<Token> {
    let toks = &lexed.tokens;
    let mut skip = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text == "#" && i + 1 < toks.len() && toks[i + 1].text == "[" {
            let close = matching(toks, i + 1, "[", "]");
            let attr = &toks[i + 2..close.min(toks.len())];
            let is_cfg_test =
                attr.iter().any(|t| t.text == "cfg") && attr.iter().any(|t| t.text == "test");
            if is_cfg_test {
                // Skip from the attribute through the gated item's body.
                // Only applied when the item introduces a block (mod/fn),
                // which is every use in this workspace.
                let mut j = close + 1;
                let mut saw_item = false;
                while j < toks.len() && j < close + 8 {
                    if toks[j].text == "mod" || toks[j].text == "fn" {
                        saw_item = true;
                    }
                    if toks[j].text == "{" {
                        break;
                    }
                    j += 1;
                }
                if saw_item && j < toks.len() && toks[j].text == "{" {
                    let body_close = matching(toks, j, "{", "}");
                    for flag in skip.iter_mut().take(body_close + 1).skip(i) {
                        *flag = true;
                    }
                    i = body_close + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    toks.iter()
        .zip(&skip)
        .filter(|(_, skipped)| !**skipped)
        .map(|(t, _)| t.clone())
        .collect()
}

/// Index of the token matching the opener at `open` (which must hold
/// `open_text`). Returns the last index if unbalanced.
fn matching(toks: &[Token], open: usize, open_text: &str, close_text: &str) -> usize {
    let mut depth = 0usize;
    for (j, tok) in toks.iter().enumerate().skip(open) {
        if tok.text == open_text {
            depth += 1;
        } else if tok.text == close_text {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len().saturating_sub(1)
}

// ---------------------------------------------------------------------
// Rule 1: determinism — no hash-ordered iteration in protocol paths
// ---------------------------------------------------------------------

fn rule_determinism(
    file: &str,
    toks: &[Token],
    snippet: &dyn Fn(u32) -> String,
    findings: &mut Vec<Finding>,
) {
    let tracked = tracked_hash_names(toks);
    if tracked.is_empty() {
        return;
    }

    // Direct iteration-method calls: `name.keys()`, `self.name.iter()`, …
    for i in 2..toks.len() {
        if toks[i].kind == Kind::Ident
            && ITER_METHODS.contains(&toks[i].text.as_str())
            && toks[i - 1].text == "."
            && toks.get(i + 1).map(|t| t.text.as_str()) == Some("(")
            && toks[i - 2].kind == Kind::Ident
            && tracked.contains(&toks[i - 2].text)
        {
            findings.push(Finding {
                file: file.to_string(),
                line: toks[i].line,
                rule: RULE_DETERMINISM,
                message: format!(
                    "iteration over hash-ordered `{}` (`.{}()`); hasher randomness can reach \
                     protocol order — use BTreeMap/BTreeSet or sort at emission",
                    toks[i - 2].text,
                    toks[i].text
                ),
                snippet: snippet(toks[i].line),
            });
        }
    }

    // `for … in <expr over a tracked container> { … }`
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text == "for" && toks[i].kind == Kind::Ident {
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut in_idx = None;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => break,
                    ";" if depth == 0 => break,
                    "in" if depth == 0 && toks[j].kind == Kind::Ident && in_idx.is_none() => {
                        in_idx = Some(j);
                    }
                    _ => {}
                }
                j += 1;
            }
            if let Some(start) = in_idx {
                for tok in &toks[start + 1..j.min(toks.len())] {
                    if tok.kind == Kind::Ident && tracked.contains(&tok.text) {
                        findings.push(Finding {
                            file: file.to_string(),
                            line: tok.line,
                            rule: RULE_DETERMINISM,
                            message: format!(
                                "`for … in` over hash-ordered `{}`; iteration order is \
                                 hasher-dependent — use BTreeMap/BTreeSet",
                                tok.text
                            ),
                            snippet: snippet(tok.line),
                        });
                        break;
                    }
                }
            }
        }
        i += 1;
    }
}

/// Collects identifiers bound to a `HashMap`/`HashSet` type in this
/// file: struct fields, fn params, `let` bindings (annotated or
/// constructed via `HashMap::new()`-style calls).
fn tracked_hash_names(toks: &[Token]) -> BTreeSet<String> {
    let mut tracked = BTreeSet::new();
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != Kind::Ident || (tok.text != "HashMap" && tok.text != "HashSet") {
            continue;
        }
        // Walk left across type-ish tokens to the binding site.
        let mut j = i as isize - 1;
        while j >= 0 {
            let t = &toks[j as usize];
            match t.text.as_str() {
                ":" => {
                    if j >= 1 && toks[j as usize - 1].kind == Kind::Ident {
                        tracked.insert(toks[j as usize - 1].text.clone());
                    }
                    break;
                }
                "=" => {
                    // `let [mut] name = HashMap::new()` — scan for the `let`.
                    let mut k = j - 1;
                    let floor = (j - 8).max(0);
                    while k >= floor {
                        let lt = &toks[k as usize];
                        if lt.text == "let" {
                            let mut name_idx = k as usize + 1;
                            while name_idx < toks.len()
                                && matches!(toks[name_idx].text.as_str(), "mut" | "ref")
                            {
                                name_idx += 1;
                            }
                            if toks[name_idx].kind == Kind::Ident {
                                tracked.insert(toks[name_idx].text.clone());
                            }
                            break;
                        }
                        if matches!(lt.text.as_str(), ";" | "{" | "}") {
                            break;
                        }
                        k -= 1;
                    }
                    break;
                }
                "::" | "<" | ">" | "," | "&" | "(" | ")" | "mut" => j -= 1,
                _ if t.kind == Kind::Ident || t.kind == Kind::Lifetime => j -= 1,
                _ => break,
            }
        }
    }
    tracked
}

// ---------------------------------------------------------------------
// Rule 2: quorum-math — thresholds come from Quorums, nowhere else
// ---------------------------------------------------------------------

fn rule_quorum(
    file: &str,
    toks: &[Token],
    snippet: &dyn Fn(u32) -> String,
    findings: &mut Vec<Finding>,
) {
    let num_is = |tok: &Token, value: &[&str]| -> bool {
        if tok.kind != Kind::Num {
            return false;
        }
        let digits: String = tok
            .text
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect();
        value.contains(&digits.as_str())
    };

    let mut hit = |line: u32, shape: &str| {
        findings.push(Finding {
            file: file.to_string(),
            line,
            rule: RULE_QUORUM,
            message: format!(
                "inline quorum arithmetic ({shape}); thresholds must come from \
                 `bft_core::types::Quorums`"
            ),
            snippet: snippet(line),
        });
    };

    // `2 * f…`, `3 * f…` and `1 + f…` (forward forms).
    for i in 0..toks.len() {
        if num_is(&toks[i], &["2", "3"])
            && toks.get(i + 1).map(|t| t.text.as_str()) == Some("*")
            && f_path_forward(toks, i + 2).is_some()
        {
            hit(toks[i].line, "k * f");
        }
        if num_is(&toks[i], &["1"])
            && toks.get(i + 1).map(|t| t.text.as_str()) == Some("+")
            && f_path_forward(toks, i + 2).is_some()
        {
            hit(toks[i].line, "1 + f");
        }
    }

    // Backward forms anchored on a terminal `f`: `f… * k`, `f… + 1`,
    // allowing a call `()` and `as <ty>` casts in between.
    for i in 0..toks.len() {
        if !(toks[i].kind == Kind::Ident && toks[i].text == "f") {
            continue;
        }
        // Terminal: not a path segment (`f.something`).
        if toks.get(i + 1).map(|t| t.text.as_str()) == Some(".") {
            continue;
        }
        let mut end = i;
        if toks.get(end + 1).map(|t| t.text.as_str()) == Some("(")
            && toks.get(end + 2).map(|t| t.text.as_str()) == Some(")")
        {
            end += 2;
        }
        while toks.get(end + 1).map(|t| t.text.as_str()) == Some("as")
            && toks.get(end + 2).map(|t| t.kind) == Some(Kind::Ident)
        {
            end += 2;
        }
        let next = toks.get(end + 1).map(|t| t.text.as_str());
        if next == Some("+") && toks.get(end + 2).is_some_and(|t| num_is(t, &["1"])) {
            hit(toks[i].line, "f + 1");
        }
        if next == Some("*") && toks.get(end + 2).is_some_and(|t| num_is(t, &["2", "3"])) {
            hit(toks[i].line, "f * k");
        }
    }

    // `n… - f…`: a participation threshold derived by hand. `n - f` is
    // the classic wrong fast quorum — its intersection with a 2f+1
    // view-change quorum can be a single (possibly Byzantine) replica —
    // and the correct value (`n`, see `Quorums::fast_quorum`) is easy to
    // get wrong when rederived inline, so any `n - f` outside `Quorums`
    // is a finding. Anchored on a terminal `n` (not a path segment),
    // allowing a call `()` and `as <ty>` casts before the `-`.
    for i in 0..toks.len() {
        if !(toks[i].kind == Kind::Ident && toks[i].text == "n") {
            continue;
        }
        if toks.get(i + 1).map(|t| t.text.as_str()) == Some(".") {
            continue;
        }
        let mut end = i;
        if toks.get(end + 1).map(|t| t.text.as_str()) == Some("(")
            && toks.get(end + 2).map(|t| t.text.as_str()) == Some(")")
        {
            end += 2;
        }
        while toks.get(end + 1).map(|t| t.text.as_str()) == Some("as")
            && toks.get(end + 2).map(|t| t.kind) == Some(Kind::Ident)
        {
            end += 2;
        }
        if toks.get(end + 1).map(|t| t.text.as_str()) == Some("-")
            && f_path_forward(toks, end + 2).is_some()
        {
            hit(toks[i].line, "n - f");
        }
    }
}

/// If the tokens starting at `start` form a dotted path whose terminal
/// identifier is `f` (e.g. `f`, `self.f`, `cfg.f()`), returns the index
/// of that terminal token.
fn f_path_forward(toks: &[Token], start: usize) -> Option<usize> {
    let mut k = start;
    loop {
        let tok = toks.get(k)?;
        if tok.kind != Kind::Ident {
            return None;
        }
        if toks.get(k + 1).map(|t| t.text.as_str()) == Some(".") {
            k += 2;
            continue;
        }
        return if tok.text == "f" { Some(k) } else { None };
    }
}

// ---------------------------------------------------------------------
// Rule 3: catch-all — Msg dispatch must be exhaustive
// ---------------------------------------------------------------------

fn rule_catchall(
    file: &str,
    toks: &[Token],
    snippet: &dyn Fn(u32) -> String,
    findings: &mut Vec<Finding>,
) {
    for i in 0..toks.len() {
        if !(toks[i].kind == Kind::Ident && toks[i].text == "match") {
            continue;
        }
        if i > 0 && matches!(toks[i - 1].text.as_str(), "." | "::") {
            continue; // a method or path segment named `match`, not the keyword
        }
        // Find the match body: the first `{` outside any scrutinee parens.
        let mut depth = 0i32;
        let mut open = None;
        let mut j = i + 1;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    open = Some(j);
                    break;
                }
                ";" if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = open else { continue };
        let close = matching(toks, open, "{", "}");

        // Parse arms: pattern tokens up to each top-level `=>`.
        let mut pos = open + 1;
        let mut dispatches_enum = false;
        let mut wildcard_lines: Vec<u32> = Vec::new();
        while pos < close {
            let pat_start = pos;
            let mut depth = 0i32;
            while pos < close {
                match toks[pos].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "=>" if depth == 0 => break,
                    _ => {}
                }
                pos += 1;
            }
            if pos >= close {
                break;
            }
            let pattern = &toks[pat_start..pos];
            // Strip a trailing `if <guard>` for the wildcard check.
            let guard_at = pattern
                .iter()
                .position(|t| t.text == "if" && t.kind == Kind::Ident)
                .unwrap_or(pattern.len());
            let head = &pattern[..guard_at];
            if pattern
                .windows(2)
                .any(|w| w[0].text == DISPATCH_ENUM && w[1].text == "::")
            {
                dispatches_enum = true;
            }
            if head.len() == 1 && head[0].text == "_" {
                wildcard_lines.push(head[0].line);
            }

            // Skip the arm body.
            pos += 1; // past `=>`
            if pos < close && toks[pos].text == "{" {
                pos = matching(toks, pos, "{", "}") + 1;
            } else {
                let mut depth = 0i32;
                while pos < close {
                    match toks[pos].text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "," if depth == 0 => {
                            pos += 1;
                            break;
                        }
                        _ => {}
                    }
                    pos += 1;
                }
            }
            // Consume a trailing comma after block bodies.
            if pos < close && toks[pos].text == "," {
                pos += 1;
            }
        }

        if dispatches_enum {
            for line in wildcard_lines {
                findings.push(Finding {
                    file: file.to_string(),
                    line,
                    rule: RULE_CATCHALL,
                    message: format!(
                        "`_ =>` catch-all in a `{DISPATCH_ENUM}` dispatch; handle every \
                         variant explicitly so new messages cannot be silently dropped"
                    ),
                    snippet: snippet(line),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule 4: decode-panic — decoders must be total over arbitrary bytes
// ---------------------------------------------------------------------

fn rule_decode(
    file: &str,
    toks: &[Token],
    snippet: &dyn Fn(u32) -> String,
    findings: &mut Vec<Finding>,
) {
    const PANIC_MACROS: &[&str] = &[
        "panic",
        "unreachable",
        "todo",
        "unimplemented",
        "assert",
        "assert_eq",
        "assert_ne",
        "debug_assert",
        "debug_assert_eq",
        "debug_assert_ne",
    ];

    for i in 0..toks.len() {
        if !(toks[i].text == "fn"
            && toks
                .get(i + 1)
                .is_some_and(|t| t.text == "decode" || t.text == "from_bytes"))
        {
            continue;
        }
        // Find the body block.
        let mut depth = 0i32;
        let mut open = None;
        let mut j = i + 2;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    open = Some(j);
                    break;
                }
                ";" if depth == 0 => break, // trait method without default body
                _ => {}
            }
            j += 1;
        }
        let Some(open) = open else { continue };
        let close = matching(toks, open, "{", "}");
        let fn_name = &toks[i + 1].text;

        for k in open + 1..close {
            let tok = &toks[k];
            if tok.kind == Kind::Ident
                && matches!(tok.text.as_str(), "unwrap" | "expect" | "unwrap_unchecked")
                && toks[k - 1].text == "."
                && toks.get(k + 1).map(|t| t.text.as_str()) == Some("(")
            {
                findings.push(Finding {
                    file: file.to_string(),
                    line: tok.line,
                    rule: RULE_DECODE,
                    message: format!(
                        "`.{}()` in `fn {fn_name}`; decoders consume untrusted bytes and \
                         must return Err, never panic",
                        tok.text
                    ),
                    snippet: snippet(tok.line),
                });
            }
            if tok.kind == Kind::Ident
                && PANIC_MACROS.contains(&tok.text.as_str())
                && toks.get(k + 1).map(|t| t.text.as_str()) == Some("!")
            {
                findings.push(Finding {
                    file: file.to_string(),
                    line: tok.line,
                    rule: RULE_DECODE,
                    message: format!(
                        "`{}!` in `fn {fn_name}`; decoders must be total over arbitrary input",
                        tok.text
                    ),
                    snippet: snippet(tok.line),
                });
            }
            // `expr[i]` / `expr?[0]` — indexing panics on short input.
            // (`#[attr]` and type syntax `<[u8; 16]>` are preceded by `#`
            // or `<` and never match; keywords before `[` are array
            // literals or patterns, not indexing.)
            const KEYWORDS: &[&str] = &[
                "for", "in", "return", "as", "if", "else", "match", "let", "mut", "ref", "move",
                "break", "continue", "where", "impl", "dyn", "box", "while", "loop", "yield",
            ];
            let prev = &toks[k - 1];
            let prev_indexable = matches!(prev.text.as_str(), ")" | "]" | "?")
                || (prev.kind == Kind::Ident && !KEYWORDS.contains(&prev.text.as_str()));
            if tok.text == "[" && prev_indexable {
                findings.push(Finding {
                    file: file.to_string(),
                    line: tok.line,
                    rule: RULE_DECODE,
                    message: format!(
                        "slice indexing in `fn {fn_name}`; out-of-range access panics on \
                         truncated input — use a checked take"
                    ),
                    snippet: snippet(tok.line),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// Pragmas
// ---------------------------------------------------------------------

#[derive(Debug)]
struct Pragma {
    line: u32,
    rules: Vec<String>,
    justified: bool,
}

fn parse_pragmas(comments: &[Comment]) -> (Vec<Pragma>, Vec<(u32, String)>) {
    let mut pragmas = Vec::new();
    let mut malformed = Vec::new();
    for comment in comments {
        let Some(at) = comment.text.find("bft-lint:") else {
            continue;
        };
        let rest = comment.text[at + "bft-lint:".len()..].trim();
        let Some(inner) = rest
            .strip_prefix("allow")
            .map(str::trim_start)
            .and_then(|s| s.strip_prefix('('))
            .and_then(|s| s.split_once(')'))
        else {
            malformed.push((
                comment.line,
                "malformed pragma; expected `bft-lint: allow(<rule>) -- <reason>`".to_string(),
            ));
            continue;
        };
        let (rule_list, tail) = inner;
        let rules: Vec<String> = rule_list
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let unknown: Vec<&String> = rules
            .iter()
            .filter(|r| !RULES.contains(&r.as_str()))
            .collect();
        if rules.is_empty() || !unknown.is_empty() {
            malformed.push((
                comment.line,
                format!(
                    "pragma names unknown rule(s) {:?}; known rules: {:?}",
                    unknown, RULES
                ),
            ));
            continue;
        }
        let justified = tail
            .trim_start()
            .strip_prefix("--")
            .map(|reason| !reason.trim().is_empty())
            .unwrap_or(false);
        pragmas.push(Pragma {
            line: comment.line,
            rules,
            justified,
        });
    }
    (pragmas, malformed)
}

fn apply_pragmas(
    file: &str,
    comments: &[Comment],
    findings: Vec<Finding>,
    snippet: &dyn Fn(u32) -> String,
) -> Vec<Finding> {
    let (pragmas, malformed) = parse_pragmas(comments);
    let mut out: Vec<Finding> = findings
        .into_iter()
        .filter(|fnd| {
            !pragmas.iter().any(|p| {
                p.justified
                    && (p.line == fnd.line || p.line + 1 == fnd.line)
                    && p.rules.iter().any(|r| r == fnd.rule)
            })
        })
        .collect();
    for pragma in &pragmas {
        if !pragma.justified {
            out.push(Finding {
                file: file.to_string(),
                line: pragma.line,
                rule: RULE_PRAGMA,
                message: format!(
                    "allow({}) pragma without a `-- <reason>` justification suppresses nothing",
                    pragma.rules.join(", ")
                ),
                snippet: snippet(pragma.line),
            });
        }
    }
    for (line, message) in malformed {
        out.push(Finding {
            file: file.to_string(),
            line,
            rule: RULE_PRAGMA,
            message,
            snippet: snippet(line),
        });
    }
    out.sort_by_key(|fnd| (fnd.line, fnd.rule));
    out
}
