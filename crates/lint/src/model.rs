//! Phase 1 of the analyzer: a lightweight, cross-file *item model*.
//!
//! The token rules of PR 4 see one file at a time, so they cannot know
//! that a `Msg` variant has no dispatch arm, that a timer is armed but
//! never handled, or that `crates/core` quietly leaks a dependency on
//! the simulator's engine types. This module parses every workspace
//! file (with the same hand-rolled lexer — still dependency-free) into
//! just enough structure for those questions:
//!
//! - enums with their variants (`Msg`, `TracePhase`, `Violation`,
//!   `Counter` are the ones the rules care about),
//! - functions with their body token ranges (so rules can scan call
//!   sites, match arms, and literal references per function),
//! - `impl` blocks (so `impl Display for Violation` can be excluded
//!   from "is this variant ever constructed?"),
//! - `const` items (timer tokens), and
//! - flattened `use` edges (the layering rule's raw material).
//!
//! The extractor is deliberately *lexical*: it never fails, but it
//! records whether the file's delimiters balanced (`balanced`) so a
//! self-check test can assert the model round-trips the real workspace
//! without falling off the rails.

use crate::lexer::{Comment, Kind, Token};
use std::collections::{BTreeMap, BTreeSet};

/// One enum variant.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Variant name.
    pub name: String,
    /// 1-based line of the variant's declaration.
    pub line: u32,
    /// True when the variant carries a `#[cfg(test)]` attribute —
    /// test-only scaffolding exempt from coverage rules.
    pub cfg_test: bool,
}

/// An `enum` item.
#[derive(Debug, Clone)]
pub struct EnumDef {
    /// Enum name.
    pub name: String,
    /// 1-based line of the `enum` keyword.
    pub line: u32,
    /// Variants in declaration order.
    pub variants: Vec<Variant>,
    /// Token range of the enum body, inclusive of both braces.
    pub body: (usize, usize),
}

impl EnumDef {
    /// Looks up a variant by name.
    pub fn variant(&self, name: &str) -> Option<&Variant> {
        self.variants.iter().find(|v| v.name == name)
    }
}

/// A `fn` item (free function, method, or trait default method).
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range of the body, inclusive of both braces. `None` for
    /// bodiless trait signatures.
    pub body: Option<(usize, usize)>,
}

/// An `impl` block.
#[derive(Debug, Clone)]
pub struct ImplDef {
    /// Last path segment of the implemented trait (`Display` for
    /// `impl fmt::Display for Violation`), or `None` for inherent
    /// impls.
    pub trait_name: Option<String>,
    /// First path segment of the implementing type.
    pub type_name: String,
    /// 1-based line of the `impl` keyword.
    pub line: u32,
    /// Token range of the impl body, inclusive of both braces.
    pub body: (usize, usize),
}

/// A `const` item.
#[derive(Debug, Clone)]
pub struct ConstDef {
    /// Constant name.
    pub name: String,
    /// 1-based line.
    pub line: u32,
}

/// One flattened `use` leaf: `use a::b::{c, d::e}` yields
/// `[a, b, c]` and `[a, b, d, e]`.
#[derive(Debug, Clone)]
pub struct UseEdge {
    /// Path segments, aliases resolved to the *original* item name.
    pub path: Vec<String>,
    /// 1-based line of the leaf segment.
    pub line: u32,
}

/// The item model of one source file.
#[derive(Debug, Default)]
pub struct FileModel {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// The analyzed token stream (`#[cfg(test)]` items stripped for
    /// `src/` files, kept verbatim for test files).
    pub tokens: Vec<Token>,
    /// Comments, for the pragma engine.
    pub comments: Vec<Comment>,
    /// Source lines, for finding snippets.
    pub lines: Vec<String>,
    /// Enum items.
    pub enums: Vec<EnumDef>,
    /// Function items.
    pub fns: Vec<FnDef>,
    /// Impl blocks.
    pub impls: Vec<ImplDef>,
    /// Const items.
    pub consts: Vec<ConstDef>,
    /// Flattened use edges.
    pub uses: Vec<UseEdge>,
    /// Tokens of `#[cfg(test)]` regions stripped from `tokens` (empty
    /// for test files, whose `tokens` are kept verbatim). Used by the
    /// test-reference side of invariant-coverage.
    pub cfg_test_tokens: Vec<Token>,
    /// Whether every `{`/`(`/`[` matched during extraction. A false
    /// value means the lexical model is unreliable for this file.
    pub balanced: bool,
    /// True when the file lives under a `tests/` directory (test files
    /// feed only the test-reference checks, never the rules).
    pub is_test: bool,
}

impl FileModel {
    /// Builds the model for one file. `tokens` must already have
    /// `#[cfg(test)]` regions stripped where appropriate.
    pub fn build(
        path: &str,
        source: &str,
        tokens: Vec<Token>,
        comments: Vec<Comment>,
    ) -> FileModel {
        let mut model = FileModel {
            path: path.to_string(),
            lines: source.lines().map(str::to_string).collect(),
            comments,
            is_test: path.contains("/tests/") || path.starts_with("tests/"),
            balanced: check_balance(&tokens),
            ..FileModel::default()
        };
        extract_items(&tokens, &mut model);
        model.tokens = tokens;
        model
    }

    /// The trimmed source line, for finding snippets.
    pub fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map(|s| s.trim().to_string())
            .unwrap_or_default()
    }

    /// Looks up an enum by name.
    pub fn enum_def(&self, name: &str) -> Option<&EnumDef> {
        self.enums.iter().find(|e| e.name == name)
    }

    /// All `Enum::Variant` path references in the file, as
    /// `(variant name, line, token index of the variant ident)`.
    pub fn variant_refs(&self, enum_name: &str) -> Vec<(String, u32, usize)> {
        variant_refs_in(&self.tokens, enum_name)
    }

    /// The distinct variant names referenced as `Enum::Variant`.
    pub fn variant_ref_names(&self, enum_name: &str) -> BTreeSet<String> {
        self.variant_refs(enum_name)
            .into_iter()
            .map(|(name, _, _)| name)
            .collect()
    }

    /// The functions whose body contains token index `idx`.
    /// (Innermost last, but rules only care about membership.)
    pub fn enclosing_fns(&self, idx: usize) -> Vec<&FnDef> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(a, b)| a <= idx && idx <= b))
            .collect()
    }

    /// Token index ranges covered by `impl <trait> for <type>` blocks
    /// matching the given trait/type names.
    pub fn impl_ranges(&self, trait_name: &str, type_name: &str) -> Vec<(usize, usize)> {
        self.impls
            .iter()
            .filter(|im| im.type_name == type_name && im.trait_name.as_deref() == Some(trait_name))
            .map(|im| im.body)
            .collect()
    }
}

/// The assembled model of every analyzed file — phase 2's input.
#[derive(Debug, Default)]
pub struct WorkspaceModel {
    /// All file models, sorted by path.
    pub files: Vec<FileModel>,
}

impl WorkspaceModel {
    /// Looks up a file by exact workspace-relative path.
    pub fn file(&self, path: &str) -> Option<&FileModel> {
        self.files.iter().find(|f| f.path == path)
    }

    /// Source files (non-test) whose path starts with `prefix`.
    pub fn src_files<'m>(&'m self, prefix: &'m str) -> impl Iterator<Item = &'m FileModel> {
        self.files
            .iter()
            .filter(move |f| !f.is_test && f.path.starts_with(prefix))
    }

    /// Test files across the whole workspace.
    pub fn test_files(&self) -> impl Iterator<Item = &FileModel> {
        self.files.iter().filter(|f| f.is_test)
    }
}

// ---------------------------------------------------------------------
// Extraction
// ---------------------------------------------------------------------

fn check_balance(toks: &[Token]) -> bool {
    let mut stack: Vec<&str> = Vec::new();
    for tok in toks {
        match tok.text.as_str() {
            "{" => stack.push("}"),
            "(" => stack.push(")"),
            "[" => stack.push("]"),
            "}" | ")" | "]" if stack.pop() != Some(tok.text.as_str()) => {
                return false;
            }
            _ => {}
        }
    }
    stack.is_empty()
}

/// Index of the token matching the opener at `open`. Returns the last
/// index if unbalanced.
pub fn matching(toks: &[Token], open: usize, open_text: &str, close_text: &str) -> usize {
    let mut depth = 0usize;
    for (j, tok) in toks.iter().enumerate().skip(open) {
        if tok.text == open_text {
            depth += 1;
        } else if tok.text == close_text {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Finds the `{` opening an item body, scanning from `start` and
/// skipping over parenthesized/bracketed groups (parameter lists,
/// where-clause bounds). Stops at a top-level `;` (bodiless item).
fn find_body_open(toks: &[Token], start: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = start;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => return Some(j),
            ";" if depth == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

fn extract_items(toks: &[Token], model: &mut FileModel) {
    let mut i = 0usize;
    while i < toks.len() {
        let tok = &toks[i];
        if tok.kind != Kind::Ident {
            i += 1;
            continue;
        }
        match tok.text.as_str() {
            "enum" if is_item_keyword(toks, i) => {
                if let Some(def) = parse_enum(toks, i) {
                    i = def.body.1 + 1;
                    model.enums.push(def);
                    continue;
                }
            }
            "fn" if toks.get(i + 1).is_some_and(|t| t.kind == Kind::Ident) => {
                let name = toks[i + 1].text.clone();
                let body = find_body_open(toks, i + 2).map(|open| {
                    let close = matching(toks, open, "{", "}");
                    (open, close)
                });
                model.fns.push(FnDef {
                    name,
                    line: tok.line,
                    body,
                });
                // Do not skip the body: nested fns are items too.
            }
            // `*const T` and `const` in fn qualifiers are filtered by
            // requiring `NAME :` after the keyword.
            "const"
                if is_item_keyword(toks, i)
                    && toks.get(i + 1).is_some_and(|t| t.kind == Kind::Ident)
                    && toks.get(i + 2).is_some_and(|t| t.text == ":") =>
            {
                model.consts.push(ConstDef {
                    name: toks[i + 1].text.clone(),
                    line: toks[i + 1].line,
                });
            }
            "impl" => {
                if let Some(def) = parse_impl(toks, i) {
                    model.impls.push(def);
                    // Do not skip the body: it holds fns and consts.
                }
            }
            "use" if is_item_keyword(toks, i) => {
                let consumed = parse_use(toks, i + 1, &mut model.uses);
                i = consumed;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
}

/// True when the keyword at `i` starts an item (not `.const`, a macro
/// fragment, or a path segment).
fn is_item_keyword(toks: &[Token], i: usize) -> bool {
    i == 0 || !matches!(toks[i - 1].text.as_str(), "." | "::" | "*" | "&")
}

fn parse_enum(toks: &[Token], kw: usize) -> Option<EnumDef> {
    let name_tok = toks.get(kw + 1)?;
    if name_tok.kind != Kind::Ident {
        return None;
    }
    let open = find_body_open(toks, kw + 2)?;
    let close = matching(toks, open, "{", "}");
    let mut variants = Vec::new();
    let mut j = open + 1;
    while j < close {
        // Skip attributes on the variant, noting a `#[cfg(test)]` gate.
        let mut cfg_test = false;
        while j < close && toks[j].text == "#" && toks.get(j + 1).is_some_and(|t| t.text == "[") {
            let attr_close = matching(toks, j + 1, "[", "]");
            let attr = &toks[j + 2..attr_close.min(toks.len())];
            if attr.iter().any(|t| t.text == "cfg") && attr.iter().any(|t| t.text == "test") {
                cfg_test = true;
            }
            j = attr_close + 1;
        }
        if j >= close {
            break;
        }
        if toks[j].kind == Kind::Ident {
            variants.push(Variant {
                name: toks[j].text.clone(),
                line: toks[j].line,
                cfg_test,
            });
        }
        // Advance to the comma ending this variant (skipping payload
        // groups), then past it.
        let mut depth = 0i32;
        while j < close {
            match toks[j].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "," if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        j += 1;
    }
    Some(EnumDef {
        name: name_tok.text.clone(),
        line: toks[kw].line,
        variants,
        body: (open, close),
    })
}

fn parse_impl(toks: &[Token], kw: usize) -> Option<ImplDef> {
    let open = find_body_open(toks, kw + 1)?;
    let close = matching(toks, open, "{", "}");
    let header: &[Token] = &toks[kw + 1..open];
    // Split on a top-level `for` (generic params may nest one).
    let mut depth = 0i32;
    let mut for_at = None;
    for (j, tok) in header.iter().enumerate() {
        match tok.text.as_str() {
            "<" => depth += 1,
            ">" => depth -= 1,
            "for" if depth <= 0 && tok.kind == Kind::Ident => {
                for_at = Some(j);
                break;
            }
            _ => {}
        }
    }
    let (trait_part, type_part) = match for_at {
        Some(at) => (&header[..at], &header[at + 1..]),
        None => (&header[..0], header),
    };
    // Trait name: the last ident of the trait path before any `<`.
    let trait_name = trait_part
        .iter()
        .take_while(|t| t.text != "<")
        .filter(|t| t.kind == Kind::Ident)
        .last()
        .map(|t| t.text.clone());
    // Type name: the first ident after skipping leading `&`/lifetimes/
    // generic-parameter groups.
    let mut k = 0usize;
    while k < type_part.len() && type_part[k].text == "<" {
        // Skip a leading generic group (rare: `impl<T> <T as X>::Y`).
        let mut d = 0i32;
        while k < type_part.len() {
            match type_part[k].text.as_str() {
                "<" => d += 1,
                ">" => d -= 1,
                _ => {}
            }
            k += 1;
            if d == 0 {
                break;
            }
        }
    }
    let type_name = type_part
        .iter()
        .skip(k)
        .find(|t| t.kind == Kind::Ident)
        .map(|t| t.text.clone())?;
    Some(ImplDef {
        trait_name,
        type_name,
        line: toks[kw].line,
        body: (open, close),
    })
}

/// Parses a `use` tree starting after the keyword; returns the index
/// just past the terminating `;`.
fn parse_use(toks: &[Token], start: usize, out: &mut Vec<UseEdge>) -> usize {
    fn walk(toks: &[Token], mut j: usize, prefix: &[String], out: &mut Vec<UseEdge>) -> usize {
        let mut path: Vec<String> = prefix.to_vec();
        loop {
            let Some(tok) = toks.get(j) else { return j };
            match tok.text.as_str() {
                "{" => {
                    let close = matching(toks, j, "{", "}");
                    let mut k = j + 1;
                    while k < close {
                        k = walk(toks, k, &path, out);
                        // Skip the comma between group entries.
                        if toks.get(k).is_some_and(|t| t.text == ",") {
                            k += 1;
                        }
                    }
                    return close + 1;
                }
                "::" => j += 1,
                ";" | "," | "}" => {
                    if !path.is_empty() && path.len() > prefix.len() {
                        out.push(UseEdge {
                            path,
                            line: toks[j.saturating_sub(1)].line,
                        });
                    }
                    return j;
                }
                "as" => {
                    // Alias: keep the original name, skip the alias.
                    j += 2;
                }
                "*" => {
                    path.push("*".to_string());
                    j += 1;
                }
                _ if tok.kind == Kind::Ident => {
                    path.push(tok.text.clone());
                    j += 1;
                }
                _ => return j + 1,
            }
        }
    }
    let mut j = walk(toks, start, &[], out);
    // Consume through the `;`.
    while j < toks.len() && toks[j].text != ";" {
        j += 1;
    }
    j + 1
}

// ---------------------------------------------------------------------
// Shared scanning helpers for the cross-file rules
// ---------------------------------------------------------------------

/// All `Enum::Variant` path references in a token stream, as
/// `(variant name, line, token index of the variant ident)`.
pub fn variant_refs_in(toks: &[Token], enum_name: &str) -> Vec<(String, u32, usize)> {
    let mut out = Vec::new();
    for i in 0..toks.len().saturating_sub(2) {
        if toks[i].kind == Kind::Ident
            && toks[i].text == enum_name
            && toks[i + 1].text == "::"
            && toks[i + 2].kind == Kind::Ident
        {
            out.push((toks[i + 2].text.clone(), toks[i + 2].line, i + 2));
        }
    }
    out
}

/// Token index ranges of the arguments of every call to `callee`
/// (`callee(...)` or `recv.callee(...)`), exclusive of the parens.
pub fn call_arg_ranges(toks: &[Token], callee: &str) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind == Kind::Ident
            && toks[i].text == callee
            && toks.get(i + 1).is_some_and(|t| t.text == "(")
        {
            let close = matching(toks, i + 1, "(", ")");
            out.push((i + 2, close));
        }
    }
    out
}

/// Splits a call-argument token range into top-level argument
/// sub-ranges (split on depth-0 commas).
pub fn split_args(toks: &[Token], range: (usize, usize)) -> Vec<(usize, usize)> {
    let (start, end) = range;
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut arg_start = start;
    let mut j = start;
    while j < end {
        match toks[j].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "," if depth == 0 => {
                out.push((arg_start, j));
                arg_start = j + 1;
            }
            _ => {}
        }
        j += 1;
    }
    if arg_start < end {
        out.push((arg_start, end));
    }
    out
}

/// If the tokens in `range` begin with `Head::Tail`, returns `Tail`.
pub fn leading_path_tail(toks: &[Token], range: (usize, usize), head: &str) -> Option<String> {
    let (start, end) = range;
    if end.saturating_sub(start) >= 3
        && toks[start].kind == Kind::Ident
        && toks[start].text == head
        && toks[start + 1].text == "::"
        && toks[start + 2].kind == Kind::Ident
    {
        return Some(toks[start + 2].text.clone());
    }
    None
}

/// Parses a decimal or hex numeric token into a u64, ignoring any type
/// suffix (`10u8` → 10).
pub fn num_value(tok: &Token) -> Option<u64> {
    if tok.kind != Kind::Num {
        return None;
    }
    let text = &tok.text;
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        let digits: String = hex.chars().take_while(|c| c.is_ascii_hexdigit()).collect();
        return u64::from_str_radix(&digits, 16).ok();
    }
    let digits: String = text
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '_')
        .filter(|c| *c != '_')
        .collect();
    digits.parse().ok()
}

/// The names called inside a token range: idents directly followed by
/// `(`, excluding control-flow keywords.
pub fn called_names(toks: &[Token], range: (usize, usize)) -> BTreeSet<String> {
    const NOT_CALLS: &[&str] = &[
        "if", "while", "for", "match", "return", "fn", "loop", "in", "let", "move",
    ];
    let mut out = BTreeSet::new();
    for j in range.0..range.1.min(toks.len()) {
        if toks[j].kind == Kind::Ident
            && !NOT_CALLS.contains(&toks[j].text.as_str())
            && toks.get(j + 1).is_some_and(|t| t.text == "(")
        {
            out.insert(toks[j].text.clone());
        }
    }
    out
}

/// Per-function map of `fn name -> set of `Enum::Variant` names the
/// body mentions`, unioned across same-named functions (conservative).
pub fn fn_variant_mentions(
    file: &FileModel,
    enum_name: &str,
) -> BTreeMap<String, BTreeSet<String>> {
    let mut out: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (name, _, idx) in file.variant_refs(enum_name) {
        for f in file.enclosing_fns(idx) {
            out.entry(f.name.clone()).or_default().insert(name.clone());
        }
    }
    out
}
