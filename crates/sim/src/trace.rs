//! Structured protocol tracing: typed span events in bounded per-node
//! ring buffers, with a per-request latency-breakdown assembler, a
//! Chrome-trace (Perfetto) JSON exporter, and a flight-recorder dump for
//! chaos failures.
//!
//! Tracing is off by default (capacity 0) and costs one branch per
//! would-be event. When enabled, protocol code emits [`TraceEvent`]s at
//! every request lifecycle edge — client-send → request-recv →
//! pre-prepare → prepare-quorum → commit-quorum → execute → reply-recv —
//! plus checkpoint, state-transfer, and view-change spans. Each node's
//! ring keeps only the most recent `capacity` events, so a multi-second
//! chaos run records a bounded tail: exactly what a flight recorder
//! wants.
//!
//! Independently of the rings, the sink accumulates per-node CPU time by
//! [`CostKind`] whenever the protocol charges tagged work. This is the
//! crypto-vs-protocol-vs-execution attribution behind the paper's
//! Table 2/3 decomposition, and it is cheap enough to stay on
//! unconditionally.

use std::collections::VecDeque;

use crate::network::NodeId;
use crate::time::format_duration;

/// What kind of lifecycle edge an event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanEdge {
    /// A span begins (Chrome `ph: "B"`).
    Open,
    /// A span ends (Chrome `ph: "E"`).
    Close,
    /// A point event (Chrome `ph: "i"`).
    Instant,
}

/// The protocol phase an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// Client-side end-to-end span: submit → enough matching replies.
    Request,
    /// A replica accepted a client request (instant).
    RequestRecv,
    /// Ordering phase one: proposal (or acceptance) of a pre-prepare,
    /// closed when the prepared predicate first holds.
    PrePrepare,
    /// Ordering phase two: prepared → committed (the commit quorum; off
    /// the critical path under tentative execution).
    Commit,
    /// Optimistic fast path: prepared → fast-committed (the full fast
    /// quorum of prepare votes; replaces the commit phase when the fast
    /// path completes, closes into a Commit span on fallback).
    FastCommit,
    /// Committed batch execution.
    Execute,
    /// Tentative batch execution (before the commit quorum).
    ExecuteTentative,
    /// One request executed and its reply sent (instant; joins the
    /// client's request identity to a sequence number).
    ExecuteRequest,
    /// Checkpoint production.
    Checkpoint,
    /// Fetching a stable checkpoint from peers.
    StateTransfer,
    /// View change: started → new view installed.
    ViewChange,
    /// Proactive recovery: watchdog fired → state audited and rejoined.
    Recovery,
    /// A lease holder answered a read-only request locally (instant) —
    /// the round the read lease saved from the ordering path.
    LeaseRead,
}

impl TracePhase {
    /// Stable event name (Chrome trace `name` field).
    pub fn name(self) -> &'static str {
        match self {
            TracePhase::Request => "request",
            TracePhase::RequestRecv => "request-recv",
            TracePhase::PrePrepare => "pre-prepare",
            TracePhase::Commit => "commit",
            TracePhase::FastCommit => "fast-commit",
            TracePhase::Execute => "execute",
            TracePhase::ExecuteTentative => "execute-tentative",
            TracePhase::ExecuteRequest => "execute-request",
            TracePhase::Checkpoint => "checkpoint",
            TracePhase::StateTransfer => "state-transfer",
            TracePhase::ViewChange => "view-change",
            TracePhase::Recovery => "recovery",
            TracePhase::LeaseRead => "lease-read",
        }
    }

    /// Coarse category (Chrome trace `cat` field).
    pub fn category(self) -> &'static str {
        match self {
            TracePhase::Request | TracePhase::RequestRecv | TracePhase::LeaseRead => "request",
            TracePhase::PrePrepare | TracePhase::Commit | TracePhase::FastCommit => "ordering",
            TracePhase::Execute | TracePhase::ExecuteTentative | TracePhase::ExecuteRequest => {
                "execution"
            }
            TracePhase::Checkpoint
            | TracePhase::StateTransfer
            | TracePhase::ViewChange
            | TracePhase::Recovery => "recovery",
        }
    }
}

/// What kind of work a CPU charge pays for (the paper's cost taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostKind {
    /// MD5 digests (including partitioned state digests).
    Digest,
    /// MAC computation and verification (authenticators).
    Mac,
    /// RSA signature generation / verification (view changes, new keys).
    Rsa,
    /// Send/receive system-call and wire-handling time.
    Net,
    /// Service execution (upcalls into the replicated service).
    Exec,
    /// Untagged protocol bookkeeping.
    Other,
}

impl CostKind {
    /// Number of cost kinds (size of per-node accumulator arrays).
    pub const COUNT: usize = 6;

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            CostKind::Digest => "digest",
            CostKind::Mac => "mac",
            CostKind::Rsa => "rsa",
            CostKind::Net => "net",
            CostKind::Exec => "exec",
            CostKind::Other => "other",
        }
    }

    /// All kinds, in accumulator-array order.
    pub const ALL: [CostKind; CostKind::COUNT] = [
        CostKind::Digest,
        CostKind::Mac,
        CostKind::Rsa,
        CostKind::Net,
        CostKind::Exec,
        CostKind::Other,
    ];
}

/// Identifying metadata attached to an event. Emitters fill only the
/// fields that make sense for the phase; the rest stay zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceMeta {
    /// Requesting client's node id (request-scoped events).
    pub client: u64,
    /// Client-assigned request timestamp (request-scoped events).
    pub timestamp: u64,
    /// Protocol view.
    pub view: u64,
    /// Sequence number (ordering-scoped events).
    pub seq: u64,
    /// Payload size on the wire / in the batch.
    pub bytes: u64,
}

/// One trace event: a span edge observed at a node at a simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time of the edge, in nanoseconds.
    pub at_ns: u64,
    /// Node that observed it.
    pub node: NodeId,
    /// Open, close, or instant.
    pub edge: SpanEdge,
    /// Protocol phase.
    pub phase: TracePhase,
    /// Identifying metadata.
    pub meta: TraceMeta,
}

impl TraceEvent {
    fn format_line(&self) -> String {
        let edge = match self.edge {
            SpanEdge::Open => "open ",
            SpanEdge::Close => "close",
            SpanEdge::Instant => "point",
        };
        let m = &self.meta;
        let mut line = format!(
            "t+{:<10} node={:<2} {} {:<17} view={} seq={}",
            format_duration(self.at_ns),
            self.node,
            edge,
            self.phase.name(),
            m.view,
            m.seq,
        );
        if m.client != 0 || m.timestamp != 0 {
            line.push_str(&format!(" client={} ts={}", m.client, m.timestamp));
        }
        if m.bytes != 0 {
            line.push_str(&format!(" bytes={}", m.bytes));
        }
        line
    }
}

/// Bounded per-node ring buffers of trace events plus per-node CPU-time
/// attribution by [`CostKind`].
#[derive(Debug, Default)]
pub struct TraceSink {
    capacity: usize,
    rings: Vec<VecDeque<TraceEvent>>,
    dropped: Vec<u64>,
    cpu: Vec<[u64; CostKind::COUNT]>,
}

impl TraceSink {
    /// A sink with event recording disabled (capacity 0). CPU attribution
    /// is always active.
    pub fn new() -> TraceSink {
        TraceSink::default()
    }

    /// Sets the per-node ring capacity. Zero disables event recording;
    /// shrinking an existing ring discards its oldest events.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        for ring in &mut self.rings {
            while ring.len() > capacity {
                ring.pop_front();
            }
        }
    }

    /// Whether event recording is enabled.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Makes room for node ids up to and including `node`.
    pub fn ensure_node(&mut self, node: NodeId) {
        let need = node as usize + 1;
        if self.rings.len() < need {
            self.rings.resize_with(need, VecDeque::new);
            self.dropped.resize(need, 0);
            self.cpu.resize(need, [0; CostKind::COUNT]);
        }
    }

    /// Records an event into `node`'s ring, evicting the oldest event
    /// when the ring is full. No-op when recording is disabled.
    pub fn record(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        self.ensure_node(event.node);
        let ring = &mut self.rings[event.node as usize];
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped[event.node as usize] += 1;
        }
        ring.push_back(event);
    }

    /// Accumulates `ns` of CPU time of `kind` against `node`.
    pub fn record_cpu(&mut self, node: NodeId, kind: CostKind, ns: u64) {
        self.ensure_node(node);
        self.cpu[node as usize][kind as usize] += ns;
    }

    /// CPU nanoseconds charged by `node` for `kind`.
    pub fn cpu_ns(&self, node: NodeId, kind: CostKind) -> u64 {
        self.cpu.get(node as usize).map_or(0, |a| a[kind as usize])
    }

    /// Total CPU nanoseconds for `kind` across all nodes.
    pub fn cpu_total_ns(&self, kind: CostKind) -> u64 {
        self.cpu.iter().map(|a| a[kind as usize]).sum()
    }

    /// Events retained for `node`, oldest first.
    pub fn node_events(&self, node: NodeId) -> impl Iterator<Item = &TraceEvent> {
        self.rings
            .get(node as usize)
            .into_iter()
            .flat_map(|r| r.iter())
    }

    /// All retained events across all nodes, grouped by node.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.rings.iter().flat_map(|r| r.iter())
    }

    /// Number of nodes the sink has seen.
    pub fn node_count(&self) -> usize {
        self.rings.len()
    }

    /// Discards all recorded events and CPU attribution.
    pub fn clear(&mut self) {
        for ring in &mut self.rings {
            ring.clear();
        }
        for d in &mut self.dropped {
            *d = 0;
        }
        for a in &mut self.cpu {
            *a = [0; CostKind::COUNT];
        }
    }

    /// Formats the last `last_n` events of every node — the flight
    /// recorder's black-box dump, printed next to a chaos failure report.
    pub fn flight_dump(&self, last_n: usize) -> String {
        let mut out = String::new();
        for (node, ring) in self.rings.iter().enumerate() {
            if ring.is_empty() {
                continue;
            }
            let skip = ring.len().saturating_sub(last_n);
            let evicted = self.dropped[node] + skip as u64;
            out.push_str(&format!(
                "  node {node}: last {} of {} retained events ({evicted} older evicted)\n",
                ring.len() - skip,
                ring.len(),
            ));
            for ev in ring.iter().skip(skip) {
                out.push_str("    ");
                out.push_str(&ev.format_line());
                out.push('\n');
            }
        }
        if out.is_empty() {
            out.push_str("  (no trace events recorded — tracing disabled?)\n");
        }
        out
    }

    /// Serializes every retained event as Chrome trace-event JSON (the
    /// `traceEvents` array format), loadable in Perfetto or
    /// `chrome://tracing`. `pid` is the node id; `tid` is the sequence
    /// number for ordering-scoped spans (so concurrent slots nest
    /// correctly) and 0 for node-level spans.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for ev in self.events() {
            if !first {
                out.push(',');
            }
            first = false;
            let ph = match ev.edge {
                SpanEdge::Open => "B",
                SpanEdge::Close => "E",
                SpanEdge::Instant => "i",
            };
            let tid = match ev.phase {
                TracePhase::PrePrepare
                | TracePhase::Commit
                | TracePhase::FastCommit
                | TracePhase::ExecuteRequest => ev.meta.seq,
                _ => 0,
            };
            let us_whole = ev.at_ns / 1_000;
            let us_frac = ev.at_ns % 1_000;
            out.push_str(&format!(
                "\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{}.{:03},\"pid\":{},\"tid\":{}",
                ev.phase.name(),
                ev.phase.category(),
                ph,
                us_whole,
                us_frac,
                ev.node,
                tid,
            ));
            if ev.edge == SpanEdge::Instant {
                out.push_str(",\"s\":\"t\"");
            }
            let m = &ev.meta;
            out.push_str(&format!(
                ",\"args\":{{\"client\":{},\"timestamp\":{},\"view\":{},\"seq\":{},\"bytes\":{}}}}}",
                m.client, m.timestamp, m.view, m.seq, m.bytes,
            ));
        }
        out.push_str("\n]}");
        out
    }
}

// ---------------------------------------------------------------------
// Per-request span assembly
// ---------------------------------------------------------------------

/// The per-phase latency chain of one completed request, joined across
/// the client and the primary that ordered it. Each field is an absolute
/// simulated timestamp; consecutive differences are the phase times and
/// telescope exactly to the end-to-end latency.
#[derive(Debug, Clone, Copy)]
pub struct RequestPath {
    /// Requesting client node.
    pub client: NodeId,
    /// Client-assigned request timestamp.
    pub timestamp: u64,
    /// Replica whose events anchor the chain (the proposing primary).
    pub primary: NodeId,
    /// Sequence number the request was ordered under.
    pub seq: u64,
    /// Monotone timestamps: send, recv, pre-prepare, prepared, executed,
    /// done — clamped pairwise so each phase is non-negative.
    pub t: [u64; 6],
    /// When the commit quorum formed at the primary (0 if not observed);
    /// under tentative execution this is off the critical path.
    pub t_committed: u64,
}

/// Labels for the five phases between the six [`RequestPath`] timestamps.
pub const PHASE_LABELS: [&str; 5] = [
    "client send -> request recv",
    "request recv -> pre-prepare",
    "pre-prepare -> prepared",
    "prepared -> executed (tentative)",
    "reply -> client recv",
];

impl RequestPath {
    /// The five phase durations, in [`PHASE_LABELS`] order.
    pub fn phases(&self) -> [u64; 5] {
        std::array::from_fn(|i| self.t[i + 1] - self.t[i])
    }

    /// End-to-end latency (always the exact sum of [`Self::phases`]).
    pub fn total(&self) -> u64 {
        self.t[5] - self.t[0]
    }
}

/// Aggregated per-phase latency over every request the assembler could
/// join, in the shape of the paper's Table 2/3 decomposition.
#[derive(Debug, Clone, Default)]
pub struct Breakdown {
    /// Requests successfully joined across client and primary.
    pub requests: u64,
    /// Summed duration of each phase, in [`PHASE_LABELS`] order.
    pub phase_total_ns: [u64; 5],
    /// Summed end-to-end latency (equals the sum of `phase_total_ns`).
    pub e2e_total_ns: u64,
    /// Summed commit-quorum lag past the prepared edge (off the critical
    /// path under tentative execution).
    pub commit_lag_total_ns: u64,
    /// Requests whose commit quorum was observed at the primary.
    pub commit_observed: u64,
}

impl Breakdown {
    /// Mean duration of phase `i`, in nanoseconds.
    pub fn phase_mean_ns(&self, i: usize) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.phase_total_ns[i] as f64 / self.requests as f64
        }
    }

    /// Mean end-to-end latency, in nanoseconds.
    pub fn e2e_mean_ns(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.e2e_total_ns as f64 / self.requests as f64
        }
    }
}

/// Joins span events across nodes into per-request latency chains.
///
/// A request is identified by `(client, timestamp)`. Its chain is
/// anchored at the primary: the node that *proposed* the sequence number
/// the request executed under (the node with the earliest
/// [`TracePhase::PrePrepare`] open for that seq whose open preceded its
/// prepared edge).
pub fn assemble(sink: &TraceSink) -> Vec<RequestPath> {
    use std::collections::HashMap;

    /// Client span: (client node, open at, close at), keyed by request.
    type ClientSpan = (NodeId, Option<u64>, Option<u64>);
    /// Execution instant: (replica node, seq, at).
    type ExecMark = (NodeId, u64, u64);

    // (client, timestamp) -> (t_send, t_done) from client Request spans.
    let mut spans: HashMap<(u64, u64), ClientSpan> = HashMap::new();
    // (client, timestamp) -> execution instants.
    let mut execs: HashMap<(u64, u64), Vec<ExecMark>> = HashMap::new();
    // (node, seq) -> pre-prepare open / prepared / committed edges.
    let mut pp_open: HashMap<(NodeId, u64), u64> = HashMap::new();
    let mut prepared: HashMap<(NodeId, u64), u64> = HashMap::new();
    let mut committed: HashMap<(NodeId, u64), u64> = HashMap::new();
    // (node, client, timestamp) -> request-recv instant.
    let mut recvs: HashMap<(NodeId, u64, u64), u64> = HashMap::new();
    // node -> earliest pre-prepare open per seq (to find the proposer).
    let mut proposer: HashMap<u64, (u64, NodeId)> = HashMap::new();

    for ev in sink.events() {
        let key = (ev.meta.client, ev.meta.timestamp);
        match (ev.phase, ev.edge) {
            (TracePhase::Request, SpanEdge::Open) => {
                let e = spans.entry(key).or_insert((ev.node, None, None));
                e.1 = Some(ev.at_ns);
            }
            (TracePhase::Request, SpanEdge::Close) => {
                let e = spans.entry(key).or_insert((ev.node, None, None));
                e.2 = Some(ev.at_ns);
            }
            (TracePhase::RequestRecv, SpanEdge::Instant) => {
                recvs
                    .entry((ev.node, ev.meta.client, ev.meta.timestamp))
                    .or_insert(ev.at_ns);
            }
            (TracePhase::ExecuteRequest, SpanEdge::Instant) => {
                execs
                    .entry(key)
                    .or_default()
                    .push((ev.node, ev.meta.seq, ev.at_ns));
            }
            (TracePhase::PrePrepare, SpanEdge::Open) => {
                pp_open.entry((ev.node, ev.meta.seq)).or_insert(ev.at_ns);
                let p = proposer.entry(ev.meta.seq).or_insert((ev.at_ns, ev.node));
                if ev.at_ns < p.0 {
                    *p = (ev.at_ns, ev.node);
                }
            }
            (TracePhase::PrePrepare, SpanEdge::Close) => {
                prepared.entry((ev.node, ev.meta.seq)).or_insert(ev.at_ns);
            }
            (TracePhase::Commit | TracePhase::FastCommit, SpanEdge::Close) => {
                committed.entry((ev.node, ev.meta.seq)).or_insert(ev.at_ns);
            }
            _ => {}
        }
    }

    let mut out = Vec::new();
    for ((client, timestamp), (client_node, open, close)) in &spans {
        let (Some(t_send), Some(t_done)) = (open, close) else {
            continue;
        };
        let Some(exec_list) = execs.get(&(*client, *timestamp)) else {
            continue;
        };
        // Anchor at the proposer of the seq this request executed under.
        let Some(&(_, seq, _)) = exec_list.first() else {
            continue;
        };
        let Some(&(_, primary)) = proposer.get(&seq) else {
            continue;
        };
        let t_exec = exec_list
            .iter()
            .find(|(n, s, _)| *n == primary && *s == seq)
            .map(|&(_, _, at)| at);
        let Some(t_exec) = t_exec else {
            continue;
        };
        let t_recv = recvs
            .get(&(primary, *client, *timestamp))
            .copied()
            .unwrap_or(*t_send);
        let t_pp = pp_open.get(&(primary, seq)).copied().unwrap_or(t_recv);
        let t_prep = prepared.get(&(primary, seq)).copied().unwrap_or(t_pp);
        // Clamp into a monotone chain so phase times telescope exactly.
        let mut t = [*t_send, t_recv, t_pp, t_prep, t_exec, *t_done];
        for i in 1..6 {
            t[i] = t[i].max(t[i - 1]);
        }
        let t_committed = committed.get(&(primary, seq)).copied().unwrap_or(0);
        out.push(RequestPath {
            client: *client_node,
            timestamp: *timestamp,
            primary,
            seq,
            t,
            t_committed,
        });
    }
    out.sort_by_key(|p| (p.t[0], p.client, p.timestamp));
    out
}

/// Aggregates assembled request chains into a [`Breakdown`] table.
pub fn breakdown(paths: &[RequestPath]) -> Breakdown {
    let mut b = Breakdown::default();
    for p in paths {
        b.requests += 1;
        for (i, d) in p.phases().into_iter().enumerate() {
            b.phase_total_ns[i] += d;
        }
        b.e2e_total_ns += p.total();
        if p.t_committed > 0 {
            b.commit_lag_total_ns += p.t_committed.saturating_sub(p.t[3]);
            b.commit_observed += 1;
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        at_ns: u64,
        node: NodeId,
        edge: SpanEdge,
        phase: TracePhase,
        meta: TraceMeta,
    ) -> TraceEvent {
        TraceEvent {
            at_ns,
            node,
            edge,
            phase,
            meta,
        }
    }

    fn req_meta(client: u64, timestamp: u64) -> TraceMeta {
        TraceMeta {
            client,
            timestamp,
            ..TraceMeta::default()
        }
    }

    fn seq_meta(seq: u64) -> TraceMeta {
        TraceMeta {
            seq,
            ..TraceMeta::default()
        }
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let mut sink = TraceSink::new();
        assert!(!sink.enabled());
        sink.record(ev(
            1,
            0,
            SpanEdge::Open,
            TracePhase::Request,
            TraceMeta::default(),
        ));
        assert_eq!(sink.events().count(), 0);
    }

    #[test]
    fn ring_is_bounded_and_keeps_newest() {
        let mut sink = TraceSink::new();
        sink.set_capacity(3);
        for i in 0..10u64 {
            sink.record(ev(
                i,
                0,
                SpanEdge::Instant,
                TracePhase::RequestRecv,
                TraceMeta::default(),
            ));
        }
        let kept: Vec<u64> = sink.node_events(0).map(|e| e.at_ns).collect();
        assert_eq!(kept, vec![7, 8, 9]);
        assert!(sink.flight_dump(2).contains("last 2 of 3"));
    }

    #[test]
    fn cpu_attribution_accumulates() {
        let mut sink = TraceSink::new();
        sink.record_cpu(2, CostKind::Digest, 100);
        sink.record_cpu(2, CostKind::Digest, 50);
        sink.record_cpu(1, CostKind::Exec, 10);
        assert_eq!(sink.cpu_ns(2, CostKind::Digest), 150);
        assert_eq!(sink.cpu_total_ns(CostKind::Digest), 150);
        assert_eq!(sink.cpu_total_ns(CostKind::Exec), 10);
        assert_eq!(sink.cpu_ns(9, CostKind::Mac), 0);
    }

    #[test]
    fn chrome_json_shape() {
        let mut sink = TraceSink::new();
        sink.set_capacity(8);
        sink.record(ev(
            1_500,
            1,
            SpanEdge::Open,
            TracePhase::PrePrepare,
            seq_meta(7),
        ));
        sink.record(ev(
            2_500,
            1,
            SpanEdge::Close,
            TracePhase::PrePrepare,
            seq_meta(7),
        ));
        let json = sink.chrome_trace_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"pid\":1"));
        assert!(json.contains("\"tid\":7"));
    }

    #[test]
    fn assembles_a_request_chain() {
        let mut sink = TraceSink::new();
        sink.set_capacity(64);
        // Client 9 sends request ts=1 at t=0; primary 0 orders it at seq 5.
        sink.record(ev(
            0,
            9,
            SpanEdge::Open,
            TracePhase::Request,
            req_meta(9, 1),
        ));
        sink.record(ev(
            100,
            0,
            SpanEdge::Instant,
            TracePhase::RequestRecv,
            req_meta(9, 1),
        ));
        sink.record(ev(
            120,
            0,
            SpanEdge::Open,
            TracePhase::PrePrepare,
            seq_meta(5),
        ));
        // A backup also opens the pre-prepare span, later than the primary.
        sink.record(ev(
            160,
            1,
            SpanEdge::Open,
            TracePhase::PrePrepare,
            seq_meta(5),
        ));
        sink.record(ev(
            300,
            0,
            SpanEdge::Close,
            TracePhase::PrePrepare,
            seq_meta(5),
        ));
        sink.record(ev(
            350,
            0,
            SpanEdge::Instant,
            TracePhase::ExecuteRequest,
            TraceMeta {
                client: 9,
                timestamp: 1,
                seq: 5,
                ..TraceMeta::default()
            },
        ));
        sink.record(ev(500, 0, SpanEdge::Close, TracePhase::Commit, seq_meta(5)));
        sink.record(ev(
            450,
            9,
            SpanEdge::Close,
            TracePhase::Request,
            req_meta(9, 1),
        ));

        let paths = assemble(&sink);
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert_eq!(p.primary, 0);
        assert_eq!(p.seq, 5);
        assert_eq!(p.total(), 450);
        assert_eq!(p.phases().iter().sum::<u64>(), p.total());
        assert_eq!(p.phases(), [100, 20, 180, 50, 100]);
        // Commit quorum formed 200ns after prepared — off the critical path.
        let b = breakdown(&paths);
        assert_eq!(b.requests, 1);
        assert_eq!(b.e2e_total_ns, 450);
        assert_eq!(b.commit_lag_total_ns, 200);
    }
}
