//! The switched-Ethernet network model.
//!
//! The testbed was a 100 Mb/s switched Ethernet (Extreme Networks
//! Summit48). The model captures what matters for the paper's results:
//!
//! - each host has a full-duplex NIC: a transmit link and a receive link,
//!   each with finite bandwidth that messages serialize through;
//! - the switch adds a fixed per-message latency and replicates hardware
//!   multicasts, so a multicast costs the sender's link *once* (this is why
//!   BFT's multicasts are cheap and why digest replies let reply bandwidth
//!   scale with the number of replicas);
//! - frames carry Ethernet + IP + UDP header overhead and fragment at the
//!   MTU;
//! - receive buffers are finite: a host that cannot drain its receive link
//!   drops packets, which is why the paper's NO-REP loses requests beyond
//!   15 clients ("NO-REP uses UDP directly and does not retransmit").
//!
//! Fault injection (drops, partitions, extra delay) is part of the model
//! because the view-change and state-transfer tests need it.

use crate::time::SimTime;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashSet;

/// Identifies a simulated host.
pub type NodeId = u32;

/// Static network parameters.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq)]
pub struct NetConfig {
    /// Link bandwidth in bits per second (100 Mb/s on the testbed).
    pub bandwidth_bps: u64,
    /// Fixed one-way latency: propagation + switch forwarding.
    pub latency_ns: u64,
    /// Per-frame header bytes (Ethernet 18 + IP 20 + UDP 8).
    pub header_bytes: usize,
    /// Maximum payload per frame before fragmentation.
    pub mtu: usize,
    /// How far a receive link may run behind arrival before the kernel
    /// buffer overflows and the packet is dropped. `u64::MAX` disables
    /// drops.
    pub rx_buffer_ns: u64,
}

impl NetConfig {
    /// The paper's 100 Mb/s switched Ethernet.
    pub const SWITCHED_100MBPS: NetConfig = NetConfig {
        bandwidth_bps: 100_000_000,
        latency_ns: 15_000,
        header_bytes: 46,
        mtu: 1_500,
        rx_buffer_ns: 80_000_000,
    };

    /// An idealized network: infinite buffers, same bandwidth. Useful in
    /// unit tests that should not depend on drop behaviour.
    pub const LOSSLESS_100MBPS: NetConfig = NetConfig {
        rx_buffer_ns: u64::MAX,
        ..NetConfig::SWITCHED_100MBPS
    };

    /// Wire bytes for a `payload`-byte datagram including per-fragment
    /// headers.
    pub fn frame_bytes(&self, payload: usize) -> usize {
        let fragments = payload.div_ceil(self.mtu).max(1);
        payload + fragments * self.header_bytes
    }

    /// Time to serialize `wire_bytes` through one link.
    pub fn serialize_ns(&self, wire_bytes: usize) -> u64 {
        (wire_bytes as u64 * 8).saturating_mul(1_000_000_000) / self.bandwidth_bps
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig::SWITCHED_100MBPS
    }
}

/// Why a packet was not delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Random loss injected by the fault configuration.
    InjectedLoss,
    /// The (src, dst) pair is partitioned.
    Partitioned,
    /// The destination's receive buffer overflowed.
    RxOverflow,
}

/// The state of one transmission: where the sender's link is, so multicast
/// receivers share it.
#[derive(Debug, Clone, Copy)]
pub struct TxSlot {
    /// When the last bit leaves the sender's NIC.
    done: SimTime,
    /// Wire size of the frame.
    wire_bytes: usize,
}

/// The network: per-host link state plus fault injection knobs.
#[derive(Debug, Clone)]
pub struct Network {
    cfg: NetConfig,
    tx_free: Vec<SimTime>,
    rx_free: Vec<SimTime>,
    /// Node → host NIC mapping (identity by default). Several nodes may
    /// share one machine's links, as the paper's 200 client processes
    /// shared 5 client machines.
    host_of: Vec<NodeId>,
    /// Probability of dropping any given packet.
    loss_probability: f64,
    /// Ordered (src, dst) pairs that cannot communicate.
    partitions: HashSet<(NodeId, NodeId)>,
    /// Extra one-way delay added to every packet (fault injection).
    extra_delay_ns: u64,
    /// Upper bound of a per-packet random delay (fault injection). Nonzero
    /// jitter reorders packets relative to their send order.
    jitter_ns: u64,
    /// Probability that a delivered packet arrives twice (fault injection).
    duplicate_probability: f64,
    /// Delivery stats, read by experiments.
    pub stats: NetStats,
}

/// Aggregate delivery statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Frames handed to the network.
    pub sent: u64,
    /// Frames delivered.
    pub delivered: u64,
    /// Frames dropped (any reason).
    pub dropped: u64,
    /// Payload bytes delivered.
    pub bytes_delivered: u64,
}

impl Network {
    /// Creates a network with no hosts; hosts are added via [`Network::ensure_host`].
    pub fn new(cfg: NetConfig) -> Network {
        Network {
            cfg,
            tx_free: Vec::new(),
            rx_free: Vec::new(),
            host_of: Vec::new(),
            loss_probability: 0.0,
            partitions: HashSet::new(),
            extra_delay_ns: 0,
            jitter_ns: 0,
            duplicate_probability: 0.0,
            stats: NetStats::default(),
        }
    }

    /// The static configuration.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Makes sure link state exists for host `id`.
    pub fn ensure_host(&mut self, id: NodeId) {
        let need = id as usize + 1;
        if self.tx_free.len() < need {
            self.tx_free.resize(need, SimTime::ZERO);
            self.rx_free.resize(need, SimTime::ZERO);
            while self.host_of.len() < need {
                self.host_of.push(self.host_of.len() as NodeId);
            }
        }
    }

    /// Places `node` on the same machine as `host`: they share one NIC
    /// (transmit and receive links). By default every node is its own
    /// machine.
    pub fn assign_host(&mut self, node: NodeId, host: NodeId) {
        self.ensure_host(node.max(host));
        self.host_of[node as usize] = self.host_of[host as usize];
    }

    fn host(&self, node: NodeId) -> usize {
        self.host_of.get(node as usize).copied().unwrap_or(node) as usize
    }

    /// Sets the uniform packet loss probability (fault injection).
    pub fn set_loss_probability(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p));
        self.loss_probability = p;
    }

    /// Blocks all packets from `src` to `dst` until [`Network::heal`].
    pub fn partition_one_way(&mut self, src: NodeId, dst: NodeId) {
        self.partitions.insert((src, dst));
    }

    /// Blocks all packets between `a` and `b` in both directions.
    pub fn partition(&mut self, a: NodeId, b: NodeId) {
        self.partitions.insert((a, b));
        self.partitions.insert((b, a));
    }

    /// Isolates `node` from every other host in both directions.
    pub fn isolate(&mut self, node: NodeId, n_hosts: u32) {
        for other in 0..n_hosts {
            if other != node {
                self.partition(node, other);
            }
        }
    }

    /// Removes all partitions.
    pub fn heal(&mut self) {
        self.partitions.clear();
    }

    /// Removes partitions touching `node`.
    pub fn heal_node(&mut self, node: NodeId) {
        self.partitions.retain(|&(a, b)| a != node && b != node);
    }

    /// Adds a fixed extra delay to every packet.
    pub fn set_extra_delay_ns(&mut self, ns: u64) {
        self.extra_delay_ns = ns;
    }

    /// Adds a uniformly random delay in `0..=ns` to every packet. Nonzero
    /// jitter makes later sends able to overtake earlier ones, which is
    /// how the chaos engine exercises message reordering.
    pub fn set_jitter_ns(&mut self, ns: u64) {
        self.jitter_ns = ns;
    }

    /// Sets the probability that a delivered packet is delivered a second
    /// time (switch-level duplication, fault injection).
    pub fn set_duplicate_probability(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p));
        self.duplicate_probability = p;
    }

    /// Charges the sender's transmit link for a `payload`-byte datagram
    /// departing no earlier than `depart`. Returns the slot that receivers
    /// share; hardware multicast calls this once and [`Network::receive`]
    /// once per destination.
    pub fn transmit(&mut self, depart: SimTime, src: NodeId, payload: usize) -> TxSlot {
        self.ensure_host(src);
        let host = self.host(src);
        let wire_bytes = self.cfg.frame_bytes(payload);
        let start = depart.max(self.tx_free[host]);
        let done = start.after(self.cfg.serialize_ns(wire_bytes));
        self.tx_free[host] = done;
        self.stats.sent += 1;
        TxSlot { done, wire_bytes }
    }

    /// Routes a transmitted frame to `dst`, charging the receive link.
    /// Returns the delivery time, or the reason it was dropped.
    pub fn receive(
        &mut self,
        slot: TxSlot,
        src: NodeId,
        dst: NodeId,
        rng: &mut StdRng,
    ) -> Result<SimTime, DropReason> {
        self.ensure_host(dst);
        if self.partitions.contains(&(src, dst)) {
            self.stats.dropped += 1;
            return Err(DropReason::Partitioned);
        }
        if self.loss_probability > 0.0 && rng.gen::<f64>() < self.loss_probability {
            self.stats.dropped += 1;
            return Err(DropReason::InjectedLoss);
        }
        let mut arrival = slot
            .done
            .after(self.cfg.latency_ns)
            .after(self.extra_delay_ns);
        // The jitter roll happens only when enabled so runs that never
        // touch the knob keep their exact RNG stream.
        if self.jitter_ns > 0 {
            arrival = arrival.after(rng.gen_range(0..=self.jitter_ns));
        }
        let host = self.host(dst);
        let rx_start = arrival.max(self.rx_free[host]);
        if rx_start.since(arrival) > self.cfg.rx_buffer_ns {
            self.stats.dropped += 1;
            return Err(DropReason::RxOverflow);
        }
        let done = rx_start.after(self.cfg.serialize_ns(slot.wire_bytes));
        self.rx_free[host] = done;
        self.stats.delivered += 1;
        self.stats.bytes_delivered += slot.wire_bytes as u64;
        Ok(done)
    }

    /// Rolls for switch-level duplication of a frame that was just
    /// delivered. Returns the arrival time of the extra copy, which is
    /// routed (and charged) like any other frame and may itself be
    /// dropped. The roll happens only when duplication is enabled so runs
    /// that never touch the knob keep their exact RNG stream.
    pub fn maybe_duplicate(
        &mut self,
        slot: TxSlot,
        src: NodeId,
        dst: NodeId,
        rng: &mut StdRng,
    ) -> Option<SimTime> {
        if self.duplicate_probability <= 0.0 || rng.gen::<f64>() >= self.duplicate_probability {
            return None;
        }
        self.receive(slot, src, dst, rng).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    fn lossless() -> Network {
        Network::new(NetConfig::LOSSLESS_100MBPS)
    }

    #[test]
    fn frame_overhead_and_fragmentation() {
        let cfg = NetConfig::SWITCHED_100MBPS;
        assert_eq!(cfg.frame_bytes(0), 46);
        assert_eq!(cfg.frame_bytes(100), 146);
        assert_eq!(cfg.frame_bytes(1500), 1546);
        // 1501 bytes → two fragments.
        assert_eq!(cfg.frame_bytes(1501), 1501 + 2 * 46);
        assert_eq!(cfg.frame_bytes(4096), 4096 + 3 * 46);
    }

    #[test]
    fn serialization_time_is_bandwidth_bound() {
        let cfg = NetConfig::SWITCHED_100MBPS;
        // 12.5 MB/s → 1250 bytes take 100 µs.
        assert_eq!(cfg.serialize_ns(1250), 100_000);
    }

    #[test]
    fn unicast_delivery_time() {
        let mut net = lossless();
        let mut r = rng();
        let slot = net.transmit(SimTime::ZERO, 0, 100);
        let t = net.receive(slot, 0, 1, &mut r).expect("delivered");
        // tx serialize + latency + rx serialize.
        let ser = net.config().serialize_ns(146);
        assert_eq!(t.nanos(), ser + 15_000 + ser);
    }

    #[test]
    fn tx_link_serializes_back_to_back_sends() {
        let mut net = lossless();
        let s1 = net.transmit(SimTime::ZERO, 0, 1000);
        let s2 = net.transmit(SimTime::ZERO, 0, 1000);
        assert!(s2.done > s1.done, "second frame waits for the first");
        assert_eq!(s2.done.nanos(), 2 * s1.done.nanos());
    }

    #[test]
    fn multicast_charges_sender_once() {
        let mut net = lossless();
        let mut r = rng();
        let slot = net.transmit(SimTime::ZERO, 0, 1000);
        let tx_after_multicast = net.tx_free[0];
        for dst in 1..4 {
            net.receive(slot, 0, dst, &mut r).expect("delivered");
        }
        assert_eq!(net.tx_free[0], tx_after_multicast, "no extra tx charges");
    }

    #[test]
    fn rx_link_is_a_shared_bottleneck() {
        let mut net = lossless();
        let mut r = rng();
        // Two different senders to the same receiver: deliveries serialize.
        let a = net.transmit(SimTime::ZERO, 0, 1000);
        let b = net.transmit(SimTime::ZERO, 1, 1000);
        let t1 = net.receive(a, 0, 2, &mut r).expect("a");
        let t2 = net.receive(b, 1, 2, &mut r).expect("b");
        assert!(t2 > t1);
        assert_eq!(
            t2.since(t1),
            net.config().serialize_ns(net.config().frame_bytes(1000))
        );
    }

    #[test]
    fn rx_overflow_drops() {
        let mut cfg = NetConfig::SWITCHED_100MBPS;
        cfg.rx_buffer_ns = 100_000; // tiny buffer
        let mut net = Network::new(cfg);
        let mut r = rng();
        let mut dropped = 0;
        for i in 0..100u32 {
            let slot = net.transmit(SimTime::ZERO, i % 8, 1400);
            if net.receive(slot, i % 8, 9, &mut r) == Err(DropReason::RxOverflow) {
                dropped += 1;
            }
        }
        assert!(dropped > 0, "overload must overflow the buffer");
        assert_eq!(net.stats.dropped, dropped);
    }

    #[test]
    fn shared_host_shares_links() {
        let mut net = lossless();
        net.assign_host(1, 0); // nodes 0 and 1 share a machine
        let a = net.transmit(SimTime::ZERO, 0, 1000);
        let b = net.transmit(SimTime::ZERO, 1, 1000);
        assert_eq!(
            b.done.nanos(),
            2 * a.done.nanos(),
            "transmissions serialize through the shared NIC"
        );
        // A third node on its own machine is unaffected.
        let c = net.transmit(SimTime::ZERO, 2, 1000);
        assert_eq!(c.done, a.done);
        // Receive side shares too.
        let mut r = rng();
        let s1 = net.transmit(SimTime::ZERO, 3, 1000);
        let s2 = net.transmit(SimTime::ZERO, 4, 1000);
        let t0 = net.receive(s1, 3, 0, &mut r).expect("ok");
        let t1 = net.receive(s2, 4, 1, &mut r).expect("ok");
        assert!(t1 > t0, "deliveries to co-hosted nodes serialize");
    }

    #[test]
    fn partitions_block_and_heal() {
        let mut net = lossless();
        let mut r = rng();
        net.partition(0, 1);
        let slot = net.transmit(SimTime::ZERO, 0, 10);
        assert_eq!(
            net.receive(slot, 0, 1, &mut r),
            Err(DropReason::Partitioned)
        );
        assert!(net.receive(slot, 0, 2, &mut r).is_ok());
        net.heal();
        let slot = net.transmit(SimTime::ZERO, 0, 10);
        assert!(net.receive(slot, 0, 1, &mut r).is_ok());
    }

    #[test]
    fn one_way_partition_is_one_way() {
        let mut net = lossless();
        let mut r = rng();
        net.partition_one_way(0, 1);
        let slot = net.transmit(SimTime::ZERO, 1, 10);
        assert!(
            net.receive(slot, 1, 0, &mut r).is_ok(),
            "reverse unaffected"
        );
    }

    #[test]
    fn isolate_and_heal_node() {
        let mut net = lossless();
        let mut r = rng();
        net.isolate(2, 4);
        let slot = net.transmit(SimTime::ZERO, 2, 10);
        for dst in [0u32, 1, 3] {
            assert!(net.receive(slot, 2, dst, &mut r).is_err());
        }
        net.heal_node(2);
        let slot = net.transmit(SimTime::ZERO, 2, 10);
        assert!(net.receive(slot, 2, 0, &mut r).is_ok());
    }

    #[test]
    fn injected_loss_drops_roughly_at_rate() {
        let mut net = lossless();
        net.set_loss_probability(0.5);
        let mut r = rng();
        let mut dropped = 0;
        for _ in 0..1000 {
            let slot = net.transmit(SimTime::ZERO, 0, 10);
            if net.receive(slot, 0, 1, &mut r).is_err() {
                dropped += 1;
            }
        }
        assert!((300..700).contains(&dropped), "got {dropped}");
    }

    #[test]
    fn jitter_spreads_arrivals() {
        let mut net = lossless();
        net.set_jitter_ns(1_000_000);
        let mut r = rng();
        let base = {
            let mut plain = lossless();
            let slot = plain.transmit(SimTime::ZERO, 0, 10);
            plain.receive(slot, 0, 1, &mut rng()).expect("ok")
        };
        let mut distinct = HashSet::new();
        for _ in 0..20 {
            // Fresh receiver each round so the rx link never queues.
            let slot = net.transmit(SimTime::ZERO, 0, 10);
            let t = net.receive(slot, 0, 1, &mut r).expect("ok");
            assert!(t >= base, "jitter only delays");
            assert!(t.since(base) <= 1_000_000, "bounded by the knob");
            distinct.insert(t.since(base));
            net.rx_free[1] = SimTime::ZERO;
            net.tx_free[0] = SimTime::ZERO;
        }
        assert!(distinct.len() > 1, "jitter must vary per packet");
    }

    #[test]
    fn duplication_rolls_only_when_enabled() {
        let mut net = lossless();
        let mut r = rng();
        let slot = net.transmit(SimTime::ZERO, 0, 10);
        net.receive(slot, 0, 1, &mut r).expect("ok");
        assert_eq!(net.maybe_duplicate(slot, 0, 1, &mut r), None);
        net.set_duplicate_probability(1.0);
        let extra = net.maybe_duplicate(slot, 0, 1, &mut r);
        assert!(extra.is_some(), "p=1 always duplicates");
        assert_eq!(net.stats.delivered, 2);
    }

    #[test]
    fn extra_delay_shifts_delivery() {
        let mut net = lossless();
        let mut r = rng();
        let slot = net.transmit(SimTime::ZERO, 0, 100);
        let base = net.receive(slot, 0, 1, &mut r).expect("ok");
        let mut net2 = lossless();
        net2.set_extra_delay_ns(1_000_000);
        let slot = net2.transmit(SimTime::ZERO, 0, 100);
        let delayed = net2.receive(slot, 0, 1, &mut r).expect("ok");
        assert_eq!(delayed.since(base), 1_000_000);
    }
}
