//! Simulated time.
//!
//! The simulation clock counts nanoseconds from the start of the run in a
//! `u64` — enough for five centuries of simulated time, which comfortably
//! covers an Andrew500 run.

/// A point in simulated time (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; used as "never".
    pub const NEVER: SimTime = SimTime(u64::MAX);

    /// Nanoseconds since simulation start.
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since simulation start.
    pub fn micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds since simulation start.
    pub fn millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start, as a float.
    pub fn secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This time advanced by `delta` nanoseconds, saturating.
    pub fn after(self, delta: u64) -> SimTime {
        SimTime(self.0.saturating_add(delta))
    }

    /// Nanoseconds from `earlier` to `self`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl std::fmt::Debug for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t+{}", format_duration(self.0))
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(self, f)
    }
}

/// Duration helpers (all return nanosecond counts).
pub mod dur {
    /// `n` microseconds in nanoseconds.
    pub const fn micros(n: u64) -> u64 {
        n * 1_000
    }
    /// `n` milliseconds in nanoseconds.
    pub const fn millis(n: u64) -> u64 {
        n * 1_000_000
    }
    /// `n` seconds in nanoseconds.
    pub const fn secs(n: u64) -> u64 {
        n * 1_000_000_000
    }
}

/// Renders a nanosecond duration with an adaptive unit, for debug output.
pub fn format_duration(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.3}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO.after(dur::millis(2));
        assert_eq!(t.micros(), 2_000);
        assert_eq!(t.since(SimTime(1_000_000)), 1_000_000);
        assert_eq!(SimTime(5).since(SimTime(10)), 0);
        assert_eq!(SimTime(3).max(SimTime(9)), SimTime(9));
    }

    #[test]
    fn never_saturates() {
        assert_eq!(SimTime::NEVER.after(100), SimTime::NEVER);
    }

    #[test]
    fn formatting() {
        assert_eq!(format_duration(500), "500ns");
        assert_eq!(format_duration(1_500), "1.5us");
        assert_eq!(format_duration(2_500_000), "2.50ms");
        assert_eq!(format_duration(3_000_000_000), "3.000s");
        assert_eq!(format!("{}", SimTime(1_500)), "t+1.5us");
    }

    #[test]
    fn conversions() {
        assert_eq!(dur::secs(1), 1_000_000_000);
        assert!((SimTime(1_500_000_000).secs_f64() - 1.5).abs() < 1e-9);
        assert_eq!(SimTime(2_000_000_000).millis(), 2_000);
    }
}
