//! CPU cost model, calibrated to the paper's testbed.
//!
//! The experiments ran on Dell Precision 410 workstations with a single
//! 600 MHz Pentium III. Simulated nodes charge CPU time through this model
//! instead of measuring host time, so results are deterministic and
//! host-independent, while saturation behaviour (which drives every
//! throughput figure) emerges from the true per-message work the protocol
//! performs.
//!
//! Calibration sources: UMAC paper (Black et al.) reports ~1 cycle/byte on
//! a PIII for the hash and ~4 µs fixed for the pad; MD5 runs at roughly
//! 50 MB/s on that hardware; a UDP send/recv through the era's Linux stack
//! costs on the order of 10 µs plus a per-byte copy. The constants are
//! deliberately exposed so benches can run sensitivity ablations.

/// CPU costs in nanoseconds for the primitive operations a node performs.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed cost of an MD5 digest (setup + finalization).
    pub digest_fixed_ns: u64,
    /// Per-byte cost of MD5 (≈ 50 MB/s → 20 ns/B).
    pub digest_per_byte_ns: f64,
    /// Fixed cost of computing or verifying one UMAC tag.
    pub mac_fixed_ns: u64,
    /// Per-byte cost of UMAC (≈ 1 GB/s on-era → 1 ns/B).
    pub mac_per_byte_ns: f64,
    /// Fixed cost of a UDP sendto (syscall + protocol stack).
    pub send_fixed_ns: u64,
    /// Per-byte cost of a send (copy + checksum).
    pub send_per_byte_ns: f64,
    /// Fixed cost of a UDP recvfrom.
    pub recv_fixed_ns: u64,
    /// Per-byte cost of a receive.
    pub recv_per_byte_ns: f64,
    /// Protocol bookkeeping per message handled (log insertion, quorum
    /// counting).
    pub proto_overhead_ns: u64,
    /// One RSA private-key operation (sign / decrypt), paper-era RSA-1024.
    pub rsa_private_ns: u64,
    /// One RSA public-key operation (verify / encrypt).
    pub rsa_public_ns: u64,
}

impl CostModel {
    /// The paper's testbed: 600 MHz Pentium III, Linux 2.2-era UDP stack.
    pub const PIII_600: CostModel = CostModel {
        digest_fixed_ns: 1_000,
        digest_per_byte_ns: 20.0,
        mac_fixed_ns: 1_000,
        mac_per_byte_ns: 1.0,
        send_fixed_ns: 10_000,
        send_per_byte_ns: 6.0,
        recv_fixed_ns: 10_000,
        recv_per_byte_ns: 6.0,
        proto_overhead_ns: 2_000,
        rsa_private_ns: 30_000_000,
        rsa_public_ns: 1_500_000,
    };

    /// A zero-cost model, useful to isolate network effects in tests.
    pub const FREE: CostModel = CostModel {
        digest_fixed_ns: 0,
        digest_per_byte_ns: 0.0,
        mac_fixed_ns: 0,
        mac_per_byte_ns: 0.0,
        send_fixed_ns: 0,
        send_per_byte_ns: 0.0,
        recv_fixed_ns: 0,
        recv_per_byte_ns: 0.0,
        proto_overhead_ns: 0,
        rsa_private_ns: 0,
        rsa_public_ns: 0,
    };

    /// Cost of digesting `bytes` bytes with MD5.
    pub fn digest(&self, bytes: usize) -> u64 {
        self.digest_fixed_ns + (bytes as f64 * self.digest_per_byte_ns) as u64
    }

    /// Cost of computing or verifying one MAC over `bytes` bytes.
    pub fn mac(&self, bytes: usize) -> u64 {
        self.mac_fixed_ns + (bytes as f64 * self.mac_per_byte_ns) as u64
    }

    /// Cost of generating an authenticator: `n_macs` MACs over the same
    /// `bytes`-byte message (the universal hash is shared across entries in
    /// real UMAC; we charge the hash once plus a pad per entry).
    pub fn authenticator(&self, n_macs: u32, bytes: usize) -> u64 {
        if n_macs == 0 {
            return 0;
        }
        self.mac(bytes) + (n_macs as u64 - 1) * self.mac_fixed_ns
    }

    /// Cost of producing an incremental hierarchical checkpoint digest:
    /// re-digest `dirty_parts` partitions totalling `dirty_bytes` encoded
    /// bytes, then fold each changed leaf up a Merkle tree of
    /// `total_parts` leaves (one interior-node digest over two 16-byte
    /// children per level).
    ///
    /// With every partition dirty this degenerates to roughly
    /// `digest(state)` plus the (small) tree overhead, so a full
    /// recompute is never cheaper than calling this with the full dirty
    /// set.
    pub fn partitioned_digest(&self, dirty_parts: u32, dirty_bytes: u64, total_parts: u32) -> u64 {
        let levels = u64::from(32 - total_parts.max(1).leading_zeros());
        let leaf_cost = u64::from(dirty_parts) * self.digest_fixed_ns
            + (dirty_bytes as f64 * self.digest_per_byte_ns) as u64;
        let tree_cost = u64::from(dirty_parts) * levels * self.digest(32);
        leaf_cost + tree_cost
    }

    /// Cost of sending a `bytes`-byte message.
    pub fn send(&self, bytes: usize) -> u64 {
        self.send_fixed_ns + (bytes as f64 * self.send_per_byte_ns) as u64
    }

    /// Cost of receiving a `bytes`-byte message.
    pub fn recv(&self, bytes: usize) -> u64 {
        self.recv_fixed_ns + (bytes as f64 * self.recv_per_byte_ns) as u64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::PIII_600
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_scales_with_size() {
        let c = CostModel::PIII_600;
        assert_eq!(c.digest(0), 1_000);
        // 4 KB at 20 ns/B ≈ 82 µs — the cost that shapes Figure 5.
        assert_eq!(c.digest(4096), 1_000 + 81_920);
        assert!(c.digest(8192) > 2 * c.digest(64));
    }

    #[test]
    fn mac_much_cheaper_than_digest() {
        // The paper's central claim: MAC cost is negligible vs digest.
        let c = CostModel::PIII_600;
        assert!(c.mac(4096) < c.digest(4096) / 10);
    }

    #[test]
    fn authenticator_amortizes_hash() {
        let c = CostModel::PIII_600;
        let one = c.authenticator(1, 1024);
        let three = c.authenticator(3, 1024);
        assert!(three < 3 * one, "entries share the universal hash");
        assert_eq!(c.authenticator(0, 1024), 0);
    }

    #[test]
    fn rsa_dwarfs_mac() {
        // Rampart/SecureRing signed every message; this ratio is why they
        // were orders of magnitude slower.
        let c = CostModel::PIII_600;
        assert!(c.rsa_private_ns > 1000 * c.mac(64));
    }

    #[test]
    fn partitioned_digest_rewards_small_dirty_sets() {
        let c = CostModel::PIII_600;
        let full_state = 256 * 4096;
        // All 256 partitions dirty: comparable to one big digest (the
        // tree adds a few percent).
        let all = c.partitioned_digest(256, full_state as u64, 256);
        assert!(all >= c.digest(full_state));
        // 4 dirty partitions out of 256: two orders of magnitude less.
        let few = c.partitioned_digest(4, 4 * 4096, 256);
        assert!(
            few * 20 < all,
            "incremental path must dominate: {few} vs {all}"
        );
        // Nothing dirty costs nothing.
        assert_eq!(c.partitioned_digest(0, 0, 256), 0);
    }

    #[test]
    fn free_model_is_free() {
        let c = CostModel::FREE;
        assert_eq!(c.digest(10_000), 0);
        assert_eq!(c.send(10_000) + c.recv(10_000) + c.mac(10_000), 0);
    }
}
