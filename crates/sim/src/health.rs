//! Observer-only cluster health: typed per-replica snapshots and an
//! always-on counter registry.
//!
//! Like [`crate::trace`] and [`crate::metrics`], this module is an
//! *observer*: protocol code writes into it through [`Context`]
//! accessors, but nothing here ever feeds back into protocol decisions
//! — the counters and snapshots can be reset or ignored without
//! changing a single simulated event. (The determinism lint exempts
//! this file for the same reason it exempts `trace.rs`/`metrics.rs`.)
//!
//! Two halves:
//!
//! - [`Counters`]: a per-node registry of messages sent/received by
//!   wire tag plus a fixed set of protocol event counters
//!   ([`Counter`]) — retransmissions, fast-path fallbacks, lease
//!   grants/revokes, view changes, recoveries, state-transfer bytes.
//!   It lives in the simulation kernel beside the trace sink and is
//!   bumped from the hot paths via `Context::count_*`, so it is exact
//!   (never sampled) and deterministic (a pure function of the run).
//! - [`HealthSnapshot`] / [`HealthReport`]: a point-in-time, typed
//!   view of one replica's externally observable state (view, role,
//!   execution/checkpoint watermarks, queue depths, lease and
//!   recovery status), and a cluster-level diff across replicas that
//!   flags laggards and view divergence. The chaos flight recorder
//!   appends a rendered report to failure output so a fuzz report
//!   says what state each node was wedged in, not just its last
//!   events.
//!
//! [`Context`]: crate::engine::Context

use crate::network::NodeId;
use std::fmt::Write as _;

/// Number of distinct wire tags ([`Counters`] arrays are indexed by
/// tag byte). Matches `Msg`'s encode tags `0..=24` in `bft-core`.
pub const TAG_COUNT: usize = 25;

/// Human name for a wire tag byte (mirrors `Msg::kind()` in
/// `bft-core`; unknown tags render as `"?"`).
pub fn tag_name(tag: u8) -> &'static str {
    match tag {
        0 => "request",
        1 => "pre-prepare",
        2 => "prepare",
        3 => "commit",
        4 => "reply",
        5 => "checkpoint",
        6 => "view-change",
        7 => "new-view",
        8 => "fetch-state",
        9 => "state-meta",
        10 => "fetch-batch",
        11 => "batch-data",
        12 => "fetch-requests",
        13 => "request-data",
        14 => "status",
        15 => "committed-batch",
        16 => "new-key",
        17 => "fetch-parts",
        18 => "part-data",
        19 => "recover",
        20 => "recover-attest",
        21 => "lease",
        22 => "lease-renew",
        23 => "lease-revoke",
        24 => "busy",
        _ => "?",
    }
}

/// Protocol event counters tracked per node in [`Counters`].
///
/// These are the features PRs 5–7 added, consolidated: each variant is
/// bumped at exactly the site that emits the matching metric/trace
/// event, so cross-checks against assembled traces are exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Client request retransmissions (retry timer fired and re-sent).
    Retransmissions,
    /// New-view retransmissions to straggling backups.
    NewViewRetransmits,
    /// Slots committed on the optimistic fast path (all `n` prepares).
    FastCommits,
    /// Fast-path slots that fell back to the classic commit round.
    FastFallbacks,
    /// Read-only quorum retries at the client.
    RoRetries,
    /// Read-only requests that fell back to the ordered path.
    RoFallbacks,
    /// Reads answered locally under a held lease.
    LeaseReads,
    /// Leases granted by the primary.
    LeaseGrants,
    /// Lease revocations initiated (write fencing).
    LeaseRevokes,
    /// View changes started.
    ViewChanges,
    /// New views installed.
    ViewsInstalled,
    /// Stable checkpoints formed.
    StableCheckpoints,
    /// State transfers completed.
    StateTransfers,
    /// Partition payload bytes applied during state transfer.
    StateTransferBytes,
    /// Proactive recoveries completed.
    Recoveries,
    /// Requests shed by replica admission control (over quota or cap).
    RequestsShed,
    /// BUSY pushback messages sent to clients.
    BusySent,
    /// Client operations whose bounded retry budget ran out.
    RetryBudgetExhausted,
}

impl Counter {
    /// Number of variants (sizes the per-node array).
    pub const COUNT: usize = 18;

    /// All variants in index order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::Retransmissions,
        Counter::NewViewRetransmits,
        Counter::FastCommits,
        Counter::FastFallbacks,
        Counter::RoRetries,
        Counter::RoFallbacks,
        Counter::LeaseReads,
        Counter::LeaseGrants,
        Counter::LeaseRevokes,
        Counter::ViewChanges,
        Counter::ViewsInstalled,
        Counter::StableCheckpoints,
        Counter::StateTransfers,
        Counter::StateTransferBytes,
        Counter::Recoveries,
        Counter::RequestsShed,
        Counter::BusySent,
        Counter::RetryBudgetExhausted,
    ];

    /// Stable snake_case name (used as a JSON key in `BENCH_*.json`).
    pub fn name(self) -> &'static str {
        match self {
            Counter::Retransmissions => "retransmissions",
            Counter::NewViewRetransmits => "new_view_retransmits",
            Counter::FastCommits => "fast_commits",
            Counter::FastFallbacks => "fast_fallbacks",
            Counter::RoRetries => "ro_retries",
            Counter::RoFallbacks => "ro_fallbacks",
            Counter::LeaseReads => "lease_reads",
            Counter::LeaseGrants => "lease_grants",
            Counter::LeaseRevokes => "lease_revokes",
            Counter::ViewChanges => "view_changes",
            Counter::ViewsInstalled => "views_installed",
            Counter::StableCheckpoints => "stable_checkpoints",
            Counter::StateTransfers => "state_transfers",
            Counter::StateTransferBytes => "state_transfer_bytes",
            Counter::Recoveries => "recoveries",
            Counter::RequestsShed => "requests_shed",
            Counter::BusySent => "busy_sent",
            Counter::RetryBudgetExhausted => "retry_budget_exhausted",
        }
    }

    fn index(self) -> usize {
        Counter::ALL
            .iter()
            .position(|&c| c == self)
            .expect("Counter::ALL covers every variant")
    }
}

/// One node's counters: messages by wire tag plus protocol events.
///
/// `sent` counts logical sends (a hardware multicast counts once, not
/// once per destination); `received` counts deliveries, so the two are
/// intentionally asymmetric under multicast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeCounters {
    /// Logical sends by wire tag.
    pub sent: [u64; TAG_COUNT],
    /// Deliveries by wire tag.
    pub received: [u64; TAG_COUNT],
    /// Protocol events, indexed per [`Counter::ALL`].
    pub events: [u64; Counter::COUNT],
}

impl Default for NodeCounters {
    fn default() -> NodeCounters {
        NodeCounters {
            sent: [0; TAG_COUNT],
            received: [0; TAG_COUNT],
            events: [0; Counter::COUNT],
        }
    }
}

impl NodeCounters {
    /// Value of one event counter.
    pub fn event(&self, c: Counter) -> u64 {
        self.events[c.index()]
    }

    /// Total logical sends across all tags.
    pub fn sent_total(&self) -> u64 {
        self.sent.iter().sum()
    }

    /// Total deliveries across all tags.
    pub fn received_total(&self) -> u64 {
        self.received.iter().sum()
    }
}

/// The cluster-wide counter registry, one [`NodeCounters`] per node id.
///
/// Grows on demand (clients and replicas share the id space); nodes
/// that never counted anything read as all-zero.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Counters {
    nodes: Vec<NodeCounters>,
}

impl Counters {
    /// An empty registry.
    pub fn new() -> Counters {
        Counters::default()
    }

    fn node_mut(&mut self, id: NodeId) -> &mut NodeCounters {
        let idx = id as usize;
        if idx >= self.nodes.len() {
            self.nodes.resize_with(idx + 1, NodeCounters::default);
        }
        &mut self.nodes[idx]
    }

    /// Records one logical send of a message with wire tag `tag`.
    pub fn count_sent(&mut self, node: NodeId, tag: u8) {
        if (tag as usize) < TAG_COUNT {
            self.node_mut(node).sent[tag as usize] += 1;
        }
    }

    /// Records one delivery of a message with wire tag `tag`.
    pub fn count_received(&mut self, node: NodeId, tag: u8) {
        if (tag as usize) < TAG_COUNT {
            self.node_mut(node).received[tag as usize] += 1;
        }
    }

    /// Bumps an event counter by one.
    pub fn count(&mut self, node: NodeId, c: Counter) {
        self.count_add(node, c, 1);
    }

    /// Bumps an event counter by `delta` (byte counters).
    pub fn count_add(&mut self, node: NodeId, c: Counter, delta: u64) {
        self.node_mut(node).events[c.index()] += delta;
    }

    /// One node's counters (all-zero if the node never counted).
    pub fn node(&self, id: NodeId) -> NodeCounters {
        self.nodes.get(id as usize).cloned().unwrap_or_default()
    }

    /// Number of node slots allocated so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Cluster-wide total for one event counter.
    pub fn total(&self, c: Counter) -> u64 {
        let i = c.index();
        self.nodes.iter().map(|n| n.events[i]).sum()
    }

    /// Cluster-wide sends by tag.
    pub fn sent_by_tag(&self) -> [u64; TAG_COUNT] {
        let mut out = [0u64; TAG_COUNT];
        for n in &self.nodes {
            for (o, s) in out.iter_mut().zip(n.sent.iter()) {
                *o += s;
            }
        }
        out
    }

    /// Cluster-wide deliveries by tag.
    pub fn received_by_tag(&self) -> [u64; TAG_COUNT] {
        let mut out = [0u64; TAG_COUNT];
        for n in &self.nodes {
            for (o, r) in out.iter_mut().zip(n.received.iter()) {
                *o += r;
            }
        }
        out
    }

    /// Clears everything (e.g. between warmup and measurement).
    pub fn reset(&mut self) {
        self.nodes.clear();
    }

    /// Sorted `(name, total)` pairs for every nonzero tag and event
    /// counter — the flat map exported into `BENCH_*.json`.
    pub fn flattened(&self) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        let sent = self.sent_by_tag();
        let recv = self.received_by_tag();
        for tag in 0..TAG_COUNT {
            if sent[tag] > 0 {
                out.push((format!("sent.{}", tag_name(tag as u8)), sent[tag]));
            }
            if recv[tag] > 0 {
                out.push((format!("recv.{}", tag_name(tag as u8)), recv[tag]));
            }
        }
        for c in Counter::ALL {
            let v = self.total(c);
            if v > 0 {
                out.push((c.name().to_string(), v));
            }
        }
        out.sort();
        out
    }
}

/// A replica's protocol role at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Primary of its current view.
    Primary,
    /// Backup in its current view.
    Backup,
}

impl Role {
    /// Short label for tables.
    pub fn name(self) -> &'static str {
        match self {
            Role::Primary => "primary",
            Role::Backup => "backup",
        }
    }
}

/// A point-in-time, typed view of one replica's externally observable
/// state. Built by the protocol crate (`Replica::health_snapshot`);
/// `bft-sim` only defines the shape so observers and reports can be
/// shared across experiments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// The replica's node id.
    pub node: NodeId,
    /// Simulated time the snapshot was taken.
    pub at_ns: u64,
    /// Current view number.
    pub view: u64,
    /// Primary or backup in that view.
    pub role: Role,
    /// Mid view change (sent ViewChange, waiting for NewView).
    pub in_view_change: bool,
    /// Proactive recovery in progress.
    pub recovering: bool,
    /// State transfer (partition fetch) in flight.
    pub fetching_state: bool,
    /// Highest sequence executed (possibly tentatively).
    pub last_executed: u64,
    /// Highest sequence executed with finality.
    pub last_final: u64,
    /// Stable checkpoint sequence.
    pub last_stable: u64,
    /// Next sequence the primary would assign.
    pub next_seq: u64,
    /// Slots resident in the ordering log.
    pub log_slots: u64,
    /// Requests batched but not yet pre-prepared (primary).
    pub pending_batch: u64,
    /// Requests heard but not yet executed.
    pub pending_requests: u64,
    /// Read-only requests parked for missing tentative agreement.
    pub waiting_ro: u64,
    /// Reads parked waiting for a lease grant.
    pub waiting_lease_ro: u64,
    /// Holding a currently valid read lease.
    pub lease_held: bool,
    /// Lease expiry (ns), 0 when no lease is held.
    pub lease_expiry_ns: u64,
    /// Fast-path commit enabled in this replica's config.
    pub fast_path: bool,
    /// Requests shed by admission control since startup.
    pub requests_shed: u64,
    /// BUSY pushback messages sent since startup.
    pub busy_sent: u64,
    /// Peak depth the ingest backlog (pending batch + pending
    /// requests) ever reached — the high-watermark admission control
    /// is judged against.
    pub backlog_high_watermark: u64,
}

impl HealthSnapshot {
    /// One-word wedge status, most severe condition first.
    pub fn status(&self) -> &'static str {
        if self.recovering {
            "recovering"
        } else if self.fetching_state {
            "state-transfer"
        } else if self.in_view_change {
            "view-change"
        } else {
            "ok"
        }
    }
}

/// How far behind the max `last_executed` a replica may be before the
/// report flags it as a laggard. One checkpoint interval of slack is
/// normal; a whole log window is not.
pub const LAG_THRESHOLD: u64 = 16;

/// A cluster-level diff across per-replica snapshots: who is behind,
/// who disagrees about the view, who is wedged mid-protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// The snapshots the report was built from, in node order.
    pub snapshots: Vec<HealthSnapshot>,
    /// Highest view among the snapshots.
    pub max_view: u64,
    /// Highest `last_executed` among the snapshots.
    pub max_executed: u64,
    /// Nodes more than [`LAG_THRESHOLD`] behind `max_executed`.
    pub laggards: Vec<NodeId>,
    /// Not all replicas agree on the view.
    pub divergent_views: bool,
    /// Nodes whose status is not `"ok"`.
    pub wedged: Vec<NodeId>,
}

impl HealthReport {
    /// Diffs `snapshots` into a report.
    pub fn from_snapshots(snapshots: Vec<HealthSnapshot>) -> HealthReport {
        let max_view = snapshots.iter().map(|s| s.view).max().unwrap_or(0);
        let max_executed = snapshots.iter().map(|s| s.last_executed).max().unwrap_or(0);
        let laggards = snapshots
            .iter()
            .filter(|s| s.last_executed + LAG_THRESHOLD < max_executed)
            .map(|s| s.node)
            .collect();
        let divergent_views = snapshots.iter().any(|s| s.view != max_view);
        let wedged = snapshots
            .iter()
            .filter(|s| s.status() != "ok")
            .map(|s| s.node)
            .collect();
        HealthReport {
            snapshots,
            max_view,
            max_executed,
            laggards,
            divergent_views,
            wedged,
        }
    }

    /// No laggards, no divergence, nobody wedged.
    pub fn healthy(&self) -> bool {
        self.laggards.is_empty() && !self.divergent_views && self.wedged.is_empty()
    }

    /// Renders the per-replica table plus the diff summary — the block
    /// the chaos flight recorder appends to failure reports.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "node  view  role     status          exec   final  stable  next  log  pb/pr/ro/lro  shed/busy/hw  lease\n",
        );
        for s in &self.snapshots {
            let lease = if s.lease_held {
                format!("@{}us", s.lease_expiry_ns / 1_000)
            } else {
                "-".to_string()
            };
            let _ = writeln!(
                out,
                "{:>4}  {:>4}  {:<7}  {:<14}  {:>5}  {:>5}  {:>6}  {:>4}  {:>3}  {:>2}/{}/{}/{}  {:>4}/{}/{}  {}",
                s.node,
                s.view,
                s.role.name(),
                s.status(),
                s.last_executed,
                s.last_final,
                s.last_stable,
                s.next_seq,
                s.log_slots,
                s.pending_batch,
                s.pending_requests,
                s.waiting_ro,
                s.waiting_lease_ro,
                s.requests_shed,
                s.busy_sent,
                s.backlog_high_watermark,
                lease,
            );
        }
        let _ = writeln!(
            out,
            "cluster: max_view={} max_executed={} laggards={:?} divergent_views={} wedged={:?}",
            self.max_view, self.max_executed, self.laggards, self.divergent_views, self.wedged,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(node: NodeId, view: u64, exec: u64) -> HealthSnapshot {
        HealthSnapshot {
            node,
            at_ns: 1_000,
            view,
            role: if view % 4 == u64::from(node) {
                Role::Primary
            } else {
                Role::Backup
            },
            in_view_change: false,
            recovering: false,
            fetching_state: false,
            last_executed: exec,
            last_final: exec,
            last_stable: exec / 8 * 8,
            next_seq: exec + 1,
            log_slots: 4,
            pending_batch: 0,
            pending_requests: 1,
            waiting_ro: 0,
            waiting_lease_ro: 0,
            lease_held: false,
            lease_expiry_ns: 0,
            fast_path: true,
            requests_shed: 0,
            busy_sent: 0,
            backlog_high_watermark: 1,
        }
    }

    #[test]
    fn counters_count_and_total() {
        let mut c = Counters::new();
        c.count_sent(0, 1);
        c.count_sent(0, 1);
        c.count_received(2, 1);
        c.count(1, Counter::FastCommits);
        c.count_add(1, Counter::StateTransferBytes, 4096);
        assert_eq!(c.node(0).sent[1], 2);
        assert_eq!(c.node(2).received[1], 1);
        assert_eq!(c.node(1).event(Counter::FastCommits), 1);
        assert_eq!(c.total(Counter::StateTransferBytes), 4096);
        assert_eq!(c.sent_by_tag()[1], 2);
        // Unknown node ids read as zero; out-of-range tags are ignored.
        assert_eq!(c.node(99).sent_total(), 0);
        c.count_sent(0, 200);
        assert_eq!(c.node(0).sent_total(), 2);
    }

    #[test]
    fn counters_flattened_is_sorted_and_nonzero_only() {
        let mut c = Counters::new();
        c.count_sent(0, 2);
        c.count_received(1, 2);
        c.count(0, Counter::LeaseReads);
        let flat = c.flattened();
        let names: Vec<&str> = flat.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, vec!["lease_reads", "recv.prepare", "sent.prepare"]);
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn report_flags_laggards_and_divergence() {
        let healthy = HealthReport::from_snapshots(vec![snap(0, 1, 100), snap(1, 1, 99)]);
        assert!(healthy.healthy(), "{healthy:?}");

        let mut behind = snap(2, 1, 100 - LAG_THRESHOLD - 1);
        behind.in_view_change = true;
        let report = HealthReport::from_snapshots(vec![snap(0, 1, 100), snap(1, 2, 100), behind]);
        assert_eq!(report.laggards, vec![2]);
        assert!(report.divergent_views);
        assert_eq!(report.wedged, vec![2]);
        assert!(!report.healthy());
        let rendered = report.render();
        assert!(rendered.contains("view-change"), "{rendered}");
        assert!(rendered.contains("divergent_views=true"), "{rendered}");
    }

    #[test]
    fn status_ranks_recovery_first() {
        let mut s = snap(0, 0, 5);
        assert_eq!(s.status(), "ok");
        s.in_view_change = true;
        assert_eq!(s.status(), "view-change");
        s.fetching_state = true;
        assert_eq!(s.status(), "state-transfer");
        s.recovering = true;
        assert_eq!(s.status(), "recovering");
    }

    #[test]
    fn tag_names_cover_every_tag() {
        for tag in 0..TAG_COUNT as u8 {
            assert_ne!(tag_name(tag), "?", "tag {tag} unnamed");
        }
        assert_eq!(tag_name(TAG_COUNT as u8), "?");
    }
}
