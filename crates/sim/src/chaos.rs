//! Deterministic, seed-replayable fault schedules (the chaos engine).
//!
//! A [`FaultPlan`] is a time-ordered list of interventions — partitions
//! and heals, loss/delay/jitter/duplication knob changes, replica crashes
//! and restarts, and Byzantine mutations — that a driver applies to a
//! running simulation at the scheduled instants. Plans are plain data:
//! they can be written by hand for directed tests, generated from a seed
//! by [`FaultPlan::generate`] for fuzzing, and shrunk by
//! [`FaultPlan::minimize`] when a generated plan exposes a failure.
//!
//! Everything here is deterministic. The generator draws from its own
//! `StdRng` seeded by the plan seed, so `(seed, config)` fully determines
//! the plan, and the simulation's own RNG stream is untouched — replaying
//! a printed seed reproduces the failing run bit-for-bit.

use crate::network::{Network, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::fmt;

/// A Byzantine mutation mode, mirrored onto the protocol crate's
/// fault-injection behaviours by the harness applying the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByzMode {
    /// Process messages but never send anything.
    Silent,
    /// As primary, send conflicting pre-prepares to different backups.
    Equivocate,
    /// Execute correctly but reply with corrupted results.
    WrongResult,
    /// Send garbage authentication tags on every message.
    CorruptAuth,
    /// Serve corrupted snapshots to state-transfer requests.
    CorruptStateData,
}

/// A node-level intervention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeFault {
    /// Fail-stop: the node stops processing everything.
    Crash,
    /// Resume correct operation (state intact, as after a pause).
    Restart,
    /// Switch the node to a Byzantine mutation mode.
    Byzantine(ByzMode),
    /// Flip bits in the node's service state without crashing it (a
    /// latent disk/memory fault). Unlike [`NodeFault::Restart`]able
    /// faults, only a proactive recovery audit heals this — the node
    /// keeps running on corrupt state until then.
    SilentCorruption {
        /// Deterministic corruption pattern selector.
        salt: u64,
    },
    /// Freeze the node's checkpointing: it keeps ordering and executing
    /// but never produces a checkpoint, so its stable point stops
    /// advancing and it eventually stalls at the log-window edge.
    StaleState,
}

/// A client-level intervention, mirrored onto the protocol crate's
/// client fault-injection behaviours by the harness applying the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientFault {
    /// Open-loop flood: abandon the closed loop and fire a fresh request
    /// every `interval_ns` (admission-control pressure).
    Flood {
        /// Pacing interval between flood submissions.
        interval_ns: u64,
    },
    /// Retransmission storm: re-send the outstanding request every
    /// `interval_ns` (duplicate-suppression pressure).
    Replay {
        /// Pacing interval between replays.
        interval_ns: u64,
    },
    /// Send a request whose every MAC is corrupt every `interval_ns`
    /// (verification-cost pressure).
    Malformed {
        /// Pacing interval between malformed sends.
        interval_ns: u64,
    },
    /// Resume correct closed-loop operation.
    Restore,
}

/// A network-level intervention, applied via [`NetFault::apply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// Block traffic between `a` and `b` in both directions.
    Partition {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Block traffic from `src` to `dst` only.
    PartitionOneWay {
        /// Sender whose packets are blocked.
        src: NodeId,
        /// Destination that stops hearing from `src`.
        dst: NodeId,
    },
    /// Cut `node` off from all `n_hosts` hosts in both directions.
    Isolate {
        /// The node to isolate.
        node: NodeId,
        /// Total number of hosts in the simulation.
        n_hosts: u32,
    },
    /// Remove partitions touching `node`.
    HealNode(NodeId),
    /// Remove every partition.
    HealAll,
    /// Set the uniform packet-loss probability, in permille (0..=1000).
    Loss(u16),
    /// Set the fixed extra one-way delay on every packet.
    ExtraDelay(u64),
    /// Set the per-packet random delay bound (message reordering).
    Jitter(u64),
    /// Set the packet duplication probability, in permille (0..=1000).
    Duplicate(u16),
}

impl NetFault {
    /// Applies this intervention to the network.
    pub fn apply(&self, net: &mut Network) {
        match *self {
            NetFault::Partition { a, b } => net.partition(a, b),
            NetFault::PartitionOneWay { src, dst } => net.partition_one_way(src, dst),
            NetFault::Isolate { node, n_hosts } => net.isolate(node, n_hosts),
            NetFault::HealNode(node) => net.heal_node(node),
            NetFault::HealAll => net.heal(),
            NetFault::Loss(permille) => net.set_loss_probability(f64::from(permille) / 1000.0),
            NetFault::ExtraDelay(ns) => net.set_extra_delay_ns(ns),
            NetFault::Jitter(ns) => net.set_jitter_ns(ns),
            NetFault::Duplicate(permille) => {
                net.set_duplicate_probability(f64::from(permille) / 1000.0)
            }
        }
    }
}

/// One intervention: either network-level or node-level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// A network intervention.
    Net(NetFault),
    /// A node intervention.
    Node {
        /// The target node.
        node: NodeId,
        /// What happens to it.
        fault: NodeFault,
    },
    /// A client intervention.
    Client {
        /// The target client (node id, i.e. `>= replicas`).
        client: NodeId,
        /// What happens to it.
        fault: ClientFault,
    },
}

/// A fault scheduled at an absolute simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the fault takes effect (nanoseconds of simulated time,
    /// measured from the start of the run the plan is applied to).
    pub at_ns: u64,
    /// The intervention.
    pub fault: Fault,
}

/// Parameters for [`FaultPlan::generate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Number of replicas (node ids `0..replicas`).
    pub replicas: u32,
    /// Number of clients (node ids `replicas..replicas + clients`).
    pub clients: u32,
    /// Maximum number of simultaneously crashed-or-Byzantine replicas.
    /// Keep this at most `f`: with more, safety violations are expected
    /// and the invariant checker would report true — but uninteresting —
    /// failures.
    pub max_faulty: u32,
    /// Faults are scheduled inside `(horizon_ns / 10, horizon_ns * 9 / 10)`;
    /// at `horizon_ns` the plan appends a cleanup (heal everything,
    /// restart everyone) so liveness can be asserted afterwards.
    pub horizon_ns: u64,
    /// How many random fault events to schedule (before cleanup).
    pub events: usize,
    /// Also draw recovery-era faults ([`NodeFault::SilentCorruption`] and
    /// [`NodeFault::StaleState`]). Off by default so plans generated by
    /// earlier seeds stay byte-identical; corruption shares the
    /// `max_faulty` budget but — not being `Restart`able — holds its
    /// budget slot for the rest of the plan and is excluded from cleanup
    /// (healing it is the recovery subsystem's job, which the harness
    /// asserts via the bounded-heal invariant).
    pub recovery_faults: bool,
    /// Also draw client faults ([`ClientFault`]: floods, replay storms,
    /// malformed requests). Off by default so plans generated by earlier
    /// seeds stay byte-identical. At most one client misbehaves at a
    /// time — honest-client starvation is only a meaningful invariant
    /// while some clients stay honest — and cleanup restores it.
    pub client_faults: bool,
}

/// A deterministic, replayable schedule of faults.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Interventions sorted by `at_ns`.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no interventions).
    pub fn empty() -> FaultPlan {
        FaultPlan::default()
    }

    /// Generates a random plan from `seed`. The same `(seed, cfg)` always
    /// yields the same plan. The generated schedule keeps at most
    /// `cfg.max_faulty` replicas simultaneously crashed or Byzantine and
    /// ends with a cleanup phase at `cfg.horizon_ns` that heals all
    /// partitions, zeroes every fault knob, and restarts every faulty
    /// replica.
    pub fn generate(seed: u64, cfg: &ChaosConfig) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_hosts = cfg.replicas + cfg.clients;
        let lo = cfg.horizon_ns / 10;
        let hi = cfg.horizon_ns * 9 / 10;
        let mut times: Vec<u64> = (0..cfg.events).map(|_| rng.gen_range(lo..hi)).collect();
        times.sort_unstable();
        // Replicas currently crashed or Byzantine (the "fault budget"),
        // and replicas silently corrupted (budgeted but not restartable).
        let mut faulty: BTreeSet<NodeId> = BTreeSet::new();
        let mut corrupted: BTreeSet<NodeId> = BTreeSet::new();
        // Clients currently misbehaving (at most one at a time).
        let mut bad_clients: BTreeSet<NodeId> = BTreeSet::new();
        let mut events = Vec::with_capacity(cfg.events + 8);
        for at_ns in times {
            let fault = Self::random_fault(
                &mut rng,
                cfg,
                n_hosts,
                &mut faulty,
                &mut corrupted,
                &mut bad_clients,
            );
            events.push(FaultEvent { at_ns, fault });
        }
        // Cleanup: the run must be able to become live again.
        let at_ns = cfg.horizon_ns;
        for net in [
            NetFault::HealAll,
            NetFault::Loss(0),
            NetFault::ExtraDelay(0),
            NetFault::Jitter(0),
            NetFault::Duplicate(0),
        ] {
            events.push(FaultEvent {
                at_ns,
                fault: Fault::Net(net),
            });
        }
        for node in faulty {
            events.push(FaultEvent {
                at_ns,
                fault: Fault::Node {
                    node,
                    fault: NodeFault::Restart,
                },
            });
        }
        for client in bad_clients {
            events.push(FaultEvent {
                at_ns,
                fault: Fault::Client {
                    client,
                    fault: ClientFault::Restore,
                },
            });
        }
        FaultPlan { events }
    }

    fn random_fault(
        rng: &mut StdRng,
        cfg: &ChaosConfig,
        n_hosts: u32,
        faulty: &mut BTreeSet<NodeId>,
        corrupted: &mut BTreeSet<NodeId>,
        bad_clients: &mut BTreeSet<NodeId>,
    ) -> Fault {
        // Weighted action table; node faults appear only while the budget
        // (or, for restarts, the faulty set) allows them. Corrupted
        // replicas hold a budget slot until the plan ends: the generator
        // cannot observe the recovery that would heal them.
        let budget_free = ((faulty.len() + corrupted.len()) as u32) < cfg.max_faulty;
        let mut actions: Vec<(u32, u32)> = vec![
            (3, 0), // partition pair
            (1, 1), // one-way partition
            (2, 2), // isolate
            (2, 3), // heal node
            (2, 4), // heal all
            (2, 5), // loss
            (1, 6), // extra delay
            (1, 7), // jitter
            (1, 8), // duplicate
        ];
        if budget_free {
            actions.push((2, 9)); // crash
            actions.push((1, 10)); // byzantine
        }
        if !faulty.is_empty() {
            actions.push((2, 11)); // restart
        }
        if cfg.recovery_faults && budget_free {
            actions.push((2, 12)); // silent corruption
            actions.push((1, 13)); // stale state
        }
        if cfg.client_faults && cfg.clients > 0 {
            if bad_clients.is_empty() {
                actions.push((4, 14)); // client misbehaves
            } else {
                actions.push((2, 15)); // client restored
            }
        }
        let total: u32 = actions.iter().map(|&(w, _)| w).sum();
        let mut roll = rng.gen_range(0..total);
        let mut action = 0;
        for &(w, a) in &actions {
            if roll < w {
                action = a;
                break;
            }
            roll -= w;
        }
        let any_node = |rng: &mut StdRng| rng.gen_range(0..n_hosts);
        let replica = |rng: &mut StdRng| rng.gen_range(0..cfg.replicas);
        let correct_replica =
            |rng: &mut StdRng, faulty: &BTreeSet<NodeId>, corrupted: &BTreeSet<NodeId>| {
                let pool: Vec<NodeId> = (0..cfg.replicas)
                    .filter(|r| !faulty.contains(r) && !corrupted.contains(r))
                    .collect();
                pool[rng.gen_range(0..pool.len())]
            };
        match action {
            0 => {
                let a = any_node(rng);
                let b = any_node(rng);
                if a == b {
                    Fault::Net(NetFault::HealNode(a))
                } else {
                    Fault::Net(NetFault::Partition { a, b })
                }
            }
            1 => {
                let src = any_node(rng);
                let dst = replica(rng);
                if src == dst {
                    Fault::Net(NetFault::HealNode(src))
                } else {
                    Fault::Net(NetFault::PartitionOneWay { src, dst })
                }
            }
            2 => Fault::Net(NetFault::Isolate {
                node: any_node(rng),
                n_hosts,
            }),
            3 => Fault::Net(NetFault::HealNode(any_node(rng))),
            4 => Fault::Net(NetFault::HealAll),
            5 => Fault::Net(NetFault::Loss(rng.gen_range(0..=150))),
            6 => Fault::Net(NetFault::ExtraDelay(rng.gen_range(0..=5_000_000))),
            7 => Fault::Net(NetFault::Jitter(rng.gen_range(0..=2_000_000))),
            8 => Fault::Net(NetFault::Duplicate(rng.gen_range(0..=200))),
            9 => {
                let node = correct_replica(rng, faulty, corrupted);
                faulty.insert(node);
                Fault::Node {
                    node,
                    fault: NodeFault::Crash,
                }
            }
            10 => {
                let node = correct_replica(rng, faulty, corrupted);
                faulty.insert(node);
                let mode = match rng.gen_range(0..5u32) {
                    0 => ByzMode::Silent,
                    1 => ByzMode::Equivocate,
                    2 => ByzMode::WrongResult,
                    3 => ByzMode::CorruptAuth,
                    _ => ByzMode::CorruptStateData,
                };
                Fault::Node {
                    node,
                    fault: NodeFault::Byzantine(mode),
                }
            }
            11 => {
                let pool: Vec<NodeId> = faulty.iter().copied().collect();
                let node = pool[rng.gen_range(0..pool.len())];
                faulty.remove(&node);
                Fault::Node {
                    node,
                    fault: NodeFault::Restart,
                }
            }
            12 => {
                let node = correct_replica(rng, faulty, corrupted);
                corrupted.insert(node);
                Fault::Node {
                    node,
                    fault: NodeFault::SilentCorruption { salt: rng.gen() },
                }
            }
            13 => {
                let node = correct_replica(rng, faulty, corrupted);
                faulty.insert(node);
                Fault::Node {
                    node,
                    fault: NodeFault::StaleState,
                }
            }
            14 => {
                let client = cfg.replicas + rng.gen_range(0..cfg.clients);
                bad_clients.insert(client);
                // Intervals are drawn aggressive enough to saturate the
                // admission gate many times over (a handful of µs per
                // request against multi-ms ordering latencies).
                let fault = match rng.gen_range(0..4u32) {
                    0 | 1 => ClientFault::Flood {
                        interval_ns: rng.gen_range(20_000..400_000),
                    },
                    2 => ClientFault::Replay {
                        interval_ns: rng.gen_range(20_000..400_000),
                    },
                    _ => ClientFault::Malformed {
                        interval_ns: rng.gen_range(20_000..400_000),
                    },
                };
                Fault::Client { client, fault }
            }
            _ => {
                let pool: Vec<NodeId> = bad_clients.iter().copied().collect();
                let client = pool[rng.gen_range(0..pool.len())];
                bad_clients.remove(&client);
                Fault::Client {
                    client,
                    fault: ClientFault::Restore,
                }
            }
        }
    }

    /// Greedily shrinks the plan: repeatedly drops any single event whose
    /// removal keeps `still_fails` true, until no single removal does.
    /// Each probe re-runs the caller's predicate (typically a full
    /// simulation), so this is meant for failure reporting, not hot paths.
    pub fn minimize(&self, mut still_fails: impl FnMut(&FaultPlan) -> bool) -> FaultPlan {
        let mut best = self.clone();
        loop {
            let mut improved = false;
            let mut i = 0;
            while i < best.events.len() {
                let mut candidate = best.clone();
                candidate.events.remove(i);
                if still_fails(&candidate) {
                    best = candidate;
                    improved = true;
                } else {
                    i += 1;
                }
            }
            if !improved {
                return best;
            }
        }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.events.is_empty() {
            return writeln!(f, "  (no faults)");
        }
        for ev in &self.events {
            writeln!(f, "  {:>12} ns  {:?}", ev.at_ns, ev.fault)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetConfig;

    fn cfg() -> ChaosConfig {
        ChaosConfig {
            replicas: 4,
            clients: 2,
            max_faulty: 1,
            horizon_ns: 1_000_000_000,
            events: 12,
            recovery_faults: false,
            client_faults: false,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = FaultPlan::generate(7, &cfg());
        let b = FaultPlan::generate(7, &cfg());
        assert_eq!(a, b);
        let c = FaultPlan::generate(8, &cfg());
        assert_ne!(a, c, "different seeds give different plans");
    }

    #[test]
    fn plans_are_sorted_and_end_with_cleanup() {
        let plan = FaultPlan::generate(42, &cfg());
        assert!(plan.events.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        assert!(plan
            .events
            .iter()
            .any(|e| e.fault == Fault::Net(NetFault::HealAll) && e.at_ns == cfg().horizon_ns));
    }

    #[test]
    fn fault_budget_is_respected() {
        for seed in 0..50 {
            let plan = FaultPlan::generate(seed, &cfg());
            let mut down: BTreeSet<NodeId> = BTreeSet::new();
            for ev in &plan.events {
                if let Fault::Node { node, fault } = ev.fault {
                    match fault {
                        NodeFault::Restart => {
                            down.remove(&node);
                        }
                        _ => {
                            down.insert(node);
                        }
                    }
                    assert!(down.len() <= 1, "budget exceeded in seed {seed}");
                }
            }
            assert!(down.is_empty(), "cleanup must restart everyone");
        }
    }

    #[test]
    fn recovery_faults_are_gated_and_budgeted() {
        // Gating: with the flag off, no plan ever contains the new faults.
        for seed in 0..50 {
            let plan = FaultPlan::generate(seed, &cfg());
            assert!(plan.events.iter().all(|e| !matches!(
                e.fault,
                Fault::Node {
                    fault: NodeFault::SilentCorruption { .. } | NodeFault::StaleState,
                    ..
                }
            )));
        }
        // Budget: with it on, corrupted + down never exceeds max_faulty,
        // corruption holds its slot for the whole plan, and cleanup
        // restarts every restartable fault.
        let rcfg = ChaosConfig {
            recovery_faults: true,
            ..cfg()
        };
        let mut saw_corruption = false;
        let mut saw_stale = false;
        for seed in 0..200 {
            let plan = FaultPlan::generate(seed, &rcfg);
            let mut down: BTreeSet<NodeId> = BTreeSet::new();
            let mut corrupt: BTreeSet<NodeId> = BTreeSet::new();
            for ev in &plan.events {
                if let Fault::Node { node, fault } = ev.fault {
                    match fault {
                        NodeFault::Restart => {
                            down.remove(&node);
                        }
                        NodeFault::SilentCorruption { .. } => {
                            saw_corruption = true;
                            assert!(!down.contains(&node), "corrupted a down replica");
                            corrupt.insert(node);
                        }
                        NodeFault::StaleState => {
                            saw_stale = true;
                            down.insert(node);
                        }
                        _ => {
                            down.insert(node);
                        }
                    }
                    assert!(
                        down.union(&corrupt).count() <= 1,
                        "budget exceeded in seed {seed}"
                    );
                }
            }
            assert!(down.is_empty(), "cleanup must restart everyone");
        }
        assert!(saw_corruption, "200 seeds never drew a corruption");
        assert!(saw_stale, "200 seeds never drew a stale-state fault");
    }

    #[test]
    fn client_faults_are_gated_and_bounded() {
        // Gating: with the flag off, no plan ever touches a client.
        for seed in 0..50 {
            let plan = FaultPlan::generate(seed, &cfg());
            assert!(plan
                .events
                .iter()
                .all(|e| !matches!(e.fault, Fault::Client { .. })));
        }
        // Bound: with it on, at most one client misbehaves at a time,
        // targets are valid client ids, and cleanup restores every one.
        let ccfg = ChaosConfig {
            client_faults: true,
            ..cfg()
        };
        let mut saw_flood = false;
        let mut saw_replay = false;
        let mut saw_malformed = false;
        for seed in 0..200 {
            let plan = FaultPlan::generate(seed, &ccfg);
            let mut bad: BTreeSet<NodeId> = BTreeSet::new();
            for ev in &plan.events {
                if let Fault::Client { client, fault } = ev.fault {
                    assert!(
                        (ccfg.replicas..ccfg.replicas + ccfg.clients).contains(&client),
                        "fault targets a non-client node in seed {seed}"
                    );
                    match fault {
                        ClientFault::Restore => {
                            bad.remove(&client);
                        }
                        ClientFault::Flood { interval_ns }
                        | ClientFault::Replay { interval_ns }
                        | ClientFault::Malformed { interval_ns } => {
                            assert!(interval_ns > 0);
                            match fault {
                                ClientFault::Flood { .. } => saw_flood = true,
                                ClientFault::Replay { .. } => saw_replay = true,
                                _ => saw_malformed = true,
                            }
                            bad.insert(client);
                        }
                    }
                    assert!(bad.len() <= 1, "two clients misbehaving in seed {seed}");
                }
            }
            assert!(bad.is_empty(), "cleanup must restore every client");
        }
        assert!(saw_flood, "200 seeds never drew a flood");
        assert!(saw_replay, "200 seeds never drew a replay storm");
        assert!(saw_malformed, "200 seeds never drew a malformed flood");
    }

    #[test]
    fn net_faults_apply() {
        let mut net = Network::new(NetConfig::LOSSLESS_100MBPS);
        NetFault::Partition { a: 0, b: 1 }.apply(&mut net);
        NetFault::Loss(100).apply(&mut net);
        NetFault::Jitter(1000).apply(&mut net);
        NetFault::Duplicate(50).apply(&mut net);
        NetFault::ExtraDelay(500).apply(&mut net);
        NetFault::HealAll.apply(&mut net);
        NetFault::Loss(0).apply(&mut net);
    }

    #[test]
    fn minimize_converges_to_the_culprit() {
        let plan = FaultPlan::generate(3, &cfg());
        // Pretend exactly one specific event causes the failure.
        let culprit = plan.events[4];
        let min = plan.minimize(|p| p.events.contains(&culprit));
        assert_eq!(min.events, vec![culprit]);
    }
}
