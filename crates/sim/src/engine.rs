//! The discrete-event engine.
//!
//! Nodes (replicas, clients, servers) implement [`Node`] and interact with
//! the world only through [`Context`]: sending messages, setting timers,
//! and charging CPU time. Each node is a *serial processor* — while it is
//! busy with one event, later events for it are deferred — which is what
//! makes CPU a saturable resource and produces the throughput plateaus in
//! the paper's Figures 4 and 6.
//!
//! Determinism: events are ordered by (time, insertion sequence) and all
//! randomness comes from one seeded RNG, so a run is a pure function of
//! its inputs.

use crate::health::{Counter, Counters};
use crate::metrics::Metrics;
use crate::network::{NetConfig, Network, NodeId};
use crate::time::SimTime;
use crate::trace::{CostKind, SpanEdge, TraceEvent, TraceMeta, TracePhase, TraceSink};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::any::Any;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// A participant in the simulation.
///
/// `M` is the message type exchanged on the simulated network; an
/// experiment typically uses one enum covering all protocols involved.
pub trait Node<M>: 'static {
    /// Called once when the node is added to the simulation.
    fn on_start(&mut self, _ctx: &mut Context<'_, M>) {}

    /// Called when a message is delivered. `wire_bytes` is the payload size
    /// used for network accounting (handlers typically charge a receive
    /// cost proportional to it).
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: NodeId, msg: M, wire_bytes: usize);

    /// Called when a timer set via [`Context::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Context<'_, M>, _token: u64) {}

    /// Downcast support so experiments can inspect concrete node state.
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// A handle to a pending timer, used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

enum EventKind<M> {
    Start,
    Deliver {
        from: NodeId,
        msg: M,
        wire_bytes: usize,
    },
    Timer {
        token: u64,
        id: TimerId,
    },
}

struct QueuedEvent<M> {
    at: SimTime,
    /// When the event first entered the queue (deferrals preserve this so
    /// queue-limit checks measure total waiting time).
    born: SimTime,
    seq: u64,
    dst: NodeId,
    kind: EventKind<M>,
}

impl<M> PartialEq for QueuedEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for QueuedEvent<M> {}
impl<M> PartialOrd for QueuedEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for QueuedEvent<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (time, seq) pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

struct Kernel<M> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<QueuedEvent<M>>,
    cpu_free: Vec<SimTime>,
    /// Per-node bound on how long a delivery may wait for the CPU before
    /// being dropped (models a finite UDP socket buffer). Timers are never
    /// dropped.
    cpu_queue_limit: Vec<u64>,
    net: Network,
    rng: StdRng,
    metrics: Metrics,
    trace: TraceSink,
    health: Counters,
    cancelled: HashSet<u64>,
    next_timer: u64,
    stopped: bool,
    events_processed: u64,
}

impl<M> Kernel<M> {
    fn push(&mut self, at: SimTime, dst: NodeId, kind: EventKind<M>) {
        self.push_born(at, at, dst, kind);
    }

    fn push_born(&mut self, at: SimTime, born: SimTime, dst: NodeId, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(QueuedEvent {
            at,
            born,
            seq,
            dst,
            kind,
        });
    }

    /// Enqueues a delivery that the network accepted at `at`, plus an
    /// extra copy when the fault configuration duplicates the frame.
    fn deliver_with_duplicates(
        &mut self,
        slot: crate::network::TxSlot,
        src: NodeId,
        dst: NodeId,
        at: SimTime,
        msg: M,
        wire_bytes: usize,
    ) where
        M: Clone,
    {
        if let Some(at2) = self.net.maybe_duplicate(slot, src, dst, &mut self.rng) {
            self.metrics.incr("net.duplicated");
            self.push(
                at2,
                dst,
                EventKind::Deliver {
                    from: src,
                    msg: msg.clone(),
                    wire_bytes,
                },
            );
        }
        self.push(
            at,
            dst,
            EventKind::Deliver {
                from: src,
                msg,
                wire_bytes,
            },
        );
    }
}

/// The world as seen by a node's event handler.
pub struct Context<'a, M> {
    kernel: &'a mut Kernel<M>,
    id: NodeId,
    cpu_used: u64,
}

impl<M> Context<'_, M> {
    /// Current simulated time (start of this handler's execution).
    pub fn now(&self) -> SimTime {
        self.kernel.now
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Charges `ns` nanoseconds of CPU time. Subsequent sends depart after
    /// the work charged so far, and the node stays busy (deferring its
    /// later events) until all charged work completes.
    pub fn charge(&mut self, ns: u64) {
        self.cpu_used += ns;
    }

    /// CPU charged so far in this handler.
    pub fn cpu_used(&self) -> u64 {
        self.cpu_used
    }

    /// Sends `msg` (`payload_bytes` on the wire) to `dst`. Dropped packets
    /// are counted in the metrics under `net.dropped`.
    pub fn send(&mut self, dst: NodeId, msg: M, payload_bytes: usize)
    where
        M: Clone,
    {
        let depart = self.kernel.now.after(self.cpu_used);
        if dst == self.id {
            // Loopback bypasses the NIC (and fault injection).
            let at = depart.after(1_000);
            self.kernel.push(
                at,
                dst,
                EventKind::Deliver {
                    from: self.id,
                    msg,
                    wire_bytes: payload_bytes,
                },
            );
            return;
        }
        let slot = self.kernel.net.transmit(depart, self.id, payload_bytes);
        match self
            .kernel
            .net
            .receive(slot, self.id, dst, &mut self.kernel.rng)
        {
            Ok(at) => {
                self.kernel
                    .deliver_with_duplicates(slot, self.id, dst, at, msg, payload_bytes);
            }
            Err(_) => {
                self.kernel.metrics.incr("net.dropped");
                self.kernel.metrics.incr(format!("net.dropped.dst{dst}"));
            }
        }
    }

    /// Hardware multicast: the sender's link is charged once; each
    /// destination's receive link is charged individually.
    pub fn multicast(&mut self, dsts: &[NodeId], msg: M, payload_bytes: usize)
    where
        M: Clone,
    {
        let depart = self.kernel.now.after(self.cpu_used);
        let slot = self.kernel.net.transmit(depart, self.id, payload_bytes);
        for &dst in dsts {
            if dst == self.id {
                let at = depart.after(1_000);
                self.kernel.push(
                    at,
                    dst,
                    EventKind::Deliver {
                        from: self.id,
                        msg: msg.clone(),
                        wire_bytes: payload_bytes,
                    },
                );
                continue;
            }
            match self
                .kernel
                .net
                .receive(slot, self.id, dst, &mut self.kernel.rng)
            {
                Ok(at) => {
                    self.kernel.deliver_with_duplicates(
                        slot,
                        self.id,
                        dst,
                        at,
                        msg.clone(),
                        payload_bytes,
                    );
                }
                Err(_) => {
                    self.kernel.metrics.incr("net.dropped");
                    self.kernel.metrics.incr(format!("net.dropped.dst{dst}"));
                }
            }
        }
    }

    /// Schedules `on_timer(token)` after `delay_ns` (measured from the end
    /// of the work charged so far).
    pub fn set_timer(&mut self, delay_ns: u64, token: u64) -> TimerId {
        let id = TimerId(self.kernel.next_timer);
        self.kernel.next_timer += 1;
        let at = self.kernel.now.after(self.cpu_used).after(delay_ns);
        self.kernel
            .push(at, self.id, EventKind::Timer { token, id });
        id
    }

    /// Cancels a pending timer. Cancelling an already-fired timer is a
    /// no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.kernel.cancelled.insert(id.0);
    }

    /// The simulation's RNG (all randomness must come from here).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.kernel.rng
    }

    /// The shared metrics registry.
    pub fn metrics(&mut self) -> &mut Metrics {
        &mut self.kernel.metrics
    }

    /// Records one logical send of a message with wire tag `tag` in the
    /// health counter registry (a multicast counts once).
    pub fn count_sent(&mut self, tag: u8) {
        self.kernel.health.count_sent(self.id, tag);
    }

    /// Records one delivery of a message with wire tag `tag` in the
    /// health counter registry.
    pub fn count_received(&mut self, tag: u8) {
        self.kernel.health.count_received(self.id, tag);
    }

    /// Bumps a protocol event counter for this node.
    pub fn count(&mut self, counter: Counter) {
        self.kernel.health.count(self.id, counter);
    }

    /// Bumps a protocol event counter for this node by `delta`.
    pub fn count_add(&mut self, counter: Counter, delta: u64) {
        self.kernel.health.count_add(self.id, counter, delta);
    }

    /// Whether trace-event recording is enabled (cheap; lets emitters
    /// skip building metadata when tracing is off).
    pub fn trace_enabled(&self) -> bool {
        self.kernel.trace.enabled()
    }

    /// Emits a trace event stamped at the end of the work charged so far
    /// (`now + cpu_used`) — the simulated instant the edge takes effect,
    /// and monotone per node because each node is a serial processor.
    pub fn trace(&mut self, edge: SpanEdge, phase: TracePhase, meta: TraceMeta) {
        if self.kernel.trace.enabled() {
            let at_ns = self.kernel.now.after(self.cpu_used).nanos();
            self.emit(at_ns, edge, phase, meta);
        }
    }

    /// Emits a trace event stamped at the handler's start time (`now`),
    /// matching latency measurements taken with [`Context::now`].
    pub fn trace_now(&mut self, edge: SpanEdge, phase: TracePhase, meta: TraceMeta) {
        if self.kernel.trace.enabled() {
            let at_ns = self.kernel.now.nanos();
            self.emit(at_ns, edge, phase, meta);
        }
    }

    fn emit(&mut self, at_ns: u64, edge: SpanEdge, phase: TracePhase, meta: TraceMeta) {
        self.kernel.trace.record(TraceEvent {
            at_ns,
            node: self.id,
            edge,
            phase,
            meta,
        });
    }

    /// Charges `ns` nanoseconds of CPU time attributed to `kind` in the
    /// trace sink's per-node cost accounting.
    pub fn charge_kind(&mut self, kind: CostKind, ns: u64) {
        self.cpu_used += ns;
        self.kernel.trace.record_cpu(self.id, kind, ns);
    }

    /// Requests that the run loop stop after this handler returns.
    pub fn stop(&mut self) {
        self.kernel.stopped = true;
    }
}

/// The simulation: a set of nodes, a network, a clock, and an event queue.
///
/// # Example
///
/// ```
/// use bft_sim::{Context, NetConfig, Node, NodeId, Simulation};
///
/// struct Echo;
/// impl Node<u32> for Echo {
///     fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: NodeId, msg: u32, _: usize) {
///         if msg < 3 {
///             ctx.send(from, msg + 1, 8);
///         }
///     }
///     fn as_any(&self) -> &dyn std::any::Any { self }
///     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
/// }
///
/// let mut sim = Simulation::new(42, NetConfig::LOSSLESS_100MBPS);
/// let a = sim.add_node(Box::new(Echo));
/// let b = sim.add_node(Box::new(Echo));
/// sim.inject(a, b, 0, 8);
/// sim.run_until_idle(1_000);
/// assert!(sim.now().nanos() > 0);
/// ```
pub struct Simulation<M> {
    nodes: Vec<Option<Box<dyn Node<M>>>>,
    kernel: Kernel<M>,
}

impl<M: 'static> Simulation<M> {
    /// Creates a simulation with the given RNG seed and network model.
    pub fn new(seed: u64, net: NetConfig) -> Simulation<M> {
        Simulation {
            nodes: Vec::new(),
            kernel: Kernel {
                now: SimTime::ZERO,
                seq: 0,
                queue: BinaryHeap::new(),
                cpu_free: Vec::new(),
                cpu_queue_limit: Vec::new(),
                net: Network::new(net),
                rng: StdRng::seed_from_u64(seed),
                metrics: Metrics::new(),
                trace: TraceSink::new(),
                health: Counters::new(),
                cancelled: HashSet::new(),
                next_timer: 0,
                stopped: false,
                events_processed: 0,
            },
        }
    }

    /// Adds a node and returns its id. Its `on_start` runs at the current
    /// simulated time.
    pub fn add_node(&mut self, node: Box<dyn Node<M>>) -> NodeId {
        let id = self.nodes.len() as NodeId;
        self.nodes.push(Some(node));
        self.kernel.net.ensure_host(id);
        self.kernel.cpu_free.push(SimTime::ZERO);
        self.kernel.cpu_queue_limit.push(u64::MAX);
        self.kernel.push(self.kernel.now, id, EventKind::Start);
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.kernel.now
    }

    /// Shared metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.kernel.metrics
    }

    /// Mutable access to the metrics (e.g. to reset between warmup and
    /// measurement phases).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.kernel.metrics
    }

    /// The trace sink (events and CPU-cost attribution).
    pub fn trace(&self) -> &TraceSink {
        &self.kernel.trace
    }

    /// Mutable trace-sink access (to enable recording via
    /// [`TraceSink::set_capacity`] or clear between phases).
    pub fn trace_mut(&mut self) -> &mut TraceSink {
        &mut self.kernel.trace
    }

    /// The health counter registry (messages by tag, protocol events).
    pub fn health(&self) -> &Counters {
        &self.kernel.health
    }

    /// Mutable health-counter access (e.g. to reset between warmup and
    /// measurement phases).
    pub fn health_mut(&mut self) -> &mut Counters {
        &mut self.kernel.health
    }

    /// The network, for fault injection.
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.kernel.net
    }

    /// Read-only network access (stats).
    pub fn network(&self) -> &Network {
        &self.kernel.net
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.kernel.events_processed
    }

    /// The time of the earliest queued event, if any. Cancelled timers may
    /// still appear here (they are skipped when stepped over), so the next
    /// [`Simulation::step`] may process a later event — but never an
    /// earlier one. Used by drivers that interleave outside interventions
    /// (e.g. chaos fault plans) with stepping.
    pub fn next_event_at(&self) -> Option<SimTime> {
        self.kernel.queue.peek().map(|ev| ev.at)
    }

    /// Places `node` on the same machine as `host`, sharing its network
    /// links (the paper's 200 client processes ran on 5 machines).
    pub fn assign_host(&mut self, node: NodeId, host: NodeId) {
        self.kernel.net.assign_host(node, host);
    }

    /// Bounds how long deliveries to `node` may queue behind its busy CPU
    /// before being dropped — a finite UDP socket buffer, expressed in
    /// time. Default: unlimited. Dropped deliveries count under the
    /// `cpu.dropped` metric; timers are never dropped.
    pub fn set_cpu_queue_limit(&mut self, node: NodeId, limit_ns: u64) {
        self.kernel.cpu_queue_limit[node as usize] = limit_ns;
    }

    /// Injects a message from outside the simulation (delivered after a
    /// fixed 1 µs, bypassing the network model). Test plumbing.
    pub fn inject(&mut self, dst: NodeId, from: NodeId, msg: M, wire_bytes: usize) {
        let at = self.kernel.now.after(1_000);
        self.kernel.push(
            at,
            dst,
            EventKind::Deliver {
                from,
                msg,
                wire_bytes,
            },
        );
    }

    /// Borrows a node downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range or the type does not match.
    pub fn node_as<T: 'static>(&self, id: NodeId) -> &T {
        self.nodes[id as usize]
            .as_ref()
            .expect("node is not mid-dispatch")
            .as_any()
            .downcast_ref::<T>()
            .expect("node type mismatch")
    }

    /// Mutably borrows a node downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range or the type does not match.
    pub fn node_as_mut<T: 'static>(&mut self, id: NodeId) -> &mut T {
        self.nodes[id as usize]
            .as_mut()
            .expect("node is not mid-dispatch")
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("node type mismatch")
    }

    /// Processes one event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        loop {
            let Some(ev) = self.kernel.queue.pop() else {
                return false;
            };
            // Skip cancelled timers.
            if let EventKind::Timer { id, .. } = &ev.kind {
                if self.kernel.cancelled.remove(&id.0) {
                    continue;
                }
            }
            // Defer events for a busy node until its CPU frees up. A
            // delivery that would wait longer than the node's input-queue
            // limit overflows the (modeled) socket buffer and is dropped.
            let busy_until = self.kernel.cpu_free[ev.dst as usize];
            if busy_until > ev.at {
                let wait = busy_until.since(ev.born);
                if wait > self.kernel.cpu_queue_limit[ev.dst as usize]
                    && matches!(ev.kind, EventKind::Deliver { .. })
                {
                    self.kernel.metrics.incr("cpu.dropped");
                    continue;
                }
                self.kernel.push_born(busy_until, ev.born, ev.dst, ev.kind);
                continue;
            }
            debug_assert!(ev.at >= self.kernel.now, "time went backwards");
            self.kernel.now = ev.at;
            self.kernel.events_processed += 1;
            let mut node = self.nodes[ev.dst as usize]
                .take()
                .expect("node present outside dispatch");
            let mut ctx = Context {
                kernel: &mut self.kernel,
                id: ev.dst,
                cpu_used: 0,
            };
            match ev.kind {
                EventKind::Start => node.on_start(&mut ctx),
                EventKind::Deliver {
                    from,
                    msg,
                    wire_bytes,
                } => node.on_message(&mut ctx, from, msg, wire_bytes),
                EventKind::Timer { token, .. } => node.on_timer(&mut ctx, token),
            }
            let used = ctx.cpu_used;
            self.kernel.cpu_free[ev.dst as usize] = self.kernel.now.after(used);
            self.nodes[ev.dst as usize] = Some(node);
            return true;
        }
    }

    /// Runs until simulated time `t` (events at exactly `t` included), the
    /// queue empties, or a node calls [`Context::stop`]. The clock ends at
    /// `t` unless stopped early.
    pub fn run_until(&mut self, t: SimTime) {
        self.kernel.stopped = false;
        while !self.kernel.stopped {
            match self.kernel.queue.peek() {
                Some(ev) if ev.at <= t => {
                    self.step();
                }
                _ => break,
            }
        }
        if !self.kernel.stopped {
            self.kernel.now = self.kernel.now.max(t);
        }
    }

    /// Runs for `delta_ns` of simulated time from now.
    pub fn run_for(&mut self, delta_ns: u64) {
        let t = self.kernel.now.after(delta_ns);
        self.run_until(t);
    }

    /// Runs until no events remain or `max_events` have been processed.
    /// Returns `true` if the queue drained.
    pub fn run_until_idle(&mut self, max_events: u64) -> bool {
        self.kernel.stopped = false;
        for _ in 0..max_events {
            if self.kernel.stopped || !self.step() {
                return true;
            }
        }
        self.kernel.queue.is_empty()
    }
}

impl<M> std::fmt::Debug for Simulation<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("nodes", &self.nodes.len())
            .field("now", &self.kernel.now)
            .field("queued", &self.kernel.queue.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::dur;

    /// Counts everything it sees; replies to "ping" tokens.
    #[derive(Default)]
    struct Probe {
        started: bool,
        messages: Vec<(NodeId, u32)>,
        timers: Vec<u64>,
        cpu_per_event: u64,
    }

    impl Node<u32> for Probe {
        fn on_start(&mut self, _ctx: &mut Context<'_, u32>) {
            self.started = true;
        }
        fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: NodeId, msg: u32, _: usize) {
            ctx.charge(self.cpu_per_event);
            self.messages.push((from, msg));
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_, u32>, token: u64) {
            self.timers.push(token);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn sim() -> Simulation<u32> {
        Simulation::new(7, NetConfig::LOSSLESS_100MBPS)
    }

    #[test]
    fn on_start_runs() {
        let mut s = sim();
        let a = s.add_node(Box::<Probe>::default());
        s.run_until_idle(10);
        assert!(s.node_as::<Probe>(a).started);
    }

    #[test]
    fn message_delivery_and_ordering() {
        let mut s = sim();
        let a = s.add_node(Box::<Probe>::default());
        let b = s.add_node(Box::<Probe>::default());
        s.inject(b, a, 1, 8);
        s.inject(b, a, 2, 8);
        s.run_until_idle(100);
        assert_eq!(s.node_as::<Probe>(b).messages, vec![(a, 1), (a, 2)]);
    }

    #[test]
    fn busy_cpu_defers_later_events_in_order() {
        let mut s = sim();
        let a = s.add_node(Box::new(Probe {
            cpu_per_event: dur::millis(10),
            ..Probe::default()
        }));
        for i in 0..5 {
            s.inject(a, 99, i, 8);
        }
        s.run_until_idle(1_000);
        let msgs: Vec<u32> = s
            .node_as::<Probe>(a)
            .messages
            .iter()
            .map(|&(_, m)| m)
            .collect();
        assert_eq!(msgs, vec![0, 1, 2, 3, 4], "FIFO preserved under backlog");
        // 5 events × 10 ms serial CPU: the last starts no earlier than 40 ms.
        assert!(s.now().nanos() >= dur::millis(40));
    }

    #[test]
    fn timers_fire_and_cancel() {
        struct TimerNode {
            fired: Vec<u64>,
        }
        impl Node<u32> for TimerNode {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.set_timer(dur::millis(1), 1);
                let doomed = ctx.set_timer(dur::millis(2), 2);
                ctx.set_timer(dur::millis(3), 3);
                ctx.cancel_timer(doomed);
            }
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: NodeId, _: u32, _: usize) {}
            fn on_timer(&mut self, _ctx: &mut Context<'_, u32>, token: u64) {
                self.fired.push(token);
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut s: Simulation<u32> = sim();
        let a = s.add_node(Box::new(TimerNode { fired: vec![] }));
        s.run_until_idle(100);
        assert_eq!(s.node_as::<TimerNode>(a).fired, vec![1, 3]);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut s = sim();
        let a = s.add_node(Box::<Probe>::default());
        s.inject(a, 9, 1, 8);
        s.run_until(SimTime(500));
        // Injection arrives at 1 µs > 500 ns, so nothing is delivered yet.
        assert!(s.node_as::<Probe>(a).messages.is_empty());
        assert_eq!(s.now(), SimTime(500));
        s.run_until(SimTime(2_000));
        assert_eq!(s.node_as::<Probe>(a).messages.len(), 1);
    }

    #[test]
    fn multicast_reaches_all() {
        struct Caster;
        impl Node<u32> for Caster {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.multicast(&[1, 2, 3], 42, 100);
            }
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: NodeId, _: u32, _: usize) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut s: Simulation<u32> = sim();
        s.add_node(Box::new(Caster));
        let nodes: Vec<NodeId> = (0..3)
            .map(|_| s.add_node(Box::<Probe>::default()))
            .collect();
        s.run_until_idle(100);
        for &n in &nodes {
            assert_eq!(s.node_as::<Probe>(n).messages, vec![(0, 42)]);
        }
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut s = sim();
            let a = s.add_node(Box::<Probe>::default());
            let b = s.add_node(Box::<Probe>::default());
            for i in 0..20 {
                s.inject(if i % 2 == 0 { a } else { b }, 99, i, 64);
            }
            s.run_until_idle(1_000);
            (
                s.now(),
                s.node_as::<Probe>(a).messages.clone(),
                s.node_as::<Probe>(b).messages.clone(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn stop_halts_run() {
        struct Stopper;
        impl Node<u32> for Stopper {
            fn on_message(&mut self, ctx: &mut Context<'_, u32>, _: NodeId, _: u32, _: usize) {
                ctx.stop();
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut s: Simulation<u32> = sim();
        let a = s.add_node(Box::new(Stopper));
        s.inject(a, 0, 1, 8);
        s.inject(a, 0, 2, 8);
        s.run_until(SimTime(dur::secs(1)));
        // The second message remains queued and the clock did not jump to 1 s.
        assert!(s.now().nanos() < dur::secs(1));
    }

    #[test]
    fn send_to_self_loops_back() {
        struct SelfSender {
            got: bool,
        }
        impl Node<u32> for SelfSender {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                let me = ctx.id();
                ctx.send(me, 7, 8);
            }
            fn on_message(&mut self, _: &mut Context<'_, u32>, from: NodeId, msg: u32, _: usize) {
                assert_eq!(msg, 7);
                assert_eq!(from, 0);
                self.got = true;
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut s: Simulation<u32> = sim();
        let a = s.add_node(Box::new(SelfSender { got: false }));
        s.run_until_idle(10);
        assert!(s.node_as::<SelfSender>(a).got);
    }

    #[test]
    fn cpu_queue_limit_drops_backlogged_deliveries() {
        let mut s = sim();
        let a = s.add_node(Box::new(Probe {
            cpu_per_event: dur::millis(10),
            ..Probe::default()
        }));
        // 10 ms of CPU per event with a 15 ms queue bound: the first two
        // deliveries fit (waits of 0 and ~10 ms); later ones overflow.
        s.set_cpu_queue_limit(a, dur::millis(15));
        for i in 0..6 {
            s.inject(a, 99, i, 8);
        }
        s.run_until_idle(1_000);
        let delivered = s.node_as::<Probe>(a).messages.len();
        assert!(delivered < 6, "some deliveries must drop");
        assert_eq!(s.metrics().counter("cpu.dropped"), 6 - delivered as u64);
        // Timers are never dropped.
        let b = s.add_node(Box::new(Probe {
            cpu_per_event: dur::millis(10),
            ..Probe::default()
        }));
        s.set_cpu_queue_limit(b, 0);
        s.run_until_idle(1_000);
        assert!(s.node_as::<Probe>(b).started, "start events survive");
    }

    #[test]
    fn partitioned_messages_count_as_dropped() {
        let mut s = sim();
        let a = s.add_node(Box::<Probe>::default());
        let b = s.add_node(Box::<Probe>::default());
        s.network_mut().partition(a, b);
        struct Sender(NodeId);
        impl Node<u32> for Sender {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.send(self.0, 1, 8);
            }
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: NodeId, _: u32, _: usize) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        // a sends to b via a third node's start hook — simpler: replace a.
        let c = s.add_node(Box::new(Sender(b)));
        s.network_mut().partition(c, b);
        s.run_until_idle(100);
        assert!(s.node_as::<Probe>(b).messages.is_empty());
        assert_eq!(s.metrics().counter("net.dropped"), 1);
    }
}
