#![warn(missing_docs)]

//! Deterministic discrete-event simulation of the paper's testbed.
//!
//! The DSN 2001 evaluation ran on Dell Precision 410 workstations
//! (600 MHz Pentium III) connected by 100 Mb/s switched Ethernet. This
//! crate is that testbed as a model:
//!
//! - [`engine`]: the event loop, [`Node`] trait and [`Context`] API —
//!   nodes are serial processors whose handlers charge CPU time, so CPU
//!   saturation (the bottleneck in half the paper's figures) is emergent;
//! - [`network`]: full-duplex links with finite bandwidth, a switch with
//!   hardware multicast, frame overheads/fragmentation, finite receive
//!   buffers, and fault injection (loss, partitions, delay);
//! - [`chaos`]: deterministic, seed-replayable fault schedules
//!   ([`FaultPlan`]) — timed partitions/heals, loss, delay spikes,
//!   reordering jitter, duplication, crashes/restarts and Byzantine
//!   mutations — with a generator and a shrinking minimizer for fuzzing;
//! - [`cost`]: the CPU cost model (MD5, UMAC, UDP stack, RSA) calibrated
//!   to the paper's hardware;
//! - [`metrics`]: counters and log-bucketed latency histograms the
//!   experiment harness reads;
//! - [`health`]: observer-only cluster health — per-replica
//!   [`HealthSnapshot`]s diffed into a [`HealthReport`], and the
//!   always-on [`Counters`] registry (messages by wire tag, protocol
//!   events) threaded through [`Context`];
//! - [`trace`]: structured span tracing — bounded per-node event rings,
//!   a per-request latency-breakdown assembler, a Chrome-trace exporter,
//!   and the chaos flight recorder;
//! - [`time`]: the nanosecond simulated clock.
//!
//! Everything is deterministic: a run is a pure function of the seed, the
//! configuration, and the node implementations.

pub mod chaos;
pub mod cost;
pub mod engine;
pub mod health;
pub mod metrics;
pub mod network;
pub mod time;
pub mod trace;

pub use chaos::{
    ByzMode, ChaosConfig, ClientFault, Fault, FaultEvent, FaultPlan, NetFault, NodeFault,
};
pub use cost::CostModel;
pub use engine::{Context, Node, Simulation, TimerId};
pub use health::{Counter, Counters, HealthReport, HealthSnapshot, NodeCounters, Role};
pub use metrics::{Histogram, Metrics, Summary};
pub use network::{DropReason, NetConfig, NetStats, Network, NodeId};
pub use time::{dur, SimTime};
pub use trace::{CostKind, SpanEdge, TraceEvent, TraceMeta, TracePhase, TraceSink};
