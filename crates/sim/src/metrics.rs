//! Measurement plumbing: counters and latency samples.
//!
//! Experiment drivers read these after a run to produce the paper's tables.
//! Everything is keyed by string series names so protocol code can record
//! without the harness pre-registering anything.

use std::collections::HashMap;

/// A set of named counters and sample series.
#[derive(Debug, Default, Clone)]
pub struct Metrics {
    counters: HashMap<String, u64>,
    samples: HashMap<String, Vec<u64>>,
}

impl Metrics {
    /// Creates an empty metrics registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Adds `delta` to the counter `name`.
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry_ref_or_insert(name) += delta;
    }

    /// Increments the counter `name` by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Reads a counter (zero if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Appends a sample (e.g. a latency in nanoseconds) to series `name`.
    pub fn record(&mut self, name: &str, value: u64) {
        if let Some(v) = self.samples.get_mut(name) {
            v.push(value);
        } else {
            self.samples.insert(name.to_owned(), vec![value]);
        }
    }

    /// Returns the samples of a series (empty if never written).
    pub fn series(&self, name: &str) -> &[u64] {
        self.samples.get(name).map_or(&[], |v| v.as_slice())
    }

    /// Summary statistics over a series.
    pub fn summary(&self, name: &str) -> Summary {
        Summary::of(self.series(name))
    }

    /// Removes all data, keeping allocations where possible.
    pub fn reset(&mut self) {
        self.counters.clear();
        self.samples.clear();
    }

    /// Iterates over counters in name order (stable output for reports).
    pub fn counters_sorted(&self) -> Vec<(&str, u64)> {
        let mut all: Vec<_> = self
            .counters
            .iter()
            .map(|(k, v)| (k.as_str(), *v))
            .collect();
        all.sort();
        all
    }
}

/// Helper trait: `entry` without allocating when the key exists.
trait EntryRef {
    fn entry_ref_or_insert(&mut self, name: &str) -> &mut u64;
}

impl EntryRef for HashMap<String, u64> {
    fn entry_ref_or_insert(&mut self, name: &str) -> &mut u64 {
        if !self.contains_key(name) {
            self.insert(name.to_owned(), 0);
        }
        self.get_mut(name).expect("just inserted")
    }
}

/// Summary statistics of a sample series.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Arithmetic mean (0.0 when empty).
    pub mean: f64,
    /// Median (0 when empty).
    pub p50: u64,
    /// 99th percentile (0 when empty).
    pub p99: u64,
}

impl Summary {
    /// Computes summary statistics of `samples`.
    pub fn of(samples: &[u64]) -> Summary {
        if samples.is_empty() {
            return Summary::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let count = sorted.len();
        let sum: u128 = sorted.iter().map(|&x| x as u128).sum();
        let pct = |p: f64| sorted[(((count - 1) as f64) * p).round() as usize];
        Summary {
            count,
            min: sorted[0],
            max: sorted[count - 1],
            mean: sum as f64 / count as f64,
            p50: pct(0.50),
            p99: pct(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters() {
        let mut m = Metrics::new();
        m.incr("ops");
        m.add("ops", 4);
        assert_eq!(m.counter("ops"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn series_and_summary() {
        let mut m = Metrics::new();
        for v in [10u64, 20, 30, 40, 50] {
            m.record("latency", v);
        }
        let s = m.summary("latency");
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 50);
        assert_eq!(s.p50, 30);
        assert!((s.mean - 30.0).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let m = Metrics::new();
        assert_eq!(m.summary("none"), Summary::default());
        assert!(m.series("none").is_empty());
    }

    #[test]
    fn reset_clears() {
        let mut m = Metrics::new();
        m.incr("a");
        m.record("b", 1);
        m.reset();
        assert_eq!(m.counter("a"), 0);
        assert!(m.series("b").is_empty());
    }

    #[test]
    fn counters_sorted_is_stable() {
        let mut m = Metrics::new();
        m.incr("zeta");
        m.incr("alpha");
        let names: Vec<&str> = m.counters_sorted().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn p99_of_100_samples() {
        let s = Summary::of(&(1..=100u64).collect::<Vec<_>>());
        assert_eq!(s.p99, 99);
        // Index round(99 · 0.5) = 50 → the 51st sample.
        assert_eq!(s.p50, 51);
    }
}
