//! Measurement plumbing: counters and log-bucketed latency histograms.
//!
//! Experiment drivers read these after a run to produce the paper's tables.
//! Everything is keyed by string series names so protocol code can record
//! without the harness pre-registering anything. Hot paths pass `&'static
//! str` names, which are stored as borrowed [`Cow`]s — recording into an
//! existing (or even a fresh) series never allocates a key.
//!
//! Sample series are [`Histogram`]s rather than raw `Vec<u64>` so that
//! multi-hour fuzz sweeps and million-op benchmark runs stay bounded in
//! memory: a histogram is at most ~8 KB regardless of how many samples it
//! absorbs, at the price of ~3% relative error above 64.

use std::borrow::Cow;
use std::collections::HashMap;

/// A set of named counters and sample histograms.
#[derive(Debug, Default, Clone)]
pub struct Metrics {
    counters: HashMap<Cow<'static, str>, u64>,
    samples: HashMap<Cow<'static, str>, Histogram>,
}

impl Metrics {
    /// Creates an empty metrics registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Adds `delta` to the counter `name`.
    pub fn add(&mut self, name: impl Into<Cow<'static, str>>, delta: u64) {
        *self.counters.entry(name.into()).or_insert(0) += delta;
    }

    /// Increments the counter `name` by one.
    pub fn incr(&mut self, name: impl Into<Cow<'static, str>>) {
        self.add(name, 1);
    }

    /// Reads a counter (zero if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records a sample (e.g. a latency in nanoseconds) into series `name`.
    pub fn record(&mut self, name: impl Into<Cow<'static, str>>, value: u64) {
        self.samples.entry(name.into()).or_default().record(value);
    }

    /// The histogram behind series `name`, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.samples.get(name)
    }

    /// Summary statistics over a series (zeroed if never written).
    pub fn summary(&self, name: &str) -> Summary {
        self.samples
            .get(name)
            .map_or_else(Summary::default, Histogram::summary)
    }

    /// Removes all data, keeping allocations where possible.
    pub fn reset(&mut self) {
        self.counters.clear();
        self.samples.clear();
    }

    /// Iterates over counters in name order (stable output for reports).
    pub fn counters_sorted(&self) -> Vec<(&str, u64)> {
        let mut all: Vec<_> = self
            .counters
            .iter()
            .map(|(k, v)| (k.as_ref(), *v))
            .collect();
        all.sort();
        all
    }
}

/// Sub-bucket precision: values ≥ [`LINEAR_BUCKETS`] land in one of
/// `2^SUB_BITS` sub-buckets per power of two, bounding relative error to
/// `2^-SUB_BITS` (≈ 3.1% hereunder, HDR-histogram style).
const SUB_BITS: u32 = 4;
/// Values below this are counted exactly, one bucket per value.
const LINEAR_BUCKETS: u64 = 64;
/// Smallest exponent handled by the logarithmic range (`2^6` = 64).
const MIN_EXP: u32 = 6;
/// Total bucket count: 64 exact + 16 per power of two for 2^6..2^63.
const BUCKETS: usize = LINEAR_BUCKETS as usize + (64 - MIN_EXP as usize) * (1 << SUB_BITS);

/// A log-bucketed histogram of `u64` samples with exact count/sum/min/max
/// and ≈3% worst-case relative error on percentiles above 64.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// The bucket index `value` falls into.
    pub fn bucket_index(value: u64) -> usize {
        if value < LINEAR_BUCKETS {
            return value as usize;
        }
        let exp = 63 - value.leading_zeros();
        let sub = (value >> (exp - SUB_BITS)) & ((1 << SUB_BITS) - 1);
        LINEAR_BUCKETS as usize + ((exp - MIN_EXP) as usize) * (1 << SUB_BITS) + sub as usize
    }

    /// The inclusive lower bound of bucket `idx`.
    pub fn bucket_lower(idx: usize) -> u64 {
        if idx < LINEAR_BUCKETS as usize {
            return idx as u64;
        }
        let log = idx - LINEAR_BUCKETS as usize;
        let exp = (log / (1 << SUB_BITS)) as u32 + MIN_EXP;
        let sub = (log % (1 << SUB_BITS)) as u64;
        (1u64 << exp) + (sub << (exp - SUB_BITS))
    }

    /// The width of bucket `idx` (its exclusive upper bound is
    /// `bucket_lower(idx) + bucket_width(idx)`).
    pub fn bucket_width(idx: usize) -> u64 {
        if idx < LINEAR_BUCKETS as usize {
            return 1;
        }
        let exp = ((idx - LINEAR_BUCKETS as usize) / (1 << SUB_BITS)) as u32 + MIN_EXP;
        1u64 << (exp - SUB_BITS)
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank percentile estimate: the midpoint of the bucket that
    /// holds the sample of rank `ceil(p · count)`, clamped to the exact
    /// observed `[min, max]` range.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let mid = Self::bucket_lower(idx) + Self::bucket_width(idx) / 2;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Summary statistics over the recorded samples.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count as usize,
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p99: self.percentile(0.99),
            p999: self.percentile(0.999),
        }
    }
}

/// Summary statistics of a sample series.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Arithmetic mean (0.0 when empty).
    pub mean: f64,
    /// Median (0 when empty).
    pub p50: u64,
    /// 90th percentile (0 when empty).
    pub p90: u64,
    /// 99th percentile (0 when empty).
    pub p99: u64,
    /// 99.9th percentile (0 when empty).
    pub p999: u64,
}

impl Summary {
    /// Computes exact summary statistics of `samples` using the
    /// nearest-rank method: the p-th percentile is the sample of rank
    /// `ceil(p · count)` (1-based) in sorted order.
    pub fn of(samples: &[u64]) -> Summary {
        if samples.is_empty() {
            return Summary::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let count = sorted.len();
        let sum: u128 = sorted.iter().map(|&x| x as u128).sum();
        let pct = |p: f64| {
            let rank = ((p * count as f64).ceil() as usize).clamp(1, count);
            sorted[rank - 1]
        };
        Summary {
            count,
            min: sorted[0],
            max: sorted[count - 1],
            mean: sum as f64 / count as f64,
            p50: pct(0.50),
            p90: pct(0.90),
            p99: pct(0.99),
            p999: pct(0.999),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counters() {
        let mut m = Metrics::new();
        m.incr("ops");
        m.add("ops", 4);
        assert_eq!(m.counter("ops"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn series_and_summary() {
        let mut m = Metrics::new();
        for v in [10u64, 20, 30, 40, 50] {
            m.record("latency", v);
        }
        let s = m.summary("latency");
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 50);
        assert_eq!(s.p50, 30);
        assert!((s.mean - 30.0).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let m = Metrics::new();
        assert_eq!(m.summary("none"), Summary::default());
        assert!(m.histogram("none").is_none());
    }

    #[test]
    fn reset_clears() {
        let mut m = Metrics::new();
        m.incr("a");
        m.record("b", 1);
        m.reset();
        assert_eq!(m.counter("a"), 0);
        assert!(m.histogram("b").is_none());
    }

    #[test]
    fn counters_sorted_is_stable() {
        let mut m = Metrics::new();
        m.incr("zeta");
        m.incr("alpha");
        let names: Vec<&str> = m.counters_sorted().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn p99_of_100_samples() {
        let s = Summary::of(&(1..=100u64).collect::<Vec<_>>());
        // Nearest rank: p99 is the sample of rank ceil(0.99 · 100) = 99,
        // p50 the sample of rank ceil(0.50 · 100) = 50.
        assert_eq!(s.p99, 99);
        assert_eq!(s.p50, 50);
        assert_eq!(s.p90, 90);
        assert_eq!(s.p999, 100);
    }

    #[test]
    fn histogram_is_exact_below_64() {
        let mut h = Histogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        for p in [0.25f64, 0.5, 0.75, 1.0] {
            let rank = (p * 64.0).ceil() as u64;
            assert_eq!(h.percentile(p), rank - 1, "p{p}");
        }
        assert_eq!(h.count(), 64);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 63);
    }

    #[test]
    fn histogram_relative_error_is_bounded() {
        let mut h = Histogram::new();
        for i in 1..=10_000u64 {
            h.record(i * 977); // spread across many log buckets
        }
        for p in [0.5, 0.9, 0.99, 0.999] {
            let exact = (p * 10_000f64).ceil() as u64 * 977;
            let est = h.percentile(p);
            let err = (est as f64 - exact as f64).abs() / exact as f64;
            assert!(err < 0.04, "p{p}: est {est} vs exact {exact} (err {err})");
        }
    }

    #[test]
    fn histogram_matches_metrics_summary() {
        let mut m = Metrics::new();
        for v in [5u64, 5, 7, 100, 1000] {
            m.record("x", v);
        }
        let s = m.summary("x");
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 5);
        assert_eq!(s.max, 1000);
        assert_eq!(s.p50, 7);
    }

    proptest! {
        /// Every recorded value falls inside the bounds of the bucket it
        /// is assigned to, and bucket bounds tile the u64 line in order.
        #[test]
        fn bucket_round_trip(v in any::<u64>()) {
            let idx = Histogram::bucket_index(v);
            let lo = Histogram::bucket_lower(idx);
            let w = Histogram::bucket_width(idx);
            prop_assert!(lo <= v, "lower {lo} > value {v}");
            prop_assert!(v - lo < w, "value {v} beyond bucket [{lo}, {lo}+{w})");
            if idx + 1 < BUCKETS {
                prop_assert_eq!(Histogram::bucket_lower(idx + 1), lo.saturating_add(w));
            }
        }

        /// Percentile estimates stay within the histogram's error bound
        /// of the exact nearest-rank answer.
        #[test]
        fn percentile_error_bound(mut vals in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut h = Histogram::new();
            for &v in &vals {
                h.record(v);
            }
            vals.sort_unstable();
            for &(p, _) in &[(0.5, ()), (0.99, ())] {
                let rank = ((p * vals.len() as f64).ceil() as usize).clamp(1, vals.len());
                let exact = vals[rank - 1];
                let est = h.percentile(p);
                // Bucket width is < 1/16 of the value for log buckets and
                // 1 below 64; allow one bucket of slack either way.
                let slack = (exact / 16).max(1);
                prop_assert!(est >= exact.saturating_sub(slack) && est <= exact + slack,
                    "p{}: est {} vs exact {}", p, est, exact);
            }
        }
    }
}
