//! Property-based tests for the crypto substrate.

use bft_crypto::bignum::UBig;
use bft_crypto::md5::{digest, Md5};
use bft_crypto::umac::MacKey;
use proptest::prelude::*;

proptest! {
    /// Incremental MD5 must equal one-shot MD5 for any chunking.
    #[test]
    fn md5_incremental_matches_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        splits in proptest::collection::vec(0usize..2048, 0..8),
    ) {
        let mut cuts: Vec<usize> = splits.into_iter().map(|s| s % (data.len() + 1)).collect();
        cuts.sort_unstable();
        let mut ctx = Md5::new();
        let mut prev = 0;
        for &cut in &cuts {
            ctx.update(&data[prev..cut]);
            prev = cut;
        }
        ctx.update(&data[prev..]);
        prop_assert_eq!(ctx.finish(), digest(&data));
    }

    /// Distinct inputs virtually never collide (sanity, not a proof).
    #[test]
    fn md5_distinguishes_appended_byte(data in proptest::collection::vec(any::<u8>(), 0..512), extra in any::<u8>()) {
        let mut longer = data.clone();
        longer.push(extra);
        prop_assert_ne!(digest(&data), digest(&longer));
    }

    /// A MAC verifies for the exact message and fails for any bit flip.
    #[test]
    fn umac_detects_any_single_bit_flip(
        key in any::<[u8; 16]>(),
        msg in proptest::collection::vec(any::<u8>(), 1..512),
        nonce in any::<u64>(),
        flip_byte in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let k = MacKey::from_bytes(key);
        let mac = k.mac(&msg, nonce);
        prop_assert!(k.verify(&msg, nonce, &mac.tag));
        let mut tampered = msg.clone();
        let i = flip_byte % tampered.len();
        tampered[i] ^= 1 << flip_bit;
        prop_assert!(!k.verify(&tampered, nonce, &mac.tag));
    }

    /// MACs under different keys do not verify.
    #[test]
    fn umac_rejects_other_keys(
        k1 in any::<[u8; 16]>(),
        k2 in any::<[u8; 16]>(),
        msg in proptest::collection::vec(any::<u8>(), 0..256),
        nonce in any::<u64>(),
    ) {
        prop_assume!(k1 != k2);
        let mac = MacKey::from_bytes(k1).mac(&msg, nonce);
        prop_assert!(!MacKey::from_bytes(k2).verify(&msg, nonce, &mac.tag));
    }

    /// Bignum arithmetic agrees with u128 where both are defined.
    #[test]
    fn bignum_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let (ba, bb) = (UBig::from(a), UBig::from(b));
        // add
        let sum = a as u128 + b as u128;
        prop_assert_eq!(ba.add(&bb).to_bytes_be(), u128_bytes(sum));
        // mul
        let prod = a as u128 * b as u128;
        prop_assert_eq!(ba.mul(&bb).to_bytes_be(), u128_bytes(prod));
        // div/rem
        if let (Some(q_ref), Some(r_ref)) = (a.checked_div(b), a.checked_rem(b)) {
            let (q, r) = ba.div_rem(&bb);
            prop_assert_eq!(q.to_bytes_be(), u128_bytes(q_ref as u128));
            prop_assert_eq!(r.to_bytes_be(), u128_bytes(r_ref as u128));
        }
        // sub (ordered)
        if a >= b {
            prop_assert_eq!(ba.sub(&bb).to_bytes_be(), u128_bytes((a - b) as u128));
        }
    }

    /// Byte-string round trip is the identity (modulo leading zeros).
    #[test]
    fn bignum_bytes_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let n = UBig::from_bytes_be(&bytes);
        let out = n.to_bytes_be();
        let mut trimmed = bytes.clone();
        while trimmed.first() == Some(&0) {
            trimmed.remove(0);
        }
        prop_assert_eq!(out, trimmed);
    }

    /// Shifts are inverses and match u128 semantics.
    #[test]
    fn bignum_shifts(a in any::<u64>(), shift in 0usize..48) {
        let n = UBig::from(a);
        prop_assert_eq!(n.shl(shift).shr(shift).to_bytes_be(), n.to_bytes_be());
        let shifted = (a as u128) << shift;
        prop_assert_eq!(n.shl(shift).to_bytes_be(), u128_bytes(shifted));
    }

    /// mod_pow matches a naive implementation for small operands.
    #[test]
    fn bignum_mod_pow_matches_naive(base in 0u64..1000, exp in 0u64..40, modulus in 2u64..10_000) {
        let want = naive_mod_pow(base as u128, exp, modulus as u128);
        let got = UBig::from(base).mod_pow(&UBig::from(exp), &UBig::from(modulus));
        prop_assert_eq!(got.to_bytes_be(), u128_bytes(want));
    }
}

fn u128_bytes(v: u128) -> Vec<u8> {
    let bytes = v.to_be_bytes().to_vec();
    let mut out = bytes;
    while out.first() == Some(&0) {
        out.remove(0);
    }
    out
}

fn naive_mod_pow(mut base: u128, exp: u64, modulus: u128) -> u128 {
    let mut result = 1u128 % modulus;
    base %= modulus;
    for _ in 0..exp {
        result = result * base % modulus;
    }
    result
}
