//! The XTEA block cipher (Needham & Wheeler, 1997).
//!
//! UMAC needs a pseudo-random function to turn the universal-hash output
//! into a secure tag and to derive its internal key material. The original
//! UMAC specification uses AES; we use XTEA, a compact 64-bit block cipher
//! with a 128-bit key, which is more than adequate for the role (the pad
//! generator only needs PRF security against the computationally bounded
//! adversary assumed in Section 2 of the paper).

/// Number of Feistel rounds; 32 is the value recommended by the designers.
const ROUNDS: u32 = 32;
const DELTA: u32 = 0x9e3779b9;

/// An XTEA key schedule (just the four key words; XTEA derives round keys
/// on the fly).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Xtea {
    k: [u32; 4],
}

impl std::fmt::Debug for Xtea {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "Xtea(…)")
    }
}

impl Xtea {
    /// Creates a cipher from a 128-bit key.
    pub fn new(key: [u8; 16]) -> Xtea {
        let mut k = [0u32; 4];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            k[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Xtea { k }
    }

    /// Encrypts one 64-bit block.
    pub fn encrypt_block(&self, block: u64) -> u64 {
        let mut v0 = (block >> 32) as u32;
        let mut v1 = block as u32;
        let mut sum = 0u32;
        for _ in 0..ROUNDS {
            v0 = v0.wrapping_add(
                ((v1 << 4) ^ (v1 >> 5))
                    .wrapping_add(v1)
                    .bitxor_add(sum, self.k[(sum & 3) as usize]),
            );
            sum = sum.wrapping_add(DELTA);
            v1 = v1.wrapping_add(
                ((v0 << 4) ^ (v0 >> 5))
                    .wrapping_add(v0)
                    .bitxor_add(sum, self.k[((sum >> 11) & 3) as usize]),
            );
        }
        ((v0 as u64) << 32) | v1 as u64
    }

    /// Decrypts one 64-bit block.
    pub fn decrypt_block(&self, block: u64) -> u64 {
        let mut v0 = (block >> 32) as u32;
        let mut v1 = block as u32;
        let mut sum = DELTA.wrapping_mul(ROUNDS);
        for _ in 0..ROUNDS {
            v1 = v1.wrapping_sub(
                ((v0 << 4) ^ (v0 >> 5))
                    .wrapping_add(v0)
                    .bitxor_add(sum, self.k[((sum >> 11) & 3) as usize]),
            );
            sum = sum.wrapping_sub(DELTA);
            v0 = v0.wrapping_sub(
                ((v1 << 4) ^ (v1 >> 5))
                    .wrapping_add(v1)
                    .bitxor_add(sum, self.k[(sum & 3) as usize]),
            );
        }
        ((v0 as u64) << 32) | v1 as u64
    }

    /// Runs the cipher in counter mode to derive `out.len()` bytes of key
    /// stream for the given nonce. Used by UMAC's key- and pad-derivation
    /// functions.
    pub fn keystream(&self, nonce: u64, out: &mut [u8]) {
        for (i, chunk) in out.chunks_mut(8).enumerate() {
            let block = self.encrypt_block(nonce ^ ((i as u64) << 48));
            let bytes = block.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Helper for the XTEA round function: `(x) ^ (sum + key)` folded into the
/// surrounding additions. Expressed as a trait so the round bodies above
/// read close to the reference C code.
trait BitxorAdd {
    fn bitxor_add(self, sum: u32, key: u32) -> u32;
}

impl BitxorAdd for u32 {
    fn bitxor_add(self, sum: u32, key: u32) -> u32 {
        self ^ sum.wrapping_add(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let cipher = Xtea::new(*b"0123456789abcdef");
        for block in [0u64, 1, u64::MAX, 0xdead_beef_cafe_f00d] {
            assert_eq!(cipher.decrypt_block(cipher.encrypt_block(block)), block);
        }
    }

    #[test]
    fn different_keys_differ() {
        let c1 = Xtea::new([0; 16]);
        let c2 = Xtea::new([1; 16]);
        assert_ne!(c1.encrypt_block(0), c2.encrypt_block(0));
    }

    #[test]
    fn encryption_is_not_identity() {
        let cipher = Xtea::new([42; 16]);
        assert_ne!(cipher.encrypt_block(0), 0);
    }

    #[test]
    fn keystream_deterministic_and_nonce_sensitive() {
        let cipher = Xtea::new([9; 16]);
        let mut a = [0u8; 20];
        let mut b = [0u8; 20];
        cipher.keystream(7, &mut a);
        cipher.keystream(7, &mut b);
        assert_eq!(a, b);
        cipher.keystream(8, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn keystream_partial_block() {
        let cipher = Xtea::new([3; 16]);
        let mut long = [0u8; 16];
        let mut short = [0u8; 5];
        cipher.keystream(1, &mut long);
        cipher.keystream(1, &mut short);
        assert_eq!(&long[..5], &short[..]);
    }

    #[test]
    fn debug_hides_key() {
        let cipher = Xtea::new([0xff; 16]);
        assert_eq!(format!("{cipher:?}"), "Xtea(…)");
    }
}
