//! Merkle trees over partition digests for incremental checkpointing.
//!
//! BFT keeps checkpoint creation cheap by maintaining a hierarchical digest
//! over copy-on-write state partitions: when a checkpoint is taken, only
//! partitions written since the previous checkpoint are re-digested, and the
//! change is folded up the tree in O(dirty · log n) digest operations
//! instead of re-hashing the whole state. This module provides that tree.
//!
//! Leaves and interior nodes are domain-separated (`"LEAF"` / `"NODE"`) so a
//! leaf digest can never be confused with an interior digest. A level with
//! an odd number of nodes promotes its last node unchanged, so the tree is
//! defined for any leaf count ≥ 1.

use crate::md5::{digest_parts, Digest};

/// Digest of a single leaf value.
pub fn leaf_digest(leaf: &Digest) -> Digest {
    digest_parts(&[b"LEAF", leaf.as_bytes()])
}

fn node_digest(l: &Digest, r: &Digest) -> Digest {
    digest_parts(&[b"NODE", l.as_bytes(), r.as_bytes()])
}

/// A Merkle tree over a fixed set of leaf digests, supporting O(log n)
/// single-leaf updates.
///
/// `levels[0]` holds the (domain-separated) leaf digests; each higher level
/// pairs adjacent nodes until a single root remains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleTree {
    /// Raw leaf values, as supplied by the caller (before domain
    /// separation). Kept so peers can diff leaf digests for partial state
    /// transfer.
    leaves: Vec<Digest>,
    levels: Vec<Vec<Digest>>,
}

impl MerkleTree {
    /// Builds a tree over `leaves`. An empty leaf set yields [`Digest::ZERO`]
    /// as the root.
    pub fn new(leaves: Vec<Digest>) -> MerkleTree {
        let mut tree = MerkleTree {
            leaves,
            levels: Vec::new(),
        };
        tree.rebuild();
        tree
    }

    fn rebuild(&mut self) {
        self.levels.clear();
        if self.leaves.is_empty() {
            return;
        }
        let mut level: Vec<Digest> = self.leaves.iter().map(leaf_digest).collect();
        loop {
            let done = level.len() == 1;
            self.levels.push(level);
            if done {
                break;
            }
            let prev = self.levels.last().expect("just pushed");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                next.push(match pair {
                    [l, r] => node_digest(l, r),
                    [only] => *only,
                    _ => unreachable!("chunks(2)"),
                });
            }
            level = next;
        }
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// True if the tree has no leaves.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// The raw (caller-supplied) leaf values.
    pub fn leaves(&self) -> &[Digest] {
        &self.leaves
    }

    /// The root digest. [`Digest::ZERO`] for an empty tree.
    pub fn root(&self) -> Digest {
        self.levels
            .last()
            .and_then(|l| l.first())
            .copied()
            .unwrap_or(Digest::ZERO)
    }

    /// Replaces leaf `i` and recomputes the path to the root. Returns the
    /// number of digest operations performed (for cost accounting).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn update(&mut self, i: usize, leaf: Digest) -> usize {
        assert!(i < self.leaves.len(), "leaf index {i} out of range");
        self.leaves[i] = leaf;
        self.levels[0][i] = leaf_digest(&leaf);
        let mut ops = 1;
        let mut idx = i;
        for lvl in 1..self.levels.len() {
            idx /= 2;
            let below = &self.levels[lvl - 1];
            let l = below[idx * 2];
            let updated = match below.get(idx * 2 + 1) {
                Some(r) => {
                    ops += 1;
                    node_digest(&l, r)
                }
                None => l,
            };
            self.levels[lvl][idx] = updated;
        }
        ops
    }

    /// One-shot root over `leaves`, without building an updatable tree.
    /// Used by state-transfer clients to verify a claimed leaf vector
    /// against a quorum-certified checkpoint digest.
    pub fn root_of(leaves: &[Digest]) -> Digest {
        MerkleTree::new(leaves.to_vec()).root()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest;

    fn leaves(n: usize) -> Vec<Digest> {
        (0..n).map(|i| digest(&[i as u8])).collect()
    }

    #[test]
    fn empty_tree_has_zero_root() {
        let t = MerkleTree::new(Vec::new());
        assert_eq!(t.root(), Digest::ZERO);
        assert!(t.is_empty());
    }

    #[test]
    fn single_leaf_root_is_leaf_digest() {
        let l = digest(b"x");
        let t = MerkleTree::new(vec![l]);
        assert_eq!(t.root(), leaf_digest(&l));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn root_is_order_sensitive() {
        let a = MerkleTree::root_of(&leaves(4));
        let mut swapped = leaves(4);
        swapped.swap(0, 3);
        assert_ne!(a, MerkleTree::root_of(&swapped));
    }

    #[test]
    fn leaf_and_node_domains_are_separated() {
        // A single-leaf tree over d must differ from a two-leaf tree whose
        // interior node happens to digest the same bytes.
        let l = leaves(2);
        let two = MerkleTree::root_of(&l);
        let one = MerkleTree::root_of(&[l[0]]);
        assert_ne!(two, one);
    }

    #[test]
    fn update_matches_rebuild() {
        for n in [1usize, 2, 3, 5, 8, 13, 64, 65] {
            let mut t = MerkleTree::new(leaves(n));
            for i in [0, n / 2, n - 1] {
                let new_leaf = digest(&[i as u8, 0xee]);
                t.update(i, new_leaf);
                let fresh = MerkleTree::new(t.leaves().to_vec());
                assert_eq!(t.root(), fresh.root(), "n={n} i={i}");
                assert_eq!(t, fresh, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn update_cost_is_logarithmic() {
        let mut t = MerkleTree::new(leaves(64));
        let ops = t.update(10, digest(b"new"));
        // 64 leaves → 1 leaf digest + 6 interior nodes.
        assert_eq!(ops, 7);
    }

    #[test]
    fn different_leaf_changes_root() {
        let mut t = MerkleTree::new(leaves(16));
        let before = t.root();
        t.update(7, digest(b"changed"));
        assert_ne!(t.root(), before);
        assert_eq!(t.root(), MerkleTree::root_of(t.leaves()));
    }
}
