//! The MD5 message-digest algorithm (RFC 1321), implemented from scratch.
//!
//! BFT uses MD5 to compute the digests carried in pre-prepare messages, the
//! digests of replies used by the *digest replies* optimization, and the
//! digests that identify checkpoints. MD5 is broken for collision resistance
//! today; it is implemented here because it is what the paper used and
//! because the *cost structure* (fixed setup plus a per-64-byte-block
//! compression) is what the simulation's CPU model reproduces.
//!
//! Both one-shot ([`digest`]) and incremental ([`Md5`]) interfaces are
//! provided; the incremental interface is used to hash large state
//! partitions during checkpointing without materializing them.

/// A 16-byte MD5 digest.
///
/// Digests identify requests, replies and checkpoints throughout the
/// protocol. They are compared in constant time where authentication
/// matters (see [`Digest::ct_eq`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Digest(pub [u8; 16]);

impl Digest {
    /// The all-zero digest, used as a placeholder for "no digest".
    pub const ZERO: Digest = Digest([0; 16]);

    /// Returns the digest bytes.
    pub fn as_bytes(&self) -> &[u8; 16] {
        &self.0
    }

    /// Constant-time equality comparison.
    ///
    /// Ordinary `==` is fine for table lookups; use this when comparing a
    /// received digest against a locally computed one.
    pub fn ct_eq(&self, other: &Digest) -> bool {
        let mut acc = 0u8;
        for i in 0..16 {
            acc |= self.0[i] ^ other.0[i];
        }
        acc == 0
    }

    /// Truncates the digest to a `u64`, used for cheap fingerprints in
    /// internal tables (never for authentication).
    pub fn short(&self) -> u64 {
        u64::from_le_bytes(self.0[..8].try_into().expect("slice of 8 bytes"))
    }
}

impl std::fmt::Debug for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Digest(")?;
        for b in &self.0[..4] {
            write!(f, "{b:02x}")?;
        }
        write!(f, "…)")
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

/// Per-round shift amounts (RFC 1321).
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// Sine-derived additive constants: `K[i] = floor(2^32 * |sin(i + 1)|)`.
const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

/// Incremental MD5 context.
///
/// # Example
///
/// ```
/// use bft_crypto::md5::{digest, Md5};
///
/// let mut ctx = Md5::new();
/// ctx.update(b"hello ");
/// ctx.update(b"world");
/// assert_eq!(ctx.finish(), digest(b"hello world"));
/// ```
#[derive(Clone, Debug)]
pub struct Md5 {
    state: [u32; 4],
    /// Total message length in bytes.
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Md5 {
    fn default() -> Self {
        Self::new()
    }
}

impl Md5 {
    /// Creates a fresh context.
    pub fn new() -> Md5 {
        Md5 {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476],
            len: 0,
            buf: [0; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the digest.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let block: [u8; 64] = data[..64].try_into().expect("64-byte block");
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finalizes the digest, consuming the context.
    pub fn finish(mut self) -> Digest {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, zeros, then the 64-bit little-endian bit length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Appending the length must not be double-counted in self.len, but
        // since we are finishing, self.len no longer matters.
        let mut block = self.buf;
        block[56..64].copy_from_slice(&bit_len.to_le_bytes());
        self.compress(&block.clone());
        let mut out = [0u8; 16];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut m = [0u32; 16];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            m[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        let [mut a, mut b, mut c, mut d] = self.state;
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f)
                    .wrapping_add(K[i])
                    .wrapping_add(m[g])
                    .rotate_left(S[i]),
            );
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

/// Computes the MD5 digest of `data` in one shot.
///
/// ```
/// use bft_crypto::md5::digest;
/// assert_eq!(digest(b"abc").to_string(), "900150983cd24fb0d6963f7d28e17f72");
/// ```
pub fn digest(data: &[u8]) -> Digest {
    let mut ctx = Md5::new();
    ctx.update(data);
    ctx.finish()
}

/// Computes the digest of the concatenation of several byte slices without
/// copying them into one buffer.
pub fn digest_parts(parts: &[&[u8]]) -> Digest {
    let mut ctx = Md5::new();
    for p in parts {
        ctx.update(p);
    }
    ctx.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_vectors() {
        let cases: [(&[u8], &str); 7] = [
            (b"", "d41d8cd98f00b204e9800998ecf8427e"),
            (b"a", "0cc175b9c0f1b6a831c399e269772661"),
            (b"abc", "900150983cd24fb0d6963f7d28e17f72"),
            (b"message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                b"abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(digest(input).to_string(), want, "input {input:?}");
        }
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for split in [0, 1, 17, 63, 64, 65, 128, 500, 999, 1000] {
            let mut ctx = Md5::new();
            ctx.update(&data[..split]);
            ctx.update(&data[split..]);
            assert_eq!(ctx.finish(), digest(&data), "split {split}");
        }
    }

    #[test]
    fn digest_parts_matches_concat() {
        let a = b"pre-prepare".as_slice();
        let b = b"payload bytes".as_slice();
        let mut concat = a.to_vec();
        concat.extend_from_slice(b);
        assert_eq!(digest_parts(&[a, b]), digest(&concat));
    }

    #[test]
    fn boundary_lengths() {
        // Exercise padding edge cases around the 56-byte length slot.
        for len in 54..=66usize {
            let data = vec![0xabu8; len];
            let mut ctx = Md5::new();
            for b in &data {
                ctx.update(std::slice::from_ref(b));
            }
            assert_eq!(ctx.finish(), digest(&data), "len {len}");
        }
    }

    #[test]
    fn ct_eq_agrees_with_eq() {
        let d1 = digest(b"x");
        let d2 = digest(b"x");
        let d3 = digest(b"y");
        assert!(d1.ct_eq(&d2));
        assert!(!d1.ct_eq(&d3));
    }

    #[test]
    fn display_and_debug_nonempty() {
        let d = digest(b"z");
        assert_eq!(d.to_string().len(), 32);
        assert!(!format!("{d:?}").is_empty());
    }

    #[test]
    fn short_fingerprint_is_le_prefix() {
        let d = Digest([1, 0, 0, 0, 0, 0, 0, 0, 9, 9, 9, 9, 9, 9, 9, 9]);
        assert_eq!(d.short(), 1);
    }
}
