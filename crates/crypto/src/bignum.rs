//! A small arbitrary-precision unsigned integer, sufficient for the RSA
//! key-exchange substrate.
//!
//! BFT uses public-key cryptography only to establish symmetric session
//! keys (and the paper's predecessors, Rampart and SecureRing, used it per
//! message — which is why they were slow). We therefore need a working but
//! not heavily optimized bignum: schoolbook multiplication, binary long
//! division, square-and-multiply modular exponentiation, Miller–Rabin
//! primality testing, and an extended GCD for modular inverses.

use rand::Rng;

/// An arbitrary-precision unsigned integer, little-endian `u32` limbs with
/// no trailing zero limbs (zero is the empty limb vector).
#[derive(Clone, PartialEq, Eq, Default)]
pub struct UBig {
    limbs: Vec<u32>,
}

impl std::fmt::Debug for UBig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "UBig(0x")?;
        if self.limbs.is_empty() {
            write!(f, "0")?;
        }
        for limb in self.limbs.iter().rev() {
            write!(f, "{limb:08x}")?;
        }
        write!(f, ")")
    }
}

impl std::fmt::Display for UBig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(self, f)
    }
}

impl PartialOrd for UBig {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for UBig {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            if a != b {
                return a.cmp(b);
            }
        }
        std::cmp::Ordering::Equal
    }
}

impl From<u64> for UBig {
    fn from(v: u64) -> UBig {
        let mut n = UBig {
            limbs: vec![v as u32, (v >> 32) as u32],
        };
        n.normalize();
        n
    }
}

impl UBig {
    /// Zero.
    pub fn zero() -> UBig {
        UBig { limbs: Vec::new() }
    }

    /// One.
    pub fn one() -> UBig {
        UBig::from(1u64)
    }

    /// Parses a big-endian byte string.
    pub fn from_bytes_be(bytes: &[u8]) -> UBig {
        let mut limbs = Vec::with_capacity(bytes.len() / 4 + 1);
        for chunk in bytes.rchunks(4) {
            let mut limb = 0u32;
            for &b in chunk {
                limb = (limb << 8) | b as u32;
            }
            limbs.push(limb);
        }
        let mut n = UBig { limbs };
        n.normalize();
        n
    }

    /// Serializes to big-endian bytes without leading zeros (empty for 0).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.limbs.len() * 4);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        while out.first() == Some(&0) {
            out.remove(0);
        }
        out
    }

    /// True iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff the low bit is clear.
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => (self.limbs.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
        }
    }

    /// Value of bit `i` (little-endian bit numbering).
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 32, i % 32);
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &UBig) -> UBig {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut limbs = Vec::with_capacity(long.limbs.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.limbs.len() {
            let sum =
                long.limbs[i] as u64 + short.limbs.get(i).copied().unwrap_or(0) as u64 + carry;
            limbs.push(sum as u32);
            carry = sum >> 32;
        }
        if carry != 0 {
            limbs.push(carry as u32);
        }
        UBig { limbs }
    }

    /// `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn sub(&self, other: &UBig) -> UBig {
        assert!(self >= other, "UBig::sub underflow");
        let mut limbs = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i64;
        for i in 0..self.limbs.len() {
            let diff =
                self.limbs[i] as i64 - other.limbs.get(i).copied().unwrap_or(0) as i64 + borrow;
            if diff < 0 {
                limbs.push((diff + (1i64 << 32)) as u32);
                borrow = -1;
            } else {
                limbs.push(diff as u32);
                borrow = 0;
            }
        }
        let mut n = UBig { limbs };
        n.normalize();
        n
    }

    /// `self * other` (schoolbook).
    pub fn mul(&self, other: &UBig) -> UBig {
        if self.is_zero() || other.is_zero() {
            return UBig::zero();
        }
        let mut limbs = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = limbs[i + j] as u64 + a as u64 * b as u64 + carry;
                limbs[i + j] = cur as u32;
                carry = cur >> 32;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = limbs[k] as u64 + carry;
                limbs[k] = cur as u32;
                carry = cur >> 32;
                k += 1;
            }
        }
        let mut n = UBig { limbs };
        n.normalize();
        n
    }

    /// `self << bits`.
    pub fn shl(&self, bits: usize) -> UBig {
        if self.is_zero() {
            return UBig::zero();
        }
        let (limb_shift, bit_shift) = (bits / 32, bits % 32);
        let mut limbs = vec![0u32; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u32;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (32 - bit_shift);
            }
            if carry != 0 {
                limbs.push(carry);
            }
        }
        let mut n = UBig { limbs };
        n.normalize();
        n
    }

    /// `self >> bits`.
    pub fn shr(&self, bits: usize) -> UBig {
        let (limb_shift, bit_shift) = (bits / 32, bits % 32);
        if limb_shift >= self.limbs.len() {
            return UBig::zero();
        }
        let mut limbs = Vec::with_capacity(self.limbs.len() - limb_shift);
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs[limb_shift..]);
        } else {
            for i in limb_shift..self.limbs.len() {
                let lo = self.limbs[i] >> bit_shift;
                let hi = self.limbs.get(i + 1).map_or(0, |&l| l << (32 - bit_shift));
                limbs.push(lo | hi);
            }
        }
        let mut n = UBig { limbs };
        n.normalize();
        n
    }

    /// Quotient and remainder of `self / divisor` (binary long division).
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    pub fn div_rem(&self, divisor: &UBig) -> (UBig, UBig) {
        assert!(!divisor.is_zero(), "UBig division by zero");
        if self < divisor {
            return (UBig::zero(), self.clone());
        }
        let shift = self.bits() - divisor.bits();
        let mut remainder = self.clone();
        let mut quotient = UBig::zero();
        let mut shifted = divisor.shl(shift);
        for i in (0..=shift).rev() {
            if remainder >= shifted {
                remainder = remainder.sub(&shifted);
                // Set quotient bit i.
                let (limb, off) = (i / 32, i % 32);
                if quotient.limbs.len() <= limb {
                    quotient.limbs.resize(limb + 1, 0);
                }
                quotient.limbs[limb] |= 1 << off;
            }
            shifted = shifted.shr(1);
        }
        quotient.normalize();
        (quotient, remainder)
    }

    /// `self mod m`.
    pub fn rem(&self, m: &UBig) -> UBig {
        self.div_rem(m).1
    }

    /// `self^exp mod m` by square-and-multiply.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn mod_pow(&self, exp: &UBig, m: &UBig) -> UBig {
        assert!(!m.is_zero(), "modulus must be nonzero");
        if m == &UBig::one() {
            return UBig::zero();
        }
        let mut result = UBig::one();
        let mut base = self.rem(m);
        for i in 0..exp.bits() {
            if exp.bit(i) {
                result = result.mul(&base).rem(m);
            }
            base = base.mul(&base).rem(m);
        }
        result
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &UBig) -> UBig {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let mut shift = 0;
        while a.is_even() && b.is_even() {
            a = a.shr(1);
            b = b.shr(1);
            shift += 1;
        }
        while !b.is_zero() {
            while a.is_even() {
                a = a.shr(1);
            }
            while b.is_even() {
                b = b.shr(1);
            }
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b = b.sub(&a);
        }
        a.shl(shift)
    }

    /// Modular inverse `self⁻¹ mod m`, or `None` if `gcd(self, m) != 1`.
    pub fn mod_inv(&self, m: &UBig) -> Option<UBig> {
        // Extended Euclid tracking only the coefficient of `self`, with an
        // explicit sign because UBig is unsigned.
        let mut r0 = m.clone();
        let mut r1 = self.rem(m);
        let mut t0 = (UBig::zero(), false); // (magnitude, negative?)
        let mut t1 = (UBig::one(), false);
        while !r1.is_zero() {
            let (q, r2) = r0.div_rem(&r1);
            // t2 = t0 - q * t1, with sign tracking.
            let qt1 = q.mul(&t1.0);
            let t2 = sub_signed(&t0, &(qt1, t1.1));
            r0 = r1;
            r1 = r2;
            t0 = t1;
            t1 = t2;
        }
        if r0 != UBig::one() {
            return None;
        }
        let (mag, neg) = t0;
        let mag = mag.rem(m);
        Some(if neg && !mag.is_zero() {
            m.sub(&mag)
        } else {
            mag
        })
    }

    /// A uniformly random value with exactly `bits` bits (top bit set).
    pub fn random_bits<R: Rng>(rng: &mut R, bits: usize) -> UBig {
        assert!(bits > 0);
        let limbs_len = bits.div_ceil(32);
        let mut limbs: Vec<u32> = (0..limbs_len).map(|_| rng.gen()).collect();
        let top_bits = bits - (limbs_len - 1) * 32;
        let mask = if top_bits == 32 {
            u32::MAX
        } else {
            (1u32 << top_bits) - 1
        };
        let last = limbs.last_mut().expect("at least one limb");
        *last &= mask;
        *last |= 1 << (top_bits - 1);
        let mut n = UBig { limbs };
        n.normalize();
        n
    }

    /// A uniformly random value in `[0, bound)`.
    pub fn random_below<R: Rng>(rng: &mut R, bound: &UBig) -> UBig {
        assert!(!bound.is_zero());
        loop {
            let bits = bound.bits();
            let limbs_len = bits.div_ceil(32);
            let mut limbs: Vec<u32> = (0..limbs_len).map(|_| rng.gen()).collect();
            let top_bits = bits - (limbs_len - 1) * 32;
            if top_bits < 32 {
                *limbs.last_mut().expect("at least one limb") &= (1u32 << top_bits) - 1;
            }
            let mut n = UBig { limbs };
            n.normalize();
            if &n < bound {
                return n;
            }
        }
    }

    /// Miller–Rabin probabilistic primality test with `rounds` random bases.
    pub fn is_probable_prime<R: Rng>(&self, rng: &mut R, rounds: usize) -> bool {
        const SMALL_PRIMES: [u64; 15] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47];
        if self < &UBig::from(2u64) {
            return false;
        }
        for &p in &SMALL_PRIMES {
            let p = UBig::from(p);
            if self == &p {
                return true;
            }
            if self.rem(&p).is_zero() {
                return false;
            }
        }
        // Write self - 1 = d * 2^s.
        let n_minus_1 = self.sub(&UBig::one());
        let mut d = n_minus_1.clone();
        let mut s = 0usize;
        while d.is_even() {
            d = d.shr(1);
            s += 1;
        }
        let two = UBig::from(2u64);
        'witness: for _ in 0..rounds {
            let span = self.sub(&UBig::from(3u64));
            let a = UBig::random_below(rng, &span).add(&two);
            let mut x = a.mod_pow(&d, self);
            if x == UBig::one() || x == n_minus_1 {
                continue 'witness;
            }
            for _ in 0..s - 1 {
                x = x.mul(&x).rem(self);
                if x == n_minus_1 {
                    continue 'witness;
                }
            }
            return false;
        }
        true
    }

    /// Generates a random probable prime with exactly `bits` bits.
    pub fn random_prime<R: Rng>(rng: &mut R, bits: usize) -> UBig {
        assert!(bits >= 8, "prime size too small");
        loop {
            let mut candidate = UBig::random_bits(rng, bits);
            if candidate.is_even() {
                candidate = candidate.add(&UBig::one());
            }
            if candidate.is_probable_prime(rng, 12) {
                return candidate;
            }
        }
    }
}

/// Signed subtraction on (magnitude, negative?) pairs: `a - b`.
fn sub_signed(a: &(UBig, bool), b: &(UBig, bool)) -> (UBig, bool) {
    match (a.1, b.1) {
        // a - b with both nonnegative.
        (false, false) => {
            if a.0 >= b.0 {
                (a.0.sub(&b.0), false)
            } else {
                (b.0.sub(&a.0), true)
            }
        }
        // (-a) - (-b) = b - a.
        (true, true) => {
            if b.0 >= a.0 {
                (b.0.sub(&a.0), false)
            } else {
                (a.0.sub(&b.0), true)
            }
        }
        // a - (-b) = a + b.
        (false, true) => (a.0.add(&b.0), false),
        // (-a) - b = -(a + b).
        (true, false) => (a.0.add(&b.0), true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xbf7)
    }

    #[test]
    fn from_u64_roundtrip() {
        for v in [0u64, 1, 0xffff_ffff, 0x1_0000_0000, u64::MAX] {
            let n = UBig::from(v);
            let bytes = n.to_bytes_be();
            assert_eq!(UBig::from_bytes_be(&bytes), n, "v = {v}");
        }
    }

    #[test]
    fn add_sub_inverse() {
        let a = UBig::from(0xdead_beef_0000_1111);
        let b = UBig::from(0x1234_5678_9abc_def0);
        assert_eq!(a.add(&b).sub(&b), a);
        assert_eq!(a.add(&b).sub(&a), b);
    }

    #[test]
    fn mul_matches_u128() {
        let cases = [
            (0u64, 0u64),
            (1, u64::MAX),
            (u64::MAX, u64::MAX),
            (0xffff_0000, 0x1_0001),
        ];
        for (x, y) in cases {
            let got = UBig::from(x).mul(&UBig::from(y));
            let want = x as u128 * y as u128;
            let want_big = UBig::from((want >> 64) as u64)
                .shl(64)
                .add(&UBig::from(want as u64));
            assert_eq!(got, want_big, "{x} * {y}");
        }
    }

    #[test]
    fn div_rem_matches_u128() {
        let mut r = rng();
        for _ in 0..200 {
            let a: u128 = (r.gen::<u64>() as u128) << 32 | r.gen::<u32>() as u128;
            let b: u64 = r.gen_range(1..u64::MAX);
            let big_a = UBig::from((a >> 64) as u64)
                .shl(64)
                .add(&UBig::from(a as u64));
            let (q, rem) = big_a.div_rem(&UBig::from(b));
            let want_q = a / b as u128;
            let want_r = a % b as u128;
            assert_eq!(
                q,
                UBig::from((want_q >> 64) as u64)
                    .shl(64)
                    .add(&UBig::from(want_q as u64))
            );
            assert_eq!(rem, UBig::from(want_r as u64));
        }
    }

    #[test]
    fn shifts() {
        let n = UBig::from(0b1011u64);
        assert_eq!(n.shl(3), UBig::from(0b1011000u64));
        assert_eq!(n.shl(35).shr(35), n);
        assert_eq!(n.shr(4), UBig::zero());
        assert_eq!(UBig::zero().shl(100), UBig::zero());
    }

    #[test]
    fn bits_and_bit() {
        let n = UBig::from(0x100u64);
        assert_eq!(n.bits(), 9);
        assert!(n.bit(8));
        assert!(!n.bit(7));
        assert_eq!(UBig::zero().bits(), 0);
    }

    #[test]
    fn mod_pow_small_values() {
        // 3^7 mod 10 = 7 ; 2^10 mod 1000 = 24 ; fermat: a^(p-1) mod p = 1.
        assert_eq!(
            UBig::from(3u64).mod_pow(&UBig::from(7u64), &UBig::from(10u64)),
            UBig::from(7u64)
        );
        assert_eq!(
            UBig::from(2u64).mod_pow(&UBig::from(10u64), &UBig::from(1000u64)),
            UBig::from(24u64)
        );
        let p = UBig::from(1_000_003u64);
        assert_eq!(
            UBig::from(12345u64).mod_pow(&p.sub(&UBig::one()), &p),
            UBig::one()
        );
    }

    #[test]
    fn gcd_known_values() {
        assert_eq!(UBig::from(48u64).gcd(&UBig::from(36u64)), UBig::from(12u64));
        assert_eq!(UBig::from(17u64).gcd(&UBig::from(31u64)), UBig::one());
        assert_eq!(UBig::zero().gcd(&UBig::from(5u64)), UBig::from(5u64));
    }

    #[test]
    fn mod_inv_known_values() {
        // 3 * 4 = 12 ≡ 1 (mod 11)
        assert_eq!(
            UBig::from(3u64).mod_inv(&UBig::from(11u64)),
            Some(UBig::from(4u64))
        );
        // 2 has no inverse mod 4.
        assert_eq!(UBig::from(2u64).mod_inv(&UBig::from(4u64)), None);
    }

    #[test]
    fn mod_inv_random_roundtrip() {
        let mut r = rng();
        let m = UBig::random_prime(&mut r, 64);
        for _ in 0..20 {
            let a = UBig::random_below(&mut r, &m);
            if a.is_zero() {
                continue;
            }
            let inv = a.mod_inv(&m).expect("prime modulus");
            assert_eq!(a.mul(&inv).rem(&m), UBig::one());
        }
    }

    #[test]
    fn primality_known_values() {
        let mut r = rng();
        for p in [2u64, 3, 5, 101, 65537, 1_000_003] {
            assert!(UBig::from(p).is_probable_prime(&mut r, 16), "{p}");
        }
        for c in [0u64, 1, 4, 100, 65535, 1_000_001] {
            assert!(!UBig::from(c).is_probable_prime(&mut r, 16), "{c}");
        }
    }

    #[test]
    fn random_prime_has_requested_size() {
        let mut r = rng();
        let p = UBig::random_prime(&mut r, 96);
        assert_eq!(p.bits(), 96);
        assert!(!p.is_even());
    }

    #[test]
    fn random_below_in_range() {
        let mut r = rng();
        let bound = UBig::from(1000u64);
        for _ in 0..100 {
            assert!(UBig::random_below(&mut r, &bound) < bound);
        }
    }

    #[test]
    fn debug_nonempty_for_zero() {
        assert_eq!(format!("{:?}", UBig::zero()), "UBig(0x0)");
    }
}
