#![warn(missing_docs)]

//! Cryptographic substrate for the BFT library.
//!
//! The DSN 2001 paper attributes most of BFT's speed to replacing public-key
//! signatures with symmetric-key message authentication: MD5 digests and
//! UMAC32 message authentication codes, with public-key cryptography used
//! only to establish the symmetric session keys. This crate implements that
//! stack from scratch:
//!
//! - [`md5`]: the MD5 digest (incremental and one-shot),
//! - [`merkle`]: Merkle trees over partition digests, the basis of
//!   incremental hierarchical checkpointing,
//! - [`xtea`]: the XTEA block cipher used as the MAC pad generator,
//! - [`umac`]: a UMAC-style fast universal-hash MAC,
//! - [`bignum`] and [`rsa`]: a small unsigned bignum and textbook RSA used
//!   for session-key exchange (`NEW-KEY` messages),
//! - [`keychain`]: per-principal session-key management and MAC
//!   *authenticators* (vectors of MACs, one entry per replica).
//!
//! # Example
//!
//! ```
//! use bft_crypto::{digest, keychain::KeyChain, umac::MacKey};
//!
//! let d = digest(b"request bytes");
//! let key = MacKey::from_bytes([7u8; 16]);
//! let mac = key.mac(b"message", 42);
//! assert!(key.verify(b"message", 42, &mac.tag));
//! assert!(!key.verify(b"tampered", 42, &mac.tag));
//! let _ = d;
//! let _ = KeyChain::new(0, 4);
//! ```

pub mod bignum;
pub mod keychain;
pub mod md5;
pub mod merkle;
pub mod rsa;
pub mod umac;
pub mod xtea;

pub use keychain::{Authenticator, KeyChain};
pub use md5::{digest, Digest, Md5};
pub use merkle::MerkleTree;
pub use umac::{Mac, MacKey};

/// Errors produced by cryptographic operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CryptoError {
    /// A MAC or authenticator failed verification.
    BadMac,
    /// A digest did not match the expected value.
    BadDigest,
    /// A signature failed verification.
    BadSignature,
    /// Ciphertext or key material was structurally invalid.
    Malformed,
}

impl std::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CryptoError::BadMac => write!(f, "message authentication code verification failed"),
            CryptoError::BadDigest => write!(f, "digest mismatch"),
            CryptoError::BadSignature => write!(f, "signature verification failed"),
            CryptoError::Malformed => write!(f, "malformed cryptographic input"),
        }
    }
}

impl std::error::Error for CryptoError {}
