//! Session-key management and MAC authenticators.
//!
//! Every pair of principals (replica or client) shares symmetric session
//! keys. Point-to-point messages carry a single MAC; messages multicast to
//! all replicas carry an *authenticator* — a vector with one MAC entry per
//! replica other than the sender, each computed under the corresponding
//! pairwise key. A replica validates the authenticator by checking only its
//! own entry, so authentication cost is O(1) per receiver while generation
//! is O(n) for the sender. The paper's 3f+1 = 4 configurations make the
//! vector 3 entries × 16 bytes.
//!
//! Keys follow BFT's ownership rule: the *receiver* chooses the keys used
//! to authenticate messages sent **to** it, and announces a new *epoch*
//! with a `NEW-KEY` message (in the real system, RSA-encrypted per sender
//! and signed — implemented in [`crate::rsa`] and exercised by the
//! `key_exchange` integration test). Within the simulation the directional
//! key for `sender → receiver` at epoch `e` derives deterministically from
//! `(sender, receiver, e)`, which is equivalent to every sender having
//! completed the exchange for epoch `e`.
//!
//! To avoid dropping in-flight traffic at a refresh boundary, receivers
//! accept MACs under the current and the immediately preceding epoch
//! (BFT similarly kept old keys valid briefly).

use crate::md5;
use crate::umac::{Mac, MacKey};
use std::collections::HashMap;

/// Identifies a principal: replicas are `0..n`, clients are `>= n`.
pub type PrincipalId = u32;

/// A vector of MACs, one per replica other than the sender.
///
/// Entries are ordered by replica id, sender omitted.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Authenticator {
    /// `(replica, mac)` pairs, ascending by replica id.
    pub entries: Vec<(PrincipalId, Mac)>,
}

impl Authenticator {
    /// Wire size in bytes: 16 per entry plus one id byte each.
    pub fn wire_bytes(&self) -> usize {
        self.entries.len() * (Mac::WIRE_BYTES + 1)
    }

    /// Looks up the entry for `replica`.
    pub fn entry(&self, replica: PrincipalId) -> Option<&Mac> {
        self.entries
            .iter()
            .find(|(r, _)| *r == replica)
            .map(|(_, m)| m)
    }
}

/// Per-principal key state: directional session keys per epoch, a nonce
/// counter, and the epochs announced by each peer.
///
/// # Example
///
/// ```
/// use bft_crypto::keychain::KeyChain;
///
/// let mut sender = KeyChain::new(0, 4);
/// let mut receiver = KeyChain::new(2, 4);
/// let auth = sender.authenticate(b"pre-prepare");
/// assert!(receiver.verify_authenticator(0, b"pre-prepare", &auth));
/// ```
#[derive(Clone, Debug)]
pub struct KeyChain {
    my_id: PrincipalId,
    n_replicas: u32,
    nonce: u64,
    /// The epoch of the keys others must use when sending to me.
    my_epoch: u64,
    /// The epoch each peer last announced (keys I use sending to them).
    peer_epochs: HashMap<PrincipalId, u64>,
    /// Cache of derived directional keys: (sender, receiver, epoch) → key.
    keys: HashMap<(PrincipalId, PrincipalId, u64), MacKey>,
}

impl KeyChain {
    /// Creates the key chain for principal `my_id` in a group of
    /// `n_replicas` replicas.
    ///
    /// Group sizing (`n >= 3f + 1`) is a protocol concern validated by
    /// `Quorums`/`Config` in `bft-core`; the key chain only needs `n` to
    /// tell replicas from clients and size authenticators.
    pub fn new(my_id: PrincipalId, n_replicas: u32) -> KeyChain {
        KeyChain {
            my_id,
            n_replicas,
            nonce: 0,
            my_epoch: 0,
            peer_epochs: HashMap::new(),
            keys: HashMap::new(),
        }
    }

    /// This principal's id.
    pub fn id(&self) -> PrincipalId {
        self.my_id
    }

    /// Number of replicas in the group.
    pub fn n_replicas(&self) -> u32 {
        self.n_replicas
    }

    /// Announces fresh inbound keys: bumps this principal's epoch. The
    /// caller is responsible for telling peers (the `NEW-KEY` message);
    /// until a peer learns the new epoch, its MACs still verify thanks to
    /// the one-epoch grace window.
    pub fn refresh(&mut self) -> u64 {
        self.my_epoch += 1;
        self.my_epoch
    }

    /// The epoch peers must use when sending to this principal.
    pub fn epoch(&self) -> u64 {
        self.my_epoch
    }

    /// Records the epoch `peer` announced for messages sent to it. Stale
    /// announcements (replays) are ignored.
    pub fn set_peer_epoch(&mut self, peer: PrincipalId, epoch: u64) {
        let e = self.peer_epochs.entry(peer).or_insert(0);
        if epoch > *e {
            *e = epoch;
        }
    }

    /// The epoch this principal uses when sending to `peer`. Replica↔client
    /// keys are pinned at epoch 0: clients do not participate in the
    /// replica group's NEW-KEY rounds (as in BFT, where client keys are
    /// refreshed on the client's own schedule).
    pub fn peer_epoch(&self, peer: PrincipalId) -> u64 {
        if self.is_client(peer) || self.is_client(self.my_id) {
            return 0;
        }
        self.peer_epochs.get(&peer).copied().unwrap_or(0)
    }

    fn is_client(&self, id: PrincipalId) -> bool {
        id >= self.n_replicas
    }

    /// The epochs acceptable for inbound traffic from `peer`.
    fn inbound_epochs(&self, peer: PrincipalId) -> [u64; 2] {
        if self.is_client(peer) || self.is_client(self.my_id) {
            return [0, 0];
        }
        [self.my_epoch, self.my_epoch.saturating_sub(1)]
    }

    /// The directional key for `sender → receiver` at `epoch`.
    fn key(&mut self, sender: PrincipalId, receiver: PrincipalId, epoch: u64) -> &MacKey {
        self.keys
            .entry((sender, receiver, epoch))
            .or_insert_with(|| {
                let mut material = Vec::with_capacity(40);
                material.extend_from_slice(b"bft-session-key");
                material.extend_from_slice(&sender.to_le_bytes());
                material.extend_from_slice(&receiver.to_le_bytes());
                material.extend_from_slice(&epoch.to_le_bytes());
                MacKey::from_bytes(*md5::digest(&material).as_bytes())
            })
    }

    /// MACs `msg` for a single peer (point-to-point messages: requests to
    /// the primary, replies to clients), under the peer's announced epoch.
    pub fn mac_for(&mut self, peer: PrincipalId, msg: &[u8]) -> Mac {
        self.nonce += 1;
        let nonce = self.nonce;
        let epoch = self.peer_epoch(peer);
        let me = self.my_id;
        self.key(me, peer, epoch).mac(msg, nonce)
    }

    /// Verifies a point-to-point MAC from `peer`, accepting the current
    /// and previous inbound epoch.
    pub fn verify_from(&mut self, peer: PrincipalId, msg: &[u8], mac: &Mac) -> bool {
        let me = self.my_id;
        let epochs = self.inbound_epochs(peer);
        for &e in &epochs {
            if self.key(peer, me, e).verify(msg, mac.nonce, &mac.tag) {
                return true;
            }
            if e == 0 {
                break;
            }
        }
        false
    }

    /// Builds an authenticator over `msg` with one entry per replica other
    /// than this principal, each under that replica's announced epoch.
    pub fn authenticate(&mut self, msg: &[u8]) -> Authenticator {
        self.nonce += 1;
        let nonce = self.nonce;
        let me = self.my_id;
        let entries = (0..self.n_replicas)
            .filter(|&r| r != me)
            .map(|r| {
                let epoch = self.peer_epoch(r);
                (r, self.key(me, r, epoch).mac(msg, nonce))
            })
            .collect();
        Authenticator { entries }
    }

    /// Verifies the entry for this replica in an authenticator produced by
    /// `sender`. Returns `false` if there is no entry for us (e.g. we *are*
    /// the sender) or the MAC is wrong under both acceptable epochs.
    pub fn verify_authenticator(
        &mut self,
        sender: PrincipalId,
        msg: &[u8],
        auth: &Authenticator,
    ) -> bool {
        let me = self.my_id;
        let Some(mac) = auth.entry(me).copied() else {
            return false;
        };
        let epochs = self.inbound_epochs(sender);
        for &e in &epochs {
            if self.key(sender, me, e).verify(msg, mac.nonce, &mac.tag) {
                return true;
            }
            if e == 0 {
                break;
            }
        }
        false
    }

    /// Number of MAC computations needed to authenticate one multicast —
    /// used by the CPU cost model.
    pub fn authenticator_len(&self) -> u32 {
        self.n_replicas - u32::from(self.my_id < self.n_replicas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_roundtrip() {
        let mut client = KeyChain::new(7, 4);
        let mut primary = KeyChain::new(0, 4);
        let mac = client.mac_for(0, b"request");
        assert!(primary.verify_from(7, b"request", &mac));
        assert!(!primary.verify_from(7, b"forged", &mac));
    }

    #[test]
    fn authenticator_verified_by_every_backup() {
        let mut primary = KeyChain::new(0, 4);
        let auth = primary.authenticate(b"pre-prepare");
        assert_eq!(auth.entries.len(), 3);
        for backup in 1..4 {
            let mut kc = KeyChain::new(backup, 4);
            assert!(
                kc.verify_authenticator(0, b"pre-prepare", &auth),
                "{backup}"
            );
        }
    }

    #[test]
    fn authenticator_rejects_tampered_message() {
        let mut primary = KeyChain::new(0, 4);
        let auth = primary.authenticate(b"pre-prepare");
        let mut kc = KeyChain::new(1, 4);
        assert!(!kc.verify_authenticator(0, b"pre-prepared", &auth));
    }

    #[test]
    fn authenticator_rejects_wrong_sender() {
        let mut r2 = KeyChain::new(2, 4);
        let auth = r2.authenticate(b"commit");
        let mut r1 = KeyChain::new(1, 4);
        // Claimed sender 3 did not produce this authenticator.
        assert!(!r1.verify_authenticator(3, b"commit", &auth));
    }

    #[test]
    fn sender_has_no_entry_for_itself() {
        let mut r0 = KeyChain::new(0, 4);
        let auth = r0.authenticate(b"x");
        assert!(auth.entry(0).is_none());
        let mut same = KeyChain::new(0, 4);
        assert!(!same.verify_authenticator(0, b"x", &auth));
    }

    #[test]
    fn refresh_keeps_grace_window_then_invalidates() {
        let mut sender = KeyChain::new(0, 4);
        let mut receiver = KeyChain::new(1, 4);
        let old_mac = sender.mac_for(1, b"msg");
        // One refresh: in-flight MACs under the previous epoch still pass.
        receiver.refresh();
        assert!(receiver.verify_from(0, b"msg", &old_mac));
        // Two refreshes: the old epoch falls out of the grace window.
        receiver.refresh();
        assert!(!receiver.verify_from(0, b"msg", &old_mac));
        // Once the sender learns the new epoch, traffic flows again.
        sender.set_peer_epoch(1, receiver.epoch());
        let fresh = sender.mac_for(1, b"msg");
        assert!(receiver.verify_from(0, b"msg", &fresh));
    }

    #[test]
    fn stale_epoch_announcements_are_ignored() {
        let mut kc = KeyChain::new(0, 4);
        kc.set_peer_epoch(1, 5);
        kc.set_peer_epoch(1, 3);
        assert_eq!(kc.peer_epoch(1), 5);
    }

    #[test]
    fn directional_keys_differ() {
        // The key for 0→1 must differ from 1→0: a receiver cannot replay a
        // message back at its author.
        let mut a = KeyChain::new(0, 4);
        let mut b = KeyChain::new(1, 4);
        let mac = a.mac_for(1, b"msg");
        // Replayed to the original sender: must not verify.
        assert!(!a.verify_from(1, b"msg", &mac));
        assert!(b.verify_from(0, b"msg", &mac));
    }

    #[test]
    fn seven_replica_authenticator() {
        let mut primary = KeyChain::new(0, 7);
        let auth = primary.authenticate(b"m");
        assert_eq!(auth.entries.len(), 6);
        assert_eq!(auth.wire_bytes(), 6 * 17);
    }

    #[test]
    fn nonces_are_unique_per_mac() {
        let mut a = KeyChain::new(0, 4);
        let m1 = a.mac_for(1, b"x");
        let m2 = a.mac_for(1, b"x");
        assert_ne!(m1.nonce, m2.nonce);
    }
}
