//! Textbook RSA over [`crate::bignum::UBig`], used only for session-key
//! establishment.
//!
//! In BFT each principal has a public key; a replica or client periodically
//! sends a `NEW-KEY` message containing fresh symmetric session keys, each
//! encrypted under the recipient's public key, and signs the whole message.
//! That is the *only* use of public-key cryptography in the system — the
//! point the paper makes against Rampart and SecureRing, which signed every
//! protocol message and were orders of magnitude slower.
//!
//! Security notes: this is deliberately *textbook* RSA with a deterministic
//! digest pad — adequate for a research reproduction whose adversary model
//! is exercised via fault injection in tests, not for production use.

use crate::bignum::UBig;
use crate::md5;
use crate::CryptoError;
use rand::Rng;

/// Default modulus size in bits. Small by modern standards, but keygen and
/// signing must be fast inside tests; the simulation charges paper-era
/// RSA-1024 costs regardless (see `bft-sim::cost`).
pub const DEFAULT_MODULUS_BITS: usize = 512;

/// The public half of an RSA keypair.
#[derive(Clone, PartialEq, Eq)]
pub struct PublicKey {
    n: UBig,
    e: UBig,
}

impl std::fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PublicKey({} bits)", self.n.bits())
    }
}

/// A full RSA keypair.
#[derive(Clone)]
pub struct KeyPair {
    public: PublicKey,
    d: UBig,
}

impl std::fmt::Debug for KeyPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "KeyPair({} bits)", self.public.n.bits())
    }
}

/// An RSA signature (big-endian bytes of the signature integer).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Signature(pub Vec<u8>);

impl KeyPair {
    /// Generates a keypair with a modulus of about `bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 32`.
    pub fn generate<R: Rng>(rng: &mut R, bits: usize) -> KeyPair {
        assert!(bits >= 32, "modulus too small");
        let e = UBig::from(65537u64);
        loop {
            let p = UBig::random_prime(rng, bits / 2);
            let q = UBig::random_prime(rng, bits - bits / 2);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            let phi = p.sub(&UBig::one()).mul(&q.sub(&UBig::one()));
            if let Some(d) = e.mod_inv(&phi) {
                return KeyPair {
                    public: PublicKey { n, e },
                    d,
                };
            }
        }
    }

    /// Returns the public key.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }

    /// Signs a message: pad(MD5(msg))^d mod n.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        let m = pad_digest(msg, &self.public.n);
        Signature(m.mod_pow(&self.d, &self.public.n).to_bytes_be())
    }

    /// Decrypts a ciphertext produced by [`PublicKey::encrypt`].
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::Malformed`] if the ciphertext is out of range
    /// or the recovered plaintext does not carry the expected framing.
    pub fn decrypt(&self, ciphertext: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let c = UBig::from_bytes_be(ciphertext);
        if c >= self.public.n {
            return Err(CryptoError::Malformed);
        }
        let m = c.mod_pow(&self.d, &self.public.n);
        let bytes = m.to_bytes_be();
        // Framing: 0x01 marker, one length byte, payload, random filler.
        if bytes.len() < 2 || bytes[0] != 0x01 {
            return Err(CryptoError::Malformed);
        }
        let len = bytes[1] as usize;
        if bytes.len() < 2 + len {
            return Err(CryptoError::Malformed);
        }
        Ok(bytes[2..2 + len].to_vec())
    }
}

impl PublicKey {
    /// Verifies a signature over `msg`.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> Result<(), CryptoError> {
        let s = UBig::from_bytes_be(&sig.0);
        if s >= self.n {
            return Err(CryptoError::BadSignature);
        }
        let recovered = s.mod_pow(&self.e, &self.n);
        if recovered == pad_digest(msg, &self.n) {
            Ok(())
        } else {
            Err(CryptoError::BadSignature)
        }
    }

    /// Encrypts a short payload (e.g. a 16-byte session key).
    ///
    /// # Panics
    ///
    /// Panics if the payload is too long for the modulus (payload must fit
    /// in `modulus_bytes - 3` bytes).
    pub fn encrypt<R: Rng>(&self, rng: &mut R, payload: &[u8]) -> Vec<u8> {
        let cap = self.n.bits() / 8;
        assert!(
            payload.len() + 3 <= cap,
            "payload of {} bytes too long for {}-bit modulus",
            payload.len(),
            self.n.bits()
        );
        assert!(payload.len() < 256, "length byte overflow");
        let mut framed = Vec::with_capacity(cap - 1);
        framed.push(0x01);
        framed.push(payload.len() as u8);
        framed.extend_from_slice(payload);
        // Random filler keeps the integer large and un-guessable.
        while framed.len() < cap - 1 {
            framed.push(rng.gen::<u8>() | 1);
        }
        let m = UBig::from_bytes_be(&framed);
        debug_assert!(m < self.n);
        m.mod_pow(&self.e, &self.n).to_bytes_be()
    }

    /// Modulus size in bits.
    pub fn modulus_bits(&self) -> usize {
        self.n.bits()
    }
}

/// Deterministic digest padding: 0x02 marker, repeated digest to fill the
/// modulus width minus one byte.
fn pad_digest(msg: &[u8], n: &UBig) -> UBig {
    let d = md5::digest(msg);
    let cap = n.bits() / 8;
    let mut padded = Vec::with_capacity(cap - 1);
    padded.push(0x02);
    while padded.len() < cap.saturating_sub(1) {
        let take = (cap - 1 - padded.len()).min(16);
        padded.extend_from_slice(&d.as_bytes()[..take]);
    }
    UBig::from_bytes_be(&padded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair() -> (KeyPair, StdRng) {
        let mut rng = StdRng::seed_from_u64(0x5161);
        let kp = KeyPair::generate(&mut rng, 256);
        (kp, rng)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let (kp, _) = keypair();
        let sig = kp.sign(b"new-key message");
        kp.public().verify(b"new-key message", &sig).expect("valid");
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let (kp, _) = keypair();
        let sig = kp.sign(b"new-key message");
        assert_eq!(
            kp.public().verify(b"other message", &sig),
            Err(CryptoError::BadSignature)
        );
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let (kp, mut rng) = keypair();
        let other = KeyPair::generate(&mut rng, 256);
        let sig = kp.sign(b"msg");
        assert!(other.public().verify(b"msg", &sig).is_err());
    }

    #[test]
    fn verify_rejects_out_of_range_signature() {
        let (kp, _) = keypair();
        let huge = Signature(vec![0xff; 64]);
        assert!(kp.public().verify(b"msg", &huge).is_err());
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let (kp, mut rng) = keypair();
        let session_key = [0xabu8; 16];
        let ct = kp.public().encrypt(&mut rng, &session_key);
        assert_eq!(kp.decrypt(&ct).expect("valid"), session_key);
    }

    #[test]
    fn encrypt_is_randomized() {
        let (kp, mut rng) = keypair();
        let a = kp.public().encrypt(&mut rng, &[1, 2, 3]);
        let b = kp.public().encrypt(&mut rng, &[1, 2, 3]);
        assert_ne!(a, b);
        assert_eq!(kp.decrypt(&a).expect("a"), kp.decrypt(&b).expect("b"));
    }

    #[test]
    fn decrypt_rejects_garbage() {
        let (kp, _) = keypair();
        assert!(kp.decrypt(&[0xff; 64]).is_err());
    }

    #[test]
    fn empty_payload_roundtrip() {
        let (kp, mut rng) = keypair();
        let ct = kp.public().encrypt(&mut rng, &[]);
        assert_eq!(kp.decrypt(&ct).expect("valid"), Vec::<u8>::new());
    }
}
