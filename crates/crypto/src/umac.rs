//! A UMAC-style message authentication code.
//!
//! The paper uses UMAC32 [Black et al., CRYPTO '99]: a *universal-hash* MAC
//! whose cost is dominated by an extremely fast multiply-accumulate hash
//! (NH), with a block cipher applied only to the short hash output. This is
//! why the paper can say "the cost of MAC computation is negligible" — the
//! per-byte work is a fraction of MD5's.
//!
//! This module implements the same construction shape:
//!
//! 1. **NH hash**: the message is processed in 1024-byte blocks; each block
//!    is hashed with `NH(K, M) = Σ (M_2i +₃₂ K_2i) · (M_2i+1 +₃₂ K_2i+1)`
//!    over `u64`, where `+₃₂` is addition mod 2³².
//! 2. **Polynomial combination** of the per-block NH outputs over the prime
//!    field 2⁶⁴−59, so arbitrarily long messages reduce to one 64-bit value.
//! 3. **Pad derivation**: the final value is XOR-encrypted with an
//!    XTEA-generated pad keyed by the session key and the 64-bit nonce,
//!    producing an 8-byte tag. As in BFT, the (nonce, tag) pair is what
//!    travels in messages; BFT counts 16 bytes per authenticator entry.
//!
//! The NH key is derived from the 128-bit session key via XTEA in counter
//! mode, mirroring UMAC's KDF.

use crate::xtea::Xtea;

/// Bytes hashed per NH block (UMAC's L1 key length).
const NH_BLOCK: usize = 1024;
/// NH key words per block: one u32 per 4 message bytes.
const NH_KEY_WORDS: usize = NH_BLOCK / 4;
/// Prime modulus 2^64 - 59 for the polynomial hash.
const P64: u128 = 0xffff_ffff_ffff_ffc5;

/// An 8-byte MAC tag plus the nonce it was computed with.
///
/// BFT messages carry the tag and nonce; the receiver recomputes the tag
/// under the shared session key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Mac {
    /// Sender-chosen nonce; BFT uses a per-key counter.
    pub nonce: u64,
    /// The 8-byte tag.
    pub tag: [u8; 8],
}

impl Mac {
    /// Total wire size of a MAC entry (nonce + tag), as accounted by the
    /// network model.
    pub const WIRE_BYTES: usize = 16;
}

/// A 128-bit symmetric session key with its derived NH key material.
///
/// # Example
///
/// ```
/// use bft_crypto::umac::MacKey;
/// let key = MacKey::from_bytes([3; 16]);
/// let mac = key.mac(b"commit", 1);
/// assert!(key.verify(b"commit", 1, &mac.tag));
/// ```
#[derive(Clone)]
pub struct MacKey {
    cipher: Xtea,
    /// NH key, derived once at construction (UMAC's KDF output).
    nh_key: Box<[u32; NH_KEY_WORDS + 8]>,
    /// Polynomial key for combining block hashes, reduced into the field.
    poly_key: u64,
}

impl std::fmt::Debug for MacKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MacKey(…)")
    }
}

impl PartialEq for MacKey {
    fn eq(&self, other: &Self) -> bool {
        // Key equality is decided by derived material; sufficient for tests
        // and session-key bookkeeping.
        self.poly_key == other.poly_key && self.nh_key[..] == other.nh_key[..]
    }
}

impl Eq for MacKey {}

impl MacKey {
    /// Derives a MAC key from 16 bytes of session-key material.
    pub fn from_bytes(key: [u8; 16]) -> MacKey {
        let cipher = Xtea::new(key);
        let mut raw = vec![0u8; (NH_KEY_WORDS + 8) * 4];
        // Domain-separated nonce space for the KDF (top bit set) so the
        // same cipher can also generate tag pads (top bit clear).
        cipher.keystream(1 << 63, &mut raw);
        let mut nh_key = Box::new([0u32; NH_KEY_WORDS + 8]);
        for (i, chunk) in raw.chunks_exact(4).enumerate() {
            nh_key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        let mut poly_raw = [0u8; 8];
        cipher.keystream((1 << 63) | 1, &mut poly_raw);
        // Clamp into the field and avoid the degenerate zero key.
        let poly_key = (u64::from_le_bytes(poly_raw) % (P64 as u64 - 1)) + 1;
        MacKey {
            cipher,
            nh_key,
            poly_key,
        }
    }

    /// Computes the MAC of `msg` under `nonce`.
    ///
    /// Nonces must not repeat for a given key if confidentiality of the pad
    /// matters; BFT uses a monotone counter per session key (managed by
    /// [`crate::keychain::KeyChain`]).
    pub fn mac(&self, msg: &[u8], nonce: u64) -> Mac {
        let hash = self.universal_hash(msg);
        let mut pad = [0u8; 8];
        self.cipher.keystream(nonce & !(1 << 63), &mut pad);
        let tag = (hash ^ u64::from_le_bytes(pad)).to_le_bytes();
        Mac { nonce, tag }
    }

    /// Verifies a tag. Constant-time in the tag comparison.
    pub fn verify(&self, msg: &[u8], nonce: u64, tag: &[u8; 8]) -> bool {
        let expect = self.mac(msg, nonce);
        let acc = expect
            .tag
            .iter()
            .zip(tag)
            .fold(0u8, |acc, (a, b)| acc | (a ^ b));
        acc == 0
    }

    /// NH + polynomial universal hash of the whole message.
    fn universal_hash(&self, msg: &[u8]) -> u64 {
        // Include the length so messages that are prefixes of each other
        // hash differently (UMAC appends the length in its L2 phase).
        let mut acc: u128 = (msg.len() as u128 + 1) % P64;
        if msg.is_empty() {
            return self.poly_combine(acc, 0);
        }
        for block in msg.chunks(NH_BLOCK) {
            let h = self.nh_block(block);
            acc = (acc * self.poly_key as u128 + h as u128) % P64;
        }
        acc as u64
    }

    fn poly_combine(&self, acc: u128, h: u64) -> u64 {
        ((acc * self.poly_key as u128 + h as u128) % P64) as u64
    }

    /// The NH inner hash of one ≤1024-byte block.
    fn nh_block(&self, block: &[u8]) -> u64 {
        let mut acc = 0u64;
        let mut i = 0usize;
        let mut words = block.chunks_exact(8);
        for pair in &mut words {
            let m0 = u32::from_le_bytes(pair[..4].try_into().expect("4 bytes"));
            let m1 = u32::from_le_bytes(pair[4..].try_into().expect("4 bytes"));
            let a = m0.wrapping_add(self.nh_key[i]) as u64;
            let b = m1.wrapping_add(self.nh_key[i + 1]) as u64;
            acc = acc.wrapping_add(a.wrapping_mul(b));
            i += 2;
        }
        let rem = words.remainder();
        if !rem.is_empty() {
            // Zero-pad the trailing partial 8-byte group.
            let mut last = [0u8; 8];
            last[..rem.len()].copy_from_slice(rem);
            let m0 = u32::from_le_bytes(last[..4].try_into().expect("4 bytes"));
            let m1 = u32::from_le_bytes(last[4..].try_into().expect("4 bytes"));
            let a = m0.wrapping_add(self.nh_key[i]) as u64;
            let b = m1.wrapping_add(self.nh_key[i + 1]) as u64;
            acc = acc.wrapping_add(a.wrapping_mul(b));
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(byte: u8) -> MacKey {
        MacKey::from_bytes([byte; 16])
    }

    #[test]
    fn mac_roundtrip() {
        let k = key(1);
        let m = k.mac(b"pre-prepare body", 99);
        assert!(k.verify(b"pre-prepare body", 99, &m.tag));
    }

    #[test]
    fn rejects_tampered_message() {
        let k = key(1);
        let m = k.mac(b"payload", 5);
        assert!(!k.verify(b"payloaD", 5, &m.tag));
    }

    #[test]
    fn rejects_wrong_nonce() {
        let k = key(1);
        let m = k.mac(b"payload", 5);
        assert!(!k.verify(b"payload", 6, &m.tag));
    }

    #[test]
    fn rejects_wrong_key() {
        let m = key(1).mac(b"payload", 5);
        assert!(!key(2).verify(b"payload", 5, &m.tag));
    }

    #[test]
    fn empty_message_has_tag() {
        let k = key(7);
        let m = k.mac(b"", 0);
        assert!(k.verify(b"", 0, &m.tag));
        assert!(!k.verify(b"x", 0, &m.tag));
    }

    #[test]
    fn prefix_extension_changes_tag() {
        let k = key(7);
        let short = k.mac(b"abc", 3);
        let long = k.mac(b"abc\0", 3);
        assert_ne!(short.tag, long.tag);
    }

    #[test]
    fn block_boundary_lengths() {
        let k = key(4);
        for len in [
            0usize,
            1,
            7,
            8,
            9,
            NH_BLOCK - 1,
            NH_BLOCK,
            NH_BLOCK + 1,
            3 * NH_BLOCK + 5,
        ] {
            let msg = vec![0x5au8; len];
            let m = k.mac(&msg, len as u64);
            assert!(k.verify(&msg, len as u64, &m.tag), "len {len}");
            if len > 0 {
                let mut bad = msg.clone();
                bad[len / 2] ^= 1;
                assert!(!k.verify(&bad, len as u64, &m.tag), "len {len}");
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = key(9).mac(b"same", 11);
        let b = key(9).mac(b"same", 11);
        assert_eq!(a, b);
    }

    #[test]
    fn tag_distribution_sanity() {
        // Tags over distinct nonces should not collide for a small sample.
        let k = key(2);
        let mut tags = std::collections::HashSet::new();
        for nonce in 0..256u64 {
            tags.insert(k.mac(b"msg", nonce).tag);
        }
        assert_eq!(tags.len(), 256);
    }
}
