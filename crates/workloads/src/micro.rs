//! The paper's micro-benchmark "simple service" and its client driver.
//!
//! Section 4.1: "the simple service is really the skeleton of a real
//! service: it has no state and the service operations receive arguments
//! from the clients and return (zero-filled) results but they perform no
//! computation." Operations are denoted `a/b` for an `a`-KB argument and
//! `b`-KB result.

use bft_core::client::{ClientApi, ClientDriver};
use bft_core::service::{RestoreError, Service};
use bft_core::types::ClientId;
use bft_crypto::md5::Digest;

/// Builds a simple-service operation: a 5-byte header (read-only flag +
/// result size) followed by `arg_bytes` of zero padding.
pub fn simple_op(arg_bytes: usize, result_bytes: usize, read_only: bool) -> Vec<u8> {
    let mut op = Vec::with_capacity(5 + arg_bytes);
    op.push(u8::from(read_only));
    op.extend_from_slice(&(result_bytes as u32).to_le_bytes());
    op.resize(5 + arg_bytes, 0);
    op
}

/// The stateless skeleton service.
#[derive(Debug, Default, Clone)]
pub struct SimpleService;

impl SimpleService {
    fn result_of(op: &[u8]) -> Vec<u8> {
        let size = op
            .get(1..5)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
            .unwrap_or(0);
        vec![0u8; size as usize]
    }
}

impl Service for SimpleService {
    fn execute(&mut self, _client: ClientId, op: &[u8]) -> Vec<u8> {
        Self::result_of(op)
    }

    fn execute_read_only(&self, _client: ClientId, op: &[u8]) -> Vec<u8> {
        Self::result_of(op)
    }

    fn is_read_only(&self, op: &[u8]) -> bool {
        op.first() == Some(&1)
    }

    fn state_digest(&self) -> Digest {
        Digest::ZERO
    }

    fn snapshot(&self) -> Vec<u8> {
        Vec::new()
    }

    fn restore(&mut self, _snapshot: &[u8]) -> Result<(), RestoreError> {
        Ok(())
    }
}

/// A closed-loop micro-benchmark client: issues the same `a/b` operation
/// back to back, forever (or until `max_ops`).
#[derive(Debug, Clone)]
pub struct MicroDriver {
    /// Argument size in bytes.
    pub arg_bytes: usize,
    /// Result size in bytes.
    pub result_bytes: usize,
    /// Whether to use the read-only path.
    pub read_only: bool,
    /// Stop after this many operations (`u64::MAX` = run forever).
    pub max_ops: u64,
    /// Delay before the first operation (staggers client ramp-up so a
    /// large client population does not produce an artificial thundering
    /// herd at time zero).
    pub start_delay_ns: u64,
    issued: u64,
}

impl MicroDriver {
    /// A driver for operation `a/b` (sizes in bytes).
    pub fn new(arg_bytes: usize, result_bytes: usize, read_only: bool) -> MicroDriver {
        MicroDriver {
            arg_bytes,
            result_bytes,
            read_only,
            max_ops: u64::MAX,
            start_delay_ns: 0,
            issued: 0,
        }
    }

    /// Sets the ramp-up delay before the first operation.
    pub fn with_start_delay(mut self, delay_ns: u64) -> MicroDriver {
        self.start_delay_ns = delay_ns;
        self
    }

    /// Limits the number of operations.
    pub fn with_max_ops(mut self, max_ops: u64) -> MicroDriver {
        self.max_ops = max_ops;
        self
    }

    fn submit(&mut self, api: &mut ClientApi<'_, '_>) {
        if self.issued < self.max_ops {
            self.issued += 1;
            let op = simple_op(self.arg_bytes, self.result_bytes, self.read_only);
            api.submit(op, self.read_only);
        }
    }
}

impl ClientDriver for MicroDriver {
    fn on_start(&mut self, api: &mut ClientApi<'_, '_>) {
        if self.start_delay_ns > 0 {
            api.set_timer(self.start_delay_ns, 0);
        } else {
            self.submit(api);
        }
    }

    fn on_complete(&mut self, api: &mut ClientApi<'_, '_>, result: &[u8], _latency: u64) {
        debug_assert_eq!(result.len(), self.result_bytes);
        self.submit(api);
    }

    fn on_timer(&mut self, api: &mut ClientApi<'_, '_>, _token: u64) {
        if self.issued == 0 {
            self.submit(api);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_encoding_sizes() {
        let op = simple_op(4096, 0, false);
        assert_eq!(op.len(), 4101);
        assert_eq!(op[0], 0);
        let op = simple_op(0, 4096, true);
        assert_eq!(op.len(), 5);
        assert_eq!(op[0], 1);
    }

    #[test]
    fn service_returns_zero_filled_result() {
        let mut svc = SimpleService;
        let result = svc.execute(1, &simple_op(8, 1024, false));
        assert_eq!(result, vec![0u8; 1024]);
        assert_eq!(
            svc.execute_read_only(1, &simple_op(8, 16, true)),
            vec![0u8; 16]
        );
    }

    #[test]
    fn read_only_classification_follows_flag() {
        let svc = SimpleService;
        assert!(svc.is_read_only(&simple_op(0, 0, true)));
        assert!(!svc.is_read_only(&simple_op(0, 0, false)));
    }

    #[test]
    fn malformed_op_yields_empty_result() {
        let mut svc = SimpleService;
        assert!(svc.execute(1, &[1]).is_empty());
    }
}
