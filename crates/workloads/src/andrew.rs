//! The scaled Andrew benchmark (Section 5.1).
//!
//! The modified Andrew benchmark "emulates a software development
//! workload" in five phases: (1) create the directory tree, (2) copy the
//! source tree, (3) stat every file, (4) read every file, (5) compile.
//! The paper scales it by making `n` copies of the source tree in the
//! first two phases and operating on all copies in the remaining phases:
//! Andrew100 (n=100, ≈200 MB) and Andrew500 (n=500, ≈1 GB).
//!
//! Each copy's source tree is ≈2 MB, deterministically generated so every
//! run is identical. Client compute times model the benchmark process
//! itself (the paper notes "the client spends a significant fraction of
//! the elapsed time computing between operations").

use crate::script::{Script, WorkItem};
use bft_fs::client::FileAction;
use bft_sim::time::dur;

/// Tunable compute-time constants for the Andrew client.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq)]
pub struct AndrewTimings {
    /// Benchmark bookkeeping per directory created (phase 1).
    pub per_mkdir_ns: u64,
    /// `cp` process work per file copied (phase 2).
    pub per_copy_ns: u64,
    /// `ls -l` style work per entry examined (phase 3).
    pub per_stat_ns: u64,
    /// `grep`-style scanning per file read (phase 4), plus per byte.
    pub per_read_ns: u64,
    /// Per byte scanned in phase 4.
    pub per_read_byte_ns: u64,
    /// Compilation time per source file (phase 5).
    pub per_compile_ns: u64,
}

impl Default for AndrewTimings {
    fn default() -> Self {
        AndrewTimings {
            per_mkdir_ns: dur::millis(2),
            per_copy_ns: dur::millis(8),
            per_stat_ns: dur::micros(500),
            per_read_ns: dur::millis(1),
            per_read_byte_ns: 250,
            // An era gcc took seconds per file; 160 ms is conservative and
            // makes phase 5 compute-dominated as in the real benchmark.
            per_compile_ns: dur::millis(160),
        }
    }
}

/// The per-copy source tree: directory names and (relative path, size)
/// file list. ≈2 MB per copy across 20 files in 5 directories.
#[derive(Debug, Clone)]
pub struct SourceTree {
    /// Directory names under the copy root.
    pub dirs: Vec<String>,
    /// (directory index, file name, bytes). Files ending in `.c` compile
    /// in phase 5.
    pub files: Vec<(usize, String, u64)>,
}

impl SourceTree {
    /// The deterministic tree used by every copy.
    pub fn standard() -> SourceTree {
        let dirs = vec![
            "src".to_owned(),
            "include".to_owned(),
            "lib".to_owned(),
            "doc".to_owned(),
            "obj".to_owned(),
        ];
        let mut files = Vec::new();
        // 12 C sources of varying size in src/ (≈1.1 MB).
        for i in 0..12u64 {
            files.push((0, format!("f{i}.c"), 40_000 + (i * 7919) % 110_000));
        }
        // 5 headers (≈60 KB).
        for i in 0..5u64 {
            files.push((1, format!("h{i}.h"), 8_000 + (i * 4177) % 9_000));
        }
        // 2 library blobs (≈700 KB).
        files.push((2, "libfoo.a".to_owned(), 400_000));
        files.push((2, "libbar.a".to_owned(), 300_000));
        // 1 document (≈100 KB).
        files.push((3, "manual.txt".to_owned(), 100_000));
        SourceTree { dirs, files }
    }

    /// Total bytes per copy.
    pub fn bytes(&self) -> u64 {
        self.files.iter().map(|(_, _, s)| s).sum()
    }
}

/// Generates the scaled Andrew script for `copies` copies.
pub fn andrew_script(copies: u32, timings: AndrewTimings) -> Script {
    let tree = SourceTree::standard();
    let mut items = Vec::new();
    // Phase 1: create the directory trees.
    for c in 0..copies {
        items.push(WorkItem::Compute(timings.per_mkdir_ns));
        items.push(WorkItem::Action(FileAction::Mkdir(format!("copy{c}"))));
        for d in &tree.dirs {
            items.push(WorkItem::Compute(timings.per_mkdir_ns));
            items.push(WorkItem::Action(FileAction::Mkdir(format!("copy{c}/{d}"))));
        }
    }
    // Phase 2: copy the source tree.
    for c in 0..copies {
        for (di, name, size) in &tree.files {
            items.push(WorkItem::Compute(timings.per_copy_ns));
            items.push(WorkItem::Action(FileAction::CreateFile(
                format!("copy{c}/{}/{name}", tree.dirs[*di]),
                *size,
            )));
        }
    }
    // Phase 3: examine the status of every file (find | ls -l).
    for c in 0..copies {
        for d in &tree.dirs {
            items.push(WorkItem::Compute(timings.per_stat_ns));
            items.push(WorkItem::Action(FileAction::ListDir(format!(
                "copy{c}/{d}"
            ))));
        }
        for (di, name, _) in &tree.files {
            items.push(WorkItem::Compute(timings.per_stat_ns));
            items.push(WorkItem::Action(FileAction::Stat(format!(
                "copy{c}/{}/{name}",
                tree.dirs[*di]
            ))));
        }
    }
    // Phase 4: read every byte of every file (grep -r).
    for c in 0..copies {
        for (di, name, size) in &tree.files {
            items.push(WorkItem::Compute(
                timings.per_read_ns + size * timings.per_read_byte_ns,
            ));
            items.push(WorkItem::Action(FileAction::ReadFile(format!(
                "copy{c}/{}/{name}",
                tree.dirs[*di]
            ))));
        }
    }
    // Phase 5: compile — read each source, compute, write the object.
    for c in 0..copies {
        for (di, name, size) in &tree.files {
            if !name.ends_with(".c") {
                continue;
            }
            items.push(WorkItem::Action(FileAction::ReadFile(format!(
                "copy{c}/{}/{name}",
                tree.dirs[*di]
            ))));
            items.push(WorkItem::Compute(timings.per_compile_ns));
            items.push(WorkItem::Action(FileAction::CreateFile(
                format!("copy{c}/obj/{}.o", name.trim_end_matches(".c")),
                size * 4 / 5,
            )));
        }
        items.push(WorkItem::Mark); // one copy fully built
    }
    Script { items }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_is_about_two_megabytes() {
        let tree = SourceTree::standard();
        let mb = tree.bytes() as f64 / 1e6;
        assert!((1.5..2.5).contains(&mb), "tree is {mb} MB");
        assert_eq!(tree.files.len(), 20);
    }

    #[test]
    fn scaling_matches_paper_sizes() {
        let tree = SourceTree::standard();
        let a100 = 100 * tree.bytes();
        let a500 = 500 * tree.bytes();
        assert!(
            (150e6..260e6).contains(&(a100 as f64)),
            "Andrew100 ≈ 200 MB"
        );
        assert!((0.8e9..1.3e9).contains(&(a500 as f64)), "Andrew500 ≈ 1 GB");
    }

    #[test]
    fn script_structure() {
        let s = andrew_script(2, AndrewTimings::default());
        // Phase 1: 2 × 6 mkdirs; phase 2: 2 × 20 creates; phase 3: 2 × 25;
        // phase 4: 2 × 20 reads; phase 5: 2 × 12 × 2.
        assert_eq!(s.action_count(), 2 * (6 + 20 + 25 + 20 + 24));
        assert_eq!(s.mark_count(), 2);
        assert!(s.compute_ns() > 0);
    }

    #[test]
    fn script_is_deterministic() {
        let a = andrew_script(3, AndrewTimings::default());
        let b = andrew_script(3, AndrewTimings::default());
        assert_eq!(a.items, b.items);
    }

    #[test]
    fn script_executes_cleanly() {
        let runner = crate::script::run_script_locally(andrew_script(1, AndrewTimings::default()));
        assert_eq!(runner.failed, 0);
        assert!(
            runner.stats().lookup_hits > 0,
            "path cache must be exercised"
        );
    }
}
