//! Experiment runners shared by the benchmark harness and the shape
//! tests: micro-benchmark latency/throughput for BFT and NO-REP, and
//! whole-workload file-system runs for BFS, NO-REP, and NFS-STD.

use crate::direct::{DirectClient, DirectMicroDriver, DirectMsg, DirectServer};
use crate::fsdriver::{BfsScriptDriver, DirectScriptDriver};
use crate::micro::{MicroDriver, SimpleService};
use crate::script::Script;
use bft_core::cluster::Cluster;
use bft_core::config::Config;
use bft_fs::client::NfsClientConfig;
use bft_fs::disk::ServerMode;
use bft_fs::service::FsService;
use bft_fs::state::DataMode;
use bft_sim::time::dur;
use bft_sim::{CostModel, NetConfig, Simulation, Summary};

/// Default seed for experiments (results are deterministic anyway; the
/// seed only feeds fault injection and workload mixes).
pub const SEED: u64 = 0xbf7_2001;

/// An operation-shape descriptor: `a/b` sizes plus read-only flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpShape {
    /// Argument bytes.
    pub arg: usize,
    /// Result bytes.
    pub result: usize,
    /// Use the read-only path.
    pub read_only: bool,
}

impl OpShape {
    /// Read-write operation with the given sizes.
    pub fn rw(arg: usize, result: usize) -> OpShape {
        OpShape {
            arg,
            result,
            read_only: false,
        }
    }

    /// Read-only operation with the given sizes.
    pub fn ro(arg: usize, result: usize) -> OpShape {
        OpShape {
            arg,
            result,
            read_only: true,
        }
    }
}

/// Measures BFT invocation latency with a single client.
pub fn bft_latency(cfg: Config, shape: OpShape, samples: u64) -> Summary {
    const WARMUP: u64 = 10;
    let mut cluster = Cluster::new(SEED, NetConfig::SWITCHED_100MBPS, cfg, |_| SimpleService);
    cluster.add_client(
        MicroDriver::new(shape.arg, shape.result, shape.read_only).with_max_ops(samples + WARMUP),
    );
    // Step one event at a time through the warmup operations, then reset
    // the metrics so exactly the measured operations land in the latency
    // histogram.
    while cluster.completed_ops() < WARMUP && cluster.sim.step() {}
    cluster.sim.metrics_mut().reset();
    let mut guard = 0;
    while cluster.completed_ops() < samples && guard < 10_000 {
        cluster.run_for(dur::millis(50));
        guard += 1;
    }
    cluster.sim.metrics().summary("client.latency")
}

/// Measures NO-REP invocation latency with a single client.
pub fn norep_latency(shape: OpShape, samples: u64) -> Summary {
    let mut sim: Simulation<DirectMsg> = Simulation::new(SEED, NetConfig::SWITCHED_100MBPS);
    let server = sim.add_node(Box::new(DirectServer::new(
        SimpleService,
        CostModel::PIII_600,
    )));
    sim.add_node(Box::new(DirectClient::new(
        server,
        CostModel::PIII_600,
        DirectMicroDriver {
            arg_bytes: shape.arg,
            result_bytes: shape.result,
        },
    )));
    // Warmup, reset, measure — as in [`bft_latency`].
    while sim.metrics().counter("client.ops_completed") < 10 && sim.step() {}
    sim.metrics_mut().reset();
    let mut guard = 0;
    while sim.metrics().counter("client.ops_completed") < samples && guard < 10_000 {
        sim.run_for(dur::millis(50));
        guard += 1;
    }
    sim.metrics().summary("client.latency")
}

/// Result of a throughput measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Throughput {
    /// Completed operations per second over the measurement window.
    pub ops_per_sec: f64,
    /// Deliveries dropped (network or socket-buffer) during the window.
    pub drops: u64,
}

/// Measures BFT throughput with `clients` closed-loop clients.
pub fn bft_throughput(cfg: Config, clients: u32, shape: OpShape) -> Throughput {
    bft_throughput_windowed(cfg, clients, shape, dur::secs(2), dur::secs(2))
}

/// Measures BFT throughput with explicit warmup/measure windows.
pub fn bft_throughput_windowed(
    cfg: Config,
    clients: u32,
    shape: OpShape,
    warmup_ns: u64,
    window_ns: u64,
) -> Throughput {
    let mut cluster = Cluster::new(SEED, NetConfig::SWITCHED_100MBPS, cfg, |_| SimpleService);
    // "The client processes were evenly distributed over 5 client
    // machines" (Section 4.3): group the client nodes onto 5 shared NICs.
    let mut machine_firsts: Vec<u32> = Vec::new();
    for i in 0..clients {
        let id = cluster.add_client(
            MicroDriver::new(shape.arg, shape.result, shape.read_only)
                .with_start_delay(i as u64 * dur::micros(400)),
        );
        let machine = (i % 5) as usize;
        if machine_firsts.len() <= machine {
            machine_firsts.push(id);
        } else {
            let host = machine_firsts[machine];
            cluster.sim.assign_host(id, host);
        }
    }
    cluster.run_for(warmup_ns);
    cluster.sim.metrics_mut().reset();
    cluster.run_for(window_ns);
    let ops = cluster.sim.metrics().counter("client.ops_completed");
    let drops =
        cluster.sim.metrics().counter("net.dropped") + cluster.sim.metrics().counter("cpu.dropped");
    Throughput {
        ops_per_sec: ops as f64 / (window_ns as f64 / 1e9),
        drops,
    }
}

/// Measures NO-REP throughput with `clients` closed-loop clients. The
/// server gets a finite input queue (UDP socket buffer); overload drops
/// requests, and since NO-REP never retransmits, the affected clients
/// stall — the paper reports no NO-REP data beyond 15 clients for this
/// reason.
pub fn norep_throughput(clients: u32, shape: OpShape) -> Throughput {
    norep_throughput_windowed(clients, shape, dur::secs(2), dur::secs(2))
}

/// Measures NO-REP throughput with explicit windows.
pub fn norep_throughput_windowed(
    clients: u32,
    shape: OpShape,
    warmup_ns: u64,
    window_ns: u64,
) -> Throughput {
    let mut sim: Simulation<DirectMsg> = Simulation::new(SEED, NetConfig::SWITCHED_100MBPS);
    let server = sim.add_node(Box::new(DirectServer::new(
        SimpleService,
        CostModel::PIII_600,
    )));
    // A 64 KB-era socket buffer, expressed as queueing time.
    sim.set_cpu_queue_limit(server, dur::micros(400));
    let mut machine_firsts: Vec<u32> = Vec::new();
    for i in 0..clients {
        let id = sim.add_node(Box::new(DirectClient::new(
            server,
            CostModel::PIII_600,
            DirectMicroDriver {
                arg_bytes: shape.arg,
                result_bytes: shape.result,
            },
        )));
        let machine = (i % 5) as usize;
        if machine_firsts.len() <= machine {
            machine_firsts.push(id);
        } else {
            let host = machine_firsts[machine];
            sim.assign_host(id, host);
        }
    }
    // NO-REP clients cannot stagger (the real benchmark's processes all
    // start together), and with no retransmission an initial overload is
    // permanent — matching the paper's missing data points.
    sim.run_for(warmup_ns);
    let warmup_drops = sim.metrics().counter("net.dropped") + sim.metrics().counter("cpu.dropped");
    sim.metrics_mut().reset();
    sim.run_for(window_ns);
    let ops = sim.metrics().counter("client.ops_completed");
    // NO-REP never retransmits, so a request lost at any point (including
    // ramp-up) permanently stalls its client — count drops over the whole
    // run, as the paper's missing data points do.
    let drops =
        warmup_drops + sim.metrics().counter("net.dropped") + sim.metrics().counter("cpu.dropped");
    Throughput {
        ops_per_sec: ops as f64 / (window_ns as f64 / 1e9),
        drops,
    }
}

/// Result of a file-system workload run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FsRun {
    /// Elapsed simulated time for the whole script.
    pub elapsed_ns: u64,
    /// NFS RPCs issued by the client.
    pub rpcs: u64,
    /// Marks (logical transactions) completed.
    pub marks: u64,
}

impl FsRun {
    /// Elapsed seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed_ns as f64 / 1e9
    }

    /// Marks per second (PostMark transactions/sec).
    pub fn marks_per_sec(&self) -> f64 {
        self.marks as f64 / self.elapsed_secs()
    }
}

/// Maximum simulated time allowed for a file-system run.
const FS_RUN_CAP_NS: u64 = dur::secs(40_000);

/// Runs a script against BFS (4 replicas, f = 1 unless `cfg` says
/// otherwise).
pub fn run_bfs(cfg: Config, script: Script, client_cfg: NfsClientConfig) -> FsRun {
    let mut cluster = Cluster::new(SEED, NetConfig::SWITCHED_100MBPS, cfg, |_| {
        FsService::for_benchmarks(ServerMode::Bfs)
    });
    let client = cluster.add_client(BfsScriptDriver::new(script, client_cfg));
    loop {
        cluster.run_for(dur::secs(5));
        let driver = cluster.client::<BfsScriptDriver>(client).driver();
        if let Some(done) = driver.finished_at_ns {
            assert_eq!(driver.runner().failed, 0, "script actions failed");
            return FsRun {
                elapsed_ns: done,
                rpcs: driver.runner().stats().rpcs,
                marks: driver.runner().marks,
            };
        }
        assert!(
            cluster.sim.now().nanos() < FS_RUN_CAP_NS,
            "BFS run did not finish: {:?}",
            driver.runner().progress()
        );
    }
}

/// Runs a script against an unreplicated server of the given mode
/// (NO-REP or NFS-STD).
pub fn run_direct_fs(mode: ServerMode, script: Script, client_cfg: NfsClientConfig) -> FsRun {
    let mut sim: Simulation<DirectMsg> = Simulation::new(SEED, NetConfig::SWITCHED_100MBPS);
    let service = FsService::new(DataMode::MetadataOnly, bft_fs::disk::FsCostModel::new(mode));
    let server = sim.add_node(Box::new(DirectServer::new(service, CostModel::PIII_600)));
    let client = sim.add_node(Box::new(DirectClient::new(
        server,
        CostModel::PIII_600,
        DirectScriptDriver::new(script, client_cfg),
    )));
    loop {
        sim.run_for(dur::secs(5));
        let driver = sim
            .node_as::<DirectClient<DirectScriptDriver>>(client)
            .driver();
        if let Some(done) = driver.finished_at_ns {
            assert_eq!(driver.runner().failed, 0, "script actions failed");
            return FsRun {
                elapsed_ns: done,
                rpcs: driver.runner().stats().rpcs,
                marks: driver.runner().marks,
            };
        }
        assert!(
            sim.now().nanos() < FS_RUN_CAP_NS,
            "direct run did not finish: {:?}",
            driver.runner().progress()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::andrew::{andrew_script, AndrewTimings};

    #[test]
    fn bft_latency_measures() {
        let s = bft_latency(Config::new(1), OpShape::rw(8, 8), 20);
        assert_eq!(s.count, 20);
        assert!(s.mean > 0.0);
    }

    #[test]
    fn norep_is_faster_than_bft() {
        let bft = bft_latency(Config::new(1), OpShape::rw(8, 0), 30);
        let norep = norep_latency(OpShape::rw(8, 0), 30);
        assert!(
            bft.mean > norep.mean,
            "replication must cost something: {} vs {}",
            bft.mean,
            norep.mean
        );
        // But not orders of magnitude (the paper's whole point).
        assert!(bft.mean < 8.0 * norep.mean);
    }

    #[test]
    fn throughput_measurement_runs() {
        let t = bft_throughput_windowed(
            Config::new(1),
            5,
            OpShape::rw(8, 0),
            dur::millis(200),
            dur::millis(500),
        );
        assert!(t.ops_per_sec > 100.0);
    }

    #[test]
    fn tiny_andrew_runs_on_all_three_systems() {
        let timings = AndrewTimings::default();
        let script = andrew_script(1, timings);
        let client_cfg = NfsClientConfig::default();
        let bfs = run_bfs(Config::new(1), script.clone(), client_cfg);
        let norep = run_direct_fs(ServerMode::NoRep, script.clone(), client_cfg);
        let nfsstd = run_direct_fs(ServerMode::NfsStd, script, client_cfg);
        assert!(
            bfs.elapsed_ns > norep.elapsed_ns,
            "BFS pays for replication"
        );
        assert!(norep.rpcs == bfs.rpcs, "same client model → same RPCs");
        assert!(nfsstd.elapsed_ns > 0);
    }
}
