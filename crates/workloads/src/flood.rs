//! Open-loop paced client driver for overload experiments.
//!
//! The closed-loop drivers elsewhere in this crate submit the next
//! operation when the previous completes, so their offered load shrinks
//! as the cluster slows — useless for a degradation curve, whose x-axis
//! *is* offered load. [`FloodDriver`] instead offers one operation every
//! `interval_ns` regardless of progress. The protocol client underneath
//! stays closed-loop (one outstanding operation); a tick that finds the
//! previous operation still in flight counts the offer as skipped
//! rather than queueing it, which keeps offered load honest in the
//! throughput accounting: goodput = completed, offered = ticks.

use bft_core::client::{ClientApi, ClientDriver};

/// Submits a fixed operation at a fixed interval, open loop.
#[derive(Debug, Clone)]
pub struct FloodDriver {
    /// Nanoseconds between offered operations.
    pub interval_ns: u64,
    /// The operation body each tick submits.
    pub op: Vec<u8>,
    /// Whether to request the read-only path.
    pub read_only: bool,
    offered: u64,
    skipped: u64,
}

impl FloodDriver {
    /// A driver offering `op` every `interval_ns` nanoseconds.
    pub fn new(interval_ns: u64, op: Vec<u8>, read_only: bool) -> FloodDriver {
        FloodDriver {
            interval_ns: interval_ns.max(1),
            op,
            read_only,
            offered: 0,
            skipped: 0,
        }
    }

    /// Operations offered so far (submitted + skipped).
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Offers that found the previous operation still in flight and were
    /// dropped at the source. `offered - skipped` were actually
    /// submitted; completions below even that mark replica-side shedding
    /// or loss.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    fn offer(&mut self, api: &mut ClientApi<'_, '_>) {
        self.offered += 1;
        if api.busy() {
            self.skipped += 1;
            api.metrics().incr("client.offers_skipped");
        } else {
            api.submit(self.op.clone(), self.read_only);
        }
    }
}

impl ClientDriver for FloodDriver {
    fn on_start(&mut self, api: &mut ClientApi<'_, '_>) {
        self.offer(api);
        api.set_timer(self.interval_ns, 0);
    }

    fn on_complete(&mut self, _api: &mut ClientApi<'_, '_>, _result: &[u8], _latency_ns: u64) {
        // Open loop: pacing comes from the timer alone.
    }

    fn on_timer(&mut self, api: &mut ClientApi<'_, '_>, _token: u64) {
        self.offer(api);
        api.set_timer(self.interval_ns, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_is_never_zero() {
        let d = FloodDriver::new(0, vec![1], false);
        assert_eq!(d.interval_ns, 1);
        assert_eq!(d.offered(), 0);
        assert_eq!(d.skipped(), 0);
    }
}
