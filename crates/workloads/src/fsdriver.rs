//! Drivers that run a workload [`Script`] over each of the three systems
//! the paper compares: BFS (replicated with BFT), NO-REP, and NFS-STD.
//!
//! The script and the NFS-client cache model are identical across
//! systems; only the transport (BFT client vs plain datagrams) and the
//! server's cost model differ — exactly the controlled comparison of
//! Section 5.

use crate::direct::{DirectApi, DirectDriver};
use crate::script::{Drive, Script, ScriptRunner};
use bft_core::client::{ClientApi, ClientDriver};
use bft_core::wire::Wire;
use bft_fs::client::NfsClientConfig;
use bft_fs::ops::NfsResult;

/// Runs a script through the BFT client (the BFS configuration).
pub struct BfsScriptDriver {
    runner: ScriptRunner,
    /// Simulated time when the script finished (ns), if done.
    pub finished_at_ns: Option<u64>,
}

impl BfsScriptDriver {
    /// Creates the driver.
    pub fn new(script: Script, client_cfg: NfsClientConfig) -> BfsScriptDriver {
        BfsScriptDriver {
            runner: ScriptRunner::new(script, client_cfg),
            finished_at_ns: None,
        }
    }

    /// The underlying runner (progress/statistics).
    pub fn runner(&self) -> &ScriptRunner {
        &self.runner
    }

    fn pump(&mut self, api: &mut ClientApi<'_, '_>, mut response: Option<NfsResult>) {
        loop {
            match self.runner.advance(response.take().as_ref()) {
                Drive::Rpc(op) => {
                    let read_only = op.is_read_only();
                    api.submit(op.to_bytes(), read_only);
                    return;
                }
                Drive::Compute(ns) => api.charge(ns),
                Drive::Done => {
                    if self.finished_at_ns.is_none() {
                        self.finished_at_ns = Some(api.now().nanos());
                        let now = api.now().nanos();
                        api.metrics().record("fs.script_done_ns", now);
                        let marks = self.runner.marks;
                        api.metrics().add("fs.marks", marks);
                    }
                    return;
                }
            }
        }
    }
}

impl ClientDriver for BfsScriptDriver {
    fn on_start(&mut self, api: &mut ClientApi<'_, '_>) {
        self.pump(api, None);
    }

    fn on_complete(&mut self, api: &mut ClientApi<'_, '_>, result: &[u8], _latency: u64) {
        let response =
            NfsResult::from_bytes(result).unwrap_or(NfsResult::Err(bft_fs::ops::NfsError::Inval));
        self.pump(api, Some(response));
    }
}

/// Runs a script over plain datagrams (the NO-REP and NFS-STD
/// configurations — they differ only in the server's cost model).
pub struct DirectScriptDriver {
    runner: ScriptRunner,
    /// Simulated time when the script finished (ns), if done.
    pub finished_at_ns: Option<u64>,
}

impl DirectScriptDriver {
    /// Creates the driver.
    pub fn new(script: Script, client_cfg: NfsClientConfig) -> DirectScriptDriver {
        DirectScriptDriver {
            runner: ScriptRunner::new(script, client_cfg),
            finished_at_ns: None,
        }
    }

    /// The underlying runner.
    pub fn runner(&self) -> &ScriptRunner {
        &self.runner
    }

    fn pump(&mut self, api: &mut DirectApi<'_, '_>, mut response: Option<NfsResult>) {
        loop {
            match self.runner.advance(response.take().as_ref()) {
                Drive::Rpc(op) => {
                    api.submit(op.to_bytes());
                    return;
                }
                Drive::Compute(ns) => api.charge(ns),
                Drive::Done => {
                    if self.finished_at_ns.is_none() {
                        self.finished_at_ns = Some(api.now().nanos());
                        let now = api.now().nanos();
                        api.metrics().record("fs.script_done_ns", now);
                        let marks = self.runner.marks;
                        api.metrics().add("fs.marks", marks);
                    }
                    return;
                }
            }
        }
    }
}

impl DirectDriver for DirectScriptDriver {
    fn on_start(&mut self, api: &mut DirectApi<'_, '_>) {
        self.pump(api, None);
    }

    fn on_complete(&mut self, api: &mut DirectApi<'_, '_>, result: &[u8], _latency: u64) {
        let response =
            NfsResult::from_bytes(result).unwrap_or(NfsResult::Err(bft_fs::ops::NfsError::Inval));
        self.pump(api, Some(response));
    }
}
