#![warn(missing_docs)]

//! Workloads and experiment drivers for the DSN 2001 evaluation.
//!
//! - [`micro`]: the paper's "simple service" micro-benchmark (zero-filled
//!   arguments/results, no computation) and its closed-loop client;
//! - [`direct`]: the NO-REP baseline — an unreplicated server over plain
//!   datagrams with no retransmission;
//! - [`script`]: workload scripts and the runner that feeds them through
//!   the kernel-NFS-client cache model;
//! - [`andrew`]: the scaled Andrew benchmark (Andrew100 / Andrew500);
//! - [`postmark`]: the PostMark benchmark;
//! - [`fsdriver`]: script drivers for BFS and the unreplicated baselines;
//! - [`harness`]: ready-made latency/throughput/workload experiment
//!   runners used by the benches and shape tests;
//! - [`mix`]: read/write-mix clients for the read-lease experiments,
//!   with per-kind latency collection;
//! - [`flood`]: the open-loop paced driver for the overload
//!   degradation-curve experiments.

pub mod andrew;
pub mod direct;
pub mod flood;
pub mod fsdriver;
pub mod harness;
pub mod micro;
pub mod mix;
pub mod postmark;
pub mod script;

pub use andrew::{andrew_script, AndrewTimings};
pub use direct::{DirectClient, DirectDriver, DirectMicroDriver, DirectMsg, DirectServer};
pub use flood::FloodDriver;
pub use fsdriver::{BfsScriptDriver, DirectScriptDriver};
pub use harness::{
    bft_latency, bft_throughput, norep_latency, norep_throughput, run_bfs, run_direct_fs, FsRun,
    OpShape, Throughput,
};
pub use micro::{simple_op, MicroDriver, SimpleService};
pub use mix::{read_mix_run, MixStats, ReadMixDriver};
pub use postmark::{postmark_script, PostmarkConfig};
pub use script::{Drive, Script, ScriptRunner, WorkItem};
