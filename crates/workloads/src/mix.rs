//! Read/write-mix client driver and runner for the read-lease
//! experiments (arXiv:2107.11144): closed-loop clients that interleave
//! read-only and read-write operations at a configured ratio against the
//! stateful counter service, keeping read and write latencies in
//! separate histograms — the shared `client.latency` metric lumps both,
//! which would hide exactly the effect the lease experiments measure.
//!
//! The counter service (not the stateless micro-benchmark skeleton) is
//! essential here: its read results depend on the write history, so
//! replicas answering at diverging states return mismatched replies and
//! the leases-off read-only path genuinely retries and falls back. The
//! zero-filled simple service can never conflict.

use bft_core::client::{ClientApi, ClientDriver};
use bft_core::cluster::Cluster;
use bft_core::config::Config;
use bft_core::service::CounterService;
use bft_sim::time::dur;
use bft_sim::NetConfig;

/// A closed-loop client issuing counter reads and writes at a fixed
/// ratio, with the per-operation choice drawn from a deterministic
/// per-client PRNG so runs replay exactly. Latencies are collected per
/// kind.
#[derive(Debug, Clone)]
pub struct ReadMixDriver {
    /// Writes per 1000 operations (the "conflict rate": every write the
    /// primary orders fences or revokes outstanding leases, and changes
    /// the value concurrent reads observe).
    pub write_permille: u32,
    /// Stop after this many operations (`u64::MAX` = run forever).
    pub max_ops: u64,
    /// Delay before the first operation (client ramp-up stagger).
    pub start_delay_ns: u64,
    /// Completed read-only operation latencies, in nanoseconds.
    pub read_latencies_ns: Vec<u64>,
    /// Completed read-write operation latencies, in nanoseconds.
    pub write_latencies_ns: Vec<u64>,
    rng: u64,
    issued: u64,
    last_was_read: bool,
}

impl ReadMixDriver {
    /// A driver issuing `write_permille` writes (`add 1`) per 1000 ops,
    /// the rest reads (`get`), seeded deterministically.
    pub fn new(write_permille: u32, seed: u64) -> ReadMixDriver {
        ReadMixDriver {
            write_permille,
            max_ops: u64::MAX,
            start_delay_ns: 0,
            read_latencies_ns: Vec::new(),
            write_latencies_ns: Vec::new(),
            rng: seed | 1,
            issued: 0,
            last_was_read: false,
        }
    }

    /// Sets the ramp-up delay before the first operation.
    pub fn with_start_delay(mut self, delay_ns: u64) -> ReadMixDriver {
        self.start_delay_ns = delay_ns;
        self
    }

    /// Limits the number of operations.
    pub fn with_max_ops(mut self, max_ops: u64) -> ReadMixDriver {
        self.max_ops = max_ops;
        self
    }

    fn next_is_write(&mut self) -> bool {
        // splitmix64 step: well-distributed low bits from a cheap state.
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z % 1000) < u64::from(self.write_permille)
    }

    fn submit(&mut self, api: &mut ClientApi<'_, '_>) {
        if self.issued < self.max_ops {
            self.issued += 1;
            let write = self.next_is_write();
            self.last_was_read = !write;
            let op = if write {
                CounterService::add_op(1)
            } else {
                CounterService::get_op()
            };
            api.submit(op, !write);
        }
    }
}

impl ClientDriver for ReadMixDriver {
    fn on_start(&mut self, api: &mut ClientApi<'_, '_>) {
        if self.start_delay_ns > 0 {
            api.set_timer(self.start_delay_ns, 0);
        } else {
            self.submit(api);
        }
    }

    fn on_complete(&mut self, api: &mut ClientApi<'_, '_>, _result: &[u8], latency: u64) {
        if self.last_was_read {
            self.read_latencies_ns.push(latency);
        } else {
            self.write_latencies_ns.push(latency);
        }
        self.submit(api);
    }

    fn on_timer(&mut self, api: &mut ClientApi<'_, '_>, _token: u64) {
        if self.issued == 0 {
            self.submit(api);
        }
    }
}

/// Aggregate results of a read/write-mix run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixStats {
    /// Read-only operations completed across all clients.
    pub reads: u64,
    /// Read-write operations completed across all clients.
    pub writes: u64,
    /// Median read latency, microseconds.
    pub read_p50_us: f64,
    /// 99th-percentile read latency, microseconds.
    pub read_p99_us: f64,
    /// Median write latency, microseconds.
    pub write_p50_us: f64,
    /// Reads answered from a live lease (one round at a holder).
    pub lease_reads: u64,
    /// Read-only rounds re-tried after replicas answered at diverging
    /// states (no `2f+1` matching replies).
    pub ro_retries: u64,
    /// Reads that exhausted the read-only path and were re-issued on the
    /// ordered read-write path.
    pub ro_fallbacks: u64,
}

fn percentile_us(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)] as f64 / 1e3
}

/// Runs `clients` closed-loop mix clients for `ops_per_client` operations
/// each and reports per-kind latency percentiles plus the lease-path
/// counters. `jitter_ns` adds uniform random per-message delay, widening
/// the window in which replicas answer reads at diverging states.
/// Deterministic in `seed`.
pub fn read_mix_run(
    cfg: Config,
    clients: u32,
    ops_per_client: u64,
    write_permille: u32,
    jitter_ns: u64,
    seed: u64,
) -> MixStats {
    let mut cluster = Cluster::new(seed, NetConfig::SWITCHED_100MBPS, cfg, |_| {
        CounterService::default()
    });
    cluster.sim.network_mut().set_jitter_ns(jitter_ns);
    let mut ids = Vec::new();
    for i in 0..clients {
        ids.push(
            cluster.add_client(
                ReadMixDriver::new(write_permille, seed ^ (0xc11e57 + u64::from(i)))
                    .with_start_delay(u64::from(i) * dur::micros(400))
                    .with_max_ops(ops_per_client),
            ),
        );
    }
    let total = u64::from(clients) * ops_per_client;
    let mut guard = 0;
    while cluster.completed_ops() < total && guard < 10_000 {
        cluster.run_for(dur::millis(50));
        guard += 1;
    }
    assert_eq!(cluster.completed_ops(), total, "mix run did not finish");
    let mut reads_ns = Vec::new();
    let mut writes_ns = Vec::new();
    for &id in &ids {
        let d = cluster.client::<ReadMixDriver>(id).driver();
        reads_ns.extend_from_slice(&d.read_latencies_ns);
        writes_ns.extend_from_slice(&d.write_latencies_ns);
    }
    reads_ns.sort_unstable();
    writes_ns.sort_unstable();
    let metrics = cluster.sim.metrics();
    MixStats {
        reads: reads_ns.len() as u64,
        writes: writes_ns.len() as u64,
        read_p50_us: percentile_us(&reads_ns, 0.50),
        read_p99_us: percentile_us(&reads_ns, 0.99),
        write_p50_us: percentile_us(&writes_ns, 0.50),
        lease_reads: metrics.counter("replica.lease_reads"),
        ro_retries: metrics.counter("client.ro_retries"),
        ro_fallbacks: metrics.counter("client.ro_fallbacks"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leased(cfg: &mut Config) {
        cfg.read_leases = true;
        cfg.read_lease_ns = dur::millis(100);
    }

    #[test]
    fn mix_ratio_is_respected() {
        let mut cfg = Config::new(1);
        leased(&mut cfg);
        let stats = read_mix_run(cfg, 2, 100, 100, 0, 7);
        assert_eq!(stats.reads + stats.writes, 200);
        // 10% writes ± sampling noise.
        assert!(
            stats.writes >= 8 && stats.writes <= 40,
            "write count {} far from 10% of 200",
            stats.writes
        );
    }

    #[test]
    fn pure_read_mix_issues_no_writes() {
        let mut cfg = Config::new(1);
        leased(&mut cfg);
        let stats = read_mix_run(cfg, 1, 50, 0, 0, 7);
        assert_eq!(stats.writes, 0);
        assert_eq!(stats.reads, 50);
    }

    #[test]
    fn leases_serve_reads_under_write_conflicts() {
        let mut cfg = Config::new(1);
        leased(&mut cfg);
        let stats = read_mix_run(cfg, 4, 150, 100, 0, 11);
        assert!(stats.lease_reads > 0, "no reads served from leases");
        assert_eq!(stats.ro_fallbacks, 0, "leased reads must not fall back");
    }

    #[test]
    fn lease_reads_beat_ordered_writes() {
        let mut cfg = Config::new(1);
        leased(&mut cfg);
        let stats = read_mix_run(cfg, 4, 150, 100, 0, 13);
        assert!(
            stats.read_p50_us < stats.write_p50_us,
            "leased read p50 {}us should undercut ordered write p50 {}us",
            stats.read_p50_us,
            stats.write_p50_us
        );
    }
}
