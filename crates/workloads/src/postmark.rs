//! The PostMark benchmark (Katcher, 1997) — "models the load on Internet
//! Service Providers": a pool of many small files churned by
//! create/delete and read/append transactions.
//!
//! The paper "configured PostMark with an initial pool of files with
//! sizes between 512 bytes and 16 Kbytes". Each transaction pairs a
//! create-or-delete with a read-or-append, following the original
//! benchmark. Unlike Andrew, the client does almost no computation
//! between operations, which is why the relative overhead of replication
//! is highest here (BFS throughput 47% below NO-REP).

use crate::script::{Script, WorkItem};
use bft_fs::client::FileAction;
use bft_sim::time::dur;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// PostMark configuration.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq)]
pub struct PostmarkConfig {
    /// Initial number of files in the pool.
    pub initial_files: u32,
    /// Number of transactions.
    pub transactions: u32,
    /// Minimum file size.
    pub min_size: u64,
    /// Maximum file size.
    pub max_size: u64,
    /// Subdirectories the pool is spread over.
    pub subdirs: u32,
    /// Client compute per transaction (benchmark bookkeeping only).
    pub per_txn_ns: u64,
    /// RNG seed for the transaction mix.
    pub seed: u64,
}

impl Default for PostmarkConfig {
    fn default() -> Self {
        PostmarkConfig {
            initial_files: 400,
            transactions: 2_000,
            min_size: 512,
            max_size: 16 * 1024,
            subdirs: 10,
            per_txn_ns: dur::micros(300),
            seed: 0x9057_0a1c,
        }
    }
}

/// Generates the PostMark script: pool setup, then the transaction mix,
/// then pool teardown (as the original benchmark does).
pub fn postmark_script(cfg: PostmarkConfig) -> Script {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut items = Vec::new();
    let mut next_id: u32 = 0;
    // Live pool: file id → (path, size).
    let mut pool: Vec<(u32, String, u64)> = Vec::new();
    let size_of = |rng: &mut StdRng| -> u64 { rng.gen_range(cfg.min_size..=cfg.max_size) };

    for d in 0..cfg.subdirs {
        items.push(WorkItem::Action(FileAction::Mkdir(format!("s{d}"))));
    }
    for _ in 0..cfg.initial_files {
        let id = next_id;
        next_id += 1;
        let dir = id % cfg.subdirs;
        let size = size_of(&mut rng);
        let path = format!("s{dir}/file{id}");
        items.push(WorkItem::Action(FileAction::CreateFile(path.clone(), size)));
        pool.push((id, path, size));
    }

    for _ in 0..cfg.transactions {
        items.push(WorkItem::Compute(cfg.per_txn_ns));
        // Half A: create or delete.
        if rng.gen_bool(0.5) || pool.len() < 2 {
            let id = next_id;
            next_id += 1;
            let dir = id % cfg.subdirs;
            let size = size_of(&mut rng);
            let path = format!("s{dir}/file{id}");
            items.push(WorkItem::Action(FileAction::CreateFile(path.clone(), size)));
            pool.push((id, path, size));
        } else {
            let victim = rng.gen_range(0..pool.len());
            let (_, path, _) = pool.swap_remove(victim);
            items.push(WorkItem::Action(FileAction::Remove(path)));
        }
        // Half B: read or append.
        let target = rng.gen_range(0..pool.len());
        if rng.gen_bool(0.5) {
            items.push(WorkItem::Action(FileAction::ReadFile(
                pool[target].1.clone(),
            )));
        } else {
            let bytes = size_of(&mut rng).min(4096);
            pool[target].2 += bytes;
            items.push(WorkItem::Action(FileAction::Append(
                pool[target].1.clone(),
                bytes,
            )));
        }
        items.push(WorkItem::Mark);
    }

    // Teardown: delete the remaining pool.
    for (_, path, _) in pool {
        items.push(WorkItem::Action(FileAction::Remove(path)));
    }
    Script { items }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_has_expected_shape() {
        let cfg = PostmarkConfig {
            initial_files: 50,
            transactions: 100,
            ..PostmarkConfig::default()
        };
        let s = postmark_script(cfg);
        assert_eq!(s.mark_count(), 100);
        // Setup (subdirs + files) + 2 actions per txn + teardown.
        assert!(s.action_count() >= (10 + 50 + 200) as usize);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = postmark_script(PostmarkConfig::default());
        let b = postmark_script(PostmarkConfig::default());
        assert_eq!(a.items.len(), b.items.len());
        assert_eq!(a.items, b.items);
    }

    #[test]
    fn different_seed_differs() {
        let cfg = PostmarkConfig {
            seed: 1,
            ..PostmarkConfig::default()
        };
        let a = postmark_script(cfg);
        let b = postmark_script(PostmarkConfig::default());
        assert_ne!(a.items, b.items);
    }

    #[test]
    fn script_executes_cleanly() {
        let cfg = PostmarkConfig {
            initial_files: 30,
            transactions: 60,
            ..PostmarkConfig::default()
        };
        let runner = crate::script::run_script_locally(postmark_script(cfg));
        assert_eq!(runner.failed, 0, "all transactions must succeed");
        assert_eq!(runner.marks, 60);
    }

    #[test]
    fn file_sizes_in_configured_range() {
        let cfg = PostmarkConfig::default();
        let s = postmark_script(cfg);
        for item in &s.items {
            if let WorkItem::Action(FileAction::CreateFile(_, size)) = item {
                assert!(*size >= cfg.min_size && *size <= cfg.max_size);
            }
        }
    }
}
