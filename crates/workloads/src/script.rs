//! Workload scripts: sequences of file actions and client compute steps,
//! plus the transport-agnostic runner that turns them into RPCs through
//! the kernel-NFS-client cache model.

use bft_fs::client::{FileAction, NfsClientConfig, NfsClientModel, Step};
use bft_fs::ops::{NfsOp, NfsResult};

/// One step of a workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkItem {
    /// Perform a file action.
    Action(FileAction),
    /// Burn client CPU (compilation, scanning, benchmark bookkeeping).
    Compute(u64),
    /// Mark the completion of a logical unit (e.g. one PostMark
    /// transaction) for throughput accounting.
    Mark,
}

/// A full workload script.
#[derive(Debug, Clone, Default)]
pub struct Script {
    /// The steps, in order.
    pub items: Vec<WorkItem>,
}

impl Script {
    /// Number of actions (excluding compute steps).
    pub fn action_count(&self) -> usize {
        self.items
            .iter()
            .filter(|i| matches!(i, WorkItem::Action(_)))
            .count()
    }

    /// Number of completion marks.
    pub fn mark_count(&self) -> usize {
        self.items
            .iter()
            .filter(|i| matches!(i, WorkItem::Mark))
            .count()
    }

    /// Total client compute in the script.
    pub fn compute_ns(&self) -> u64 {
        self.items
            .iter()
            .map(|i| match i {
                WorkItem::Compute(ns) => *ns,
                _ => 0,
            })
            .sum()
    }
}

/// What the transport should do next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Drive {
    /// Issue this RPC and call [`ScriptRunner::advance`] with the decoded
    /// response.
    Rpc(NfsOp),
    /// Charge this much client CPU, then call
    /// [`ScriptRunner::advance`] with `None`.
    Compute(u64),
    /// The script is finished.
    Done,
}

/// Drives a [`Script`] through an [`NfsClientModel`], independent of the
/// transport (BFT client or plain datagrams).
#[derive(Debug, Clone)]
pub struct ScriptRunner {
    items: Vec<WorkItem>,
    idx: usize,
    model: NfsClientModel,
    /// Actions completed.
    pub actions_done: u64,
    /// Actions that failed (should be zero for well-formed scripts).
    pub failed: u64,
    /// Marks passed.
    pub marks: u64,
}

impl ScriptRunner {
    /// Creates a runner over `script` with a fresh client cache.
    pub fn new(script: Script, client_cfg: NfsClientConfig) -> ScriptRunner {
        ScriptRunner {
            items: script.items,
            idx: 0,
            model: NfsClientModel::new(client_cfg),
            actions_done: 0,
            failed: 0,
            marks: 0,
        }
    }

    /// Client-cache statistics.
    pub fn stats(&self) -> &bft_fs::client::ClientStats {
        &self.model.stats
    }

    /// True once the script has completed.
    pub fn finished(&self) -> bool {
        self.idx >= self.items.len()
    }

    /// Progress as (current index, total items).
    pub fn progress(&self) -> (usize, usize) {
        (self.idx, self.items.len())
    }

    /// Advances the script. Pass the decoded response when answering a
    /// [`Drive::Rpc`]; pass `None` initially and after a
    /// [`Drive::Compute`].
    pub fn advance(&mut self, response: Option<&NfsResult>) -> Drive {
        let mut step = response.map(|r| self.model.next(r));
        loop {
            match step.take() {
                Some(Step::Rpc(op)) => return Drive::Rpc(op),
                Some(Step::Done { failed, .. }) => {
                    self.actions_done += 1;
                    if failed {
                        self.failed += 1;
                    }
                }
                None => {}
            }
            if self.idx >= self.items.len() {
                return Drive::Done;
            }
            let item = self.items[self.idx].clone();
            self.idx += 1;
            match item {
                WorkItem::Compute(ns) => return Drive::Compute(ns),
                WorkItem::Action(a) => step = Some(self.model.begin(a)),
                WorkItem::Mark => self.marks += 1,
            }
        }
    }
}

/// Executes a script synchronously against a local [`FsService`] — a
/// shortcut for tests and offline validation that skips the simulated
/// network entirely.
#[doc(hidden)]
pub fn run_script_locally(script: Script) -> ScriptRunner {
    use bft_core::wire::Wire;
    use bft_fs::service::FsService;
    let mut runner = ScriptRunner::new(script, NfsClientConfig::default());
    let mut svc = FsService::in_memory();
    let mut response: Option<NfsResult> = None;
    loop {
        match runner.advance(response.take().as_ref()) {
            Drive::Rpc(op) => {
                let bytes = svc.apply_encoded(&op.to_bytes());
                response = Some(NfsResult::from_bytes(&bytes).expect("decodes"));
            }
            Drive::Compute(_) => {}
            Drive::Done => return runner,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Executes a script synchronously against a local service.
    pub(crate) fn run_script(script: Script) -> ScriptRunner {
        run_script_locally(script)
    }

    #[test]
    fn script_runs_to_completion() {
        let script = Script {
            items: vec![
                WorkItem::Action(FileAction::Mkdir("d".into())),
                WorkItem::Compute(1_000),
                WorkItem::Action(FileAction::CreateFile("d/f".into(), 5000)),
                WorkItem::Mark,
                WorkItem::Action(FileAction::ReadFile("d/f".into())),
            ],
        };
        assert_eq!(script.action_count(), 3);
        assert_eq!(script.mark_count(), 1);
        assert_eq!(script.compute_ns(), 1_000);
        let runner = run_script(script);
        assert!(runner.finished());
        assert_eq!(runner.actions_done, 3);
        assert_eq!(runner.failed, 0);
        assert_eq!(runner.marks, 1);
    }

    #[test]
    fn empty_script_is_immediately_done() {
        let mut runner = ScriptRunner::new(Script::default(), NfsClientConfig::default());
        assert_eq!(runner.advance(None), Drive::Done);
        assert!(runner.finished());
    }

    #[test]
    fn compute_only_script() {
        let script = Script {
            items: vec![WorkItem::Compute(5), WorkItem::Compute(7)],
        };
        let mut runner = ScriptRunner::new(script, NfsClientConfig::default());
        assert_eq!(runner.advance(None), Drive::Compute(5));
        assert_eq!(runner.advance(None), Drive::Compute(7));
        assert_eq!(runner.advance(None), Drive::Done);
    }
}
