//! NO-REP: the unreplicated baseline.
//!
//! Section 4.1: "the other, NO-REP, is not replicated and uses UDP
//! directly for communication between the clients and the server." There
//! is no authentication, no retransmission, and a single server node. The
//! server is generic over the same [`Service`] trait as the BFT library,
//! so the micro-benchmark service and BFS both run unreplicated for the
//! paper's comparisons (NO-REP and NFS-STD differ only in the service's
//! cost model).

use bft_core::service::Service;
use bft_sim::{Context, Node, NodeId, SimTime};
use std::any::Any;

/// A plain request/response datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirectMsg {
    /// Client → server.
    Request {
        /// Client-local id echoed in the reply.
        id: u64,
        /// The encoded operation.
        op: Vec<u8>,
    },
    /// Server → client.
    Reply {
        /// Echo of the request id.
        id: u64,
        /// The encoded result.
        result: Vec<u8>,
    },
}

impl DirectMsg {
    /// Payload size on the wire (8-byte id + body).
    pub fn wire_bytes(&self) -> usize {
        8 + match self {
            DirectMsg::Request { op, .. } => op.len(),
            DirectMsg::Reply { result, .. } => result.len(),
        }
    }
}

/// The unreplicated server.
pub struct DirectServer<S: Service> {
    service: S,
    cost: bft_sim::CostModel,
    ops_served: u64,
}

impl<S: Service> DirectServer<S> {
    /// Creates a server around `service` using the given CPU cost model
    /// for the network stack.
    pub fn new(service: S, cost: bft_sim::CostModel) -> DirectServer<S> {
        DirectServer {
            service,
            cost,
            ops_served: 0,
        }
    }

    /// Operations executed.
    pub fn ops_served(&self) -> u64 {
        self.ops_served
    }

    /// Read access to the service.
    pub fn service(&self) -> &S {
        &self.service
    }
}

impl<S: Service> Node<DirectMsg> for DirectServer<S> {
    fn on_message(
        &mut self,
        ctx: &mut Context<'_, DirectMsg>,
        from: NodeId,
        msg: DirectMsg,
        wire: usize,
    ) {
        let DirectMsg::Request { id, op } = msg else {
            return;
        };
        ctx.charge(self.cost.recv(wire));
        let result = self.service.execute(from, &op);
        // Unreplicated execution is immediately final.
        self.service.commit_prefix(1);
        ctx.charge(self.service.exec_cost_ns(&op, &result));
        self.ops_served += 1;
        let reply = DirectMsg::Reply { id, result };
        let bytes = reply.wire_bytes();
        ctx.charge(self.cost.send(bytes));
        ctx.send(from, reply, bytes);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Application logic for a [`DirectClient`] (mirrors
/// [`bft_core::ClientDriver`]).
pub trait DirectDriver: 'static {
    /// Called once at start.
    fn on_start(&mut self, api: &mut DirectApi<'_, '_>);
    /// Called when an operation completes.
    fn on_complete(&mut self, api: &mut DirectApi<'_, '_>, result: &[u8], latency_ns: u64);
    /// Called for driver timers.
    fn on_timer(&mut self, _api: &mut DirectApi<'_, '_>, _token: u64) {}
}

/// What a [`DirectDriver`] can do.
pub struct DirectApi<'a, 'b> {
    core: &'a mut DirectCore,
    ctx: &'a mut Context<'b, DirectMsg>,
}

struct DirectCore {
    server: NodeId,
    cost: bft_sim::CostModel,
    next_id: u64,
    pending: Option<(u64, SimTime)>,
    completed: u64,
}

impl DirectApi<'_, '_> {
    /// Submits an operation (exactly one outstanding at a time).
    ///
    /// # Panics
    ///
    /// Panics if an operation is already in flight.
    pub fn submit(&mut self, op: Vec<u8>) {
        assert!(self.core.pending.is_none(), "one outstanding op per client");
        self.core.next_id += 1;
        let id = self.core.next_id;
        self.core.pending = Some((id, self.ctx.now()));
        let msg = DirectMsg::Request { id, op };
        let bytes = msg.wire_bytes();
        self.ctx.charge(self.core.cost.send(bytes));
        let server = self.core.server;
        self.ctx.send(server, msg, bytes);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.ctx.now()
    }

    /// Sets a driver timer.
    pub fn set_timer(&mut self, delay_ns: u64, token: u64) {
        self.ctx.set_timer(delay_ns, token);
    }

    /// Charges client CPU time.
    pub fn charge(&mut self, ns: u64) {
        self.ctx.charge(ns);
    }

    /// Shared metrics.
    pub fn metrics(&mut self) -> &mut bft_sim::Metrics {
        self.ctx.metrics()
    }
}

/// The unreplicated client: one outstanding request, no retransmission
/// ("NO-REP uses UDP directly and does not retransmit requests").
pub struct DirectClient<D: DirectDriver> {
    core: DirectCore,
    driver: D,
}

impl<D: DirectDriver> DirectClient<D> {
    /// Creates a client of `server`.
    pub fn new(server: NodeId, cost: bft_sim::CostModel, driver: D) -> DirectClient<D> {
        DirectClient {
            core: DirectCore {
                server,
                cost,
                next_id: 0,
                pending: None,
                completed: 0,
            },
            driver,
        }
    }

    /// Completed operations.
    pub fn completed_ops(&self) -> u64 {
        self.core.completed
    }

    /// True if a request is outstanding. A NO-REP client whose request or
    /// reply was lost stays stalled forever — it never retransmits.
    pub fn is_stalled(&self) -> bool {
        self.core.pending.is_some()
    }

    /// Access to the driver.
    pub fn driver(&self) -> &D {
        &self.driver
    }
}

impl<D: DirectDriver> Node<DirectMsg> for DirectClient<D> {
    fn on_start(&mut self, ctx: &mut Context<'_, DirectMsg>) {
        let mut api = DirectApi {
            core: &mut self.core,
            ctx,
        };
        self.driver.on_start(&mut api);
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, DirectMsg>,
        _from: NodeId,
        msg: DirectMsg,
        wire: usize,
    ) {
        let DirectMsg::Reply { id, result } = msg else {
            return;
        };
        ctx.charge(self.core.cost.recv(wire));
        let Some((want, sent_at)) = self.core.pending else {
            return;
        };
        if id != want {
            return;
        }
        self.core.pending = None;
        self.core.completed += 1;
        let latency = ctx.now().since(sent_at);
        ctx.metrics().incr("client.ops_completed");
        ctx.metrics().record("client.latency", latency);
        let mut api = DirectApi {
            core: &mut self.core,
            ctx,
        };
        self.driver.on_complete(&mut api, &result, latency);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, DirectMsg>, token: u64) {
        let mut api = DirectApi {
            core: &mut self.core,
            ctx,
        };
        self.driver.on_timer(&mut api, token);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A closed-loop micro driver for the unreplicated path.
#[derive(Debug, Clone)]
pub struct DirectMicroDriver {
    /// Argument size in bytes.
    pub arg_bytes: usize,
    /// Result size in bytes.
    pub result_bytes: usize,
}

impl DirectDriver for DirectMicroDriver {
    fn on_start(&mut self, api: &mut DirectApi<'_, '_>) {
        api.submit(crate::micro::simple_op(
            self.arg_bytes,
            self.result_bytes,
            false,
        ));
    }
    fn on_complete(&mut self, api: &mut DirectApi<'_, '_>, result: &[u8], _latency: u64) {
        debug_assert_eq!(result.len(), self.result_bytes);
        api.submit(crate::micro::simple_op(
            self.arg_bytes,
            self.result_bytes,
            false,
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::micro::SimpleService;
    use bft_sim::{dur, CostModel, NetConfig, Simulation};

    fn setup(clients: usize, arg: usize, result: usize) -> (Simulation<DirectMsg>, NodeId) {
        let mut sim = Simulation::new(5, NetConfig::SWITCHED_100MBPS);
        let server = sim.add_node(Box::new(DirectServer::new(
            SimpleService,
            CostModel::PIII_600,
        )));
        for _ in 0..clients {
            sim.add_node(Box::new(DirectClient::new(
                server,
                CostModel::PIII_600,
                DirectMicroDriver {
                    arg_bytes: arg,
                    result_bytes: result,
                },
            )));
        }
        (sim, server)
    }

    #[test]
    fn request_reply_roundtrip() {
        let (mut sim, server) = setup(1, 8, 32);
        sim.run_for(dur::millis(10));
        let served = sim
            .node_as::<DirectServer<SimpleService>>(server)
            .ops_served();
        assert!(served > 10, "served {served}");
        assert_eq!(sim.metrics().counter("client.ops_completed"), served);
    }

    #[test]
    fn latency_has_sane_shape() {
        // A 0/0 round trip on an idle network: two messages worth of
        // serialization + latency + stack costs — well under a millisecond.
        let (mut sim, _) = setup(1, 8, 0);
        sim.run_for(dur::millis(50));
        let s = sim.metrics().summary("client.latency");
        assert!(s.count > 10);
        assert!(s.mean > 30_000.0, "mean {}", s.mean);
        assert!(s.mean < 500_000.0, "mean {}", s.mean);
    }

    #[test]
    fn throughput_is_cpu_bound_for_null_ops() {
        let (mut sim, _) = setup(30, 8, 0);
        sim.run_for(dur::secs(1));
        let ops = sim.metrics().counter("client.ops_completed");
        // Server CPU per op ≈ recv + send ≈ 20 µs → tens of thousands/s.
        assert!(ops > 20_000, "ops {ops}");
        assert!(ops < 80_000, "ops {ops}");
    }

    #[test]
    fn big_replies_are_bandwidth_bound() {
        let (mut sim, _) = setup(30, 8, 4096);
        sim.run_for(dur::secs(1));
        let ops = sim.metrics().counter("client.ops_completed");
        // The server's 12.5 MB/s transmit link caps ~3000 replies/s of
        // 4 KB — the bound the paper reports for NO-REP 0/4.
        assert!((2_000..3_400).contains(&ops), "ops {ops}");
    }

    #[test]
    fn socket_buffer_overflow_kills_clients() {
        let (mut sim, server) = setup(60, 8, 0);
        sim.set_cpu_queue_limit(server, 300_000);
        sim.run_for(dur::secs(2));
        assert!(
            sim.metrics().counter("cpu.dropped") > 0,
            "overload must drop requests"
        );
        // Dropped requests are never retransmitted: those clients stall
        // with their request outstanding forever.
        let stalled = (1..=60)
            .filter(|&c| {
                sim.node_as::<DirectClient<DirectMicroDriver>>(c)
                    .is_stalled()
            })
            .count();
        assert!(stalled > 0, "some clients must be stalled");
        // A server with an unbounded queue never drops or stalls anyone.
        let (mut healthy, _) = setup(60, 8, 0);
        healthy.run_for(dur::secs(2));
        assert_eq!(healthy.metrics().counter("cpu.dropped"), 0);
    }
}
