//! Experiment configurations serialize (the reason `serde` is a
//! dependency): harness runs can be described, stored, and replayed as
//! data.

use bft_core::config::Config;
use bft_fs::client::NfsClientConfig;
use bft_fs::disk::{FsCostModel, ServerMode};
use bft_sim::{CostModel, NetConfig};
use bft_workloads::andrew::AndrewTimings;
use bft_workloads::postmark::PostmarkConfig;

fn roundtrip<T>(value: &T)
where
    T: serde::Serialize + serde::de::DeserializeOwned + PartialEq + std::fmt::Debug,
{
    let json = serde_json::to_string(value).expect("serializes");
    let back: T = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(&back, value);
}

#[test]
fn all_experiment_configs_roundtrip() {
    roundtrip(&Config::new(2));
    roundtrip(&NetConfig::SWITCHED_100MBPS);
    roundtrip(&CostModel::PIII_600);
    roundtrip(&FsCostModel::new(ServerMode::NfsStd));
    roundtrip(&NfsClientConfig::default());
    roundtrip(&AndrewTimings::default());
    roundtrip(&PostmarkConfig::default());
}
