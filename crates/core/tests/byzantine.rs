//! Adversarial tests beyond the basic cluster suite: silent replicas,
//! Byzantine primaries of several flavours, replay, and combinations at
//! the fault budget's edge.

use bft_core::messages::{Commit, Msg, Packet, NULL_DIGEST};
use bft_core::prelude::*;
use bft_sim::dur;

struct LoopDriver {
    target: u64,
    results: Vec<u64>,
}

impl LoopDriver {
    fn new(target: u64) -> LoopDriver {
        LoopDriver {
            target,
            results: Vec::new(),
        }
    }
}

impl ClientDriver for LoopDriver {
    fn on_start(&mut self, api: &mut ClientApi<'_, '_>) {
        api.submit(CounterService::add_op(1), false);
    }
    fn on_complete(&mut self, api: &mut ClientApi<'_, '_>, result: &[u8], _lat: u64) {
        self.results
            .push(u64::from_le_bytes(result.try_into().expect("8 bytes")));
        if (self.results.len() as u64) < self.target {
            api.submit(CounterService::add_op(1), false);
        }
    }
}

fn cluster(seed: u64) -> Cluster {
    Cluster::builder(Config::new(1))
        .seed(seed)
        .net(NetConfig::SWITCHED_100MBPS)
        .build_counter()
}

fn assert_correct_results(cluster: &Cluster, id: u32, n: u64) {
    let results = &cluster.client::<LoopDriver>(id).driver().results;
    assert_eq!(results.len() as u64, n);
    for (i, &v) in results.iter().enumerate() {
        assert_eq!(v, i as u64 + 1, "result #{i}");
    }
}

#[test]
fn silent_backup_is_tolerated() {
    let mut c = cluster(31);
    c.replica_mut::<CounterService>(2)
        .set_behavior(Behavior::Silent);
    let id = c.add_client(LoopDriver::new(25));
    c.run_for(dur::secs(5));
    assert_correct_results(&c, id, 25);
}

#[test]
fn silent_primary_is_replaced() {
    let mut c = cluster(32);
    c.replica_mut::<CounterService>(0)
        .set_behavior(Behavior::Silent);
    let id = c.add_client(LoopDriver::new(15));
    c.run_for(dur::secs(30));
    assert_correct_results(&c, id, 15);
    for r in 1..4 {
        assert!(c.replica::<CounterService>(r).view() >= 1);
    }
}

#[test]
fn corrupt_auth_primary_is_replaced() {
    // A primary whose MACs never verify is indistinguishable from a
    // silent one: backups must view-change past it.
    let mut c = cluster(33);
    c.replica_mut::<CounterService>(0)
        .set_behavior(Behavior::CorruptAuth);
    let id = c.add_client(LoopDriver::new(12));
    c.run_for(dur::secs(30));
    assert_correct_results(&c, id, 12);
    assert!(c.sim.metrics().counter("replica.bad_packet_auth") > 0);
}

#[test]
fn byzantine_plus_crash_exceeds_budget_gracefully() {
    // f = 1 tolerates one fault. With a lying replica AND a crashed one
    // the system may stall (2 correct replicas cannot form quorums), but
    // clients must never accept a wrong result.
    let mut c = cluster(34);
    c.replica_mut::<CounterService>(1)
        .set_behavior(Behavior::WrongResult);
    c.replica_mut::<CounterService>(3)
        .set_behavior(Behavior::Crashed);
    let id = c.add_client(LoopDriver::new(50));
    c.run_for(dur::secs(10));
    let results = &c.client::<LoopDriver>(id).driver().results;
    for (i, &v) in results.iter().enumerate() {
        assert_eq!(v, i as u64 + 1, "safety must hold beyond the fault budget");
    }
}

#[test]
fn replayed_packets_are_idempotent() {
    let mut c = cluster(35);
    let id = c.add_client(LoopDriver::new(10));
    c.run_for(dur::secs(2));
    assert_correct_results(&c, id, 10);
    let value_before = c.replica::<CounterService>(1).service().value();
    // Replay a stale commit at a backup: protocol state must not regress
    // and the service value must not change.
    let replay = Packet::unauthenticated(Msg::Commit(Commit {
        view: 0,
        seq: 1,
        batch_digest: NULL_DIGEST,
        replica: 2,
    }));
    let bytes = replay.wire_bytes();
    c.sim.inject(1, 2, replay, bytes);
    c.run_for(dur::millis(100));
    assert_eq!(
        c.replica::<CounterService>(1).service().value(),
        value_before
    );
}

#[test]
fn two_equivocating_backups_with_f2() {
    // f = 2 (7 replicas): two corrupt-auth replicas are tolerated.
    let mut c = Cluster::builder(Config::new(2))
        .seed(36)
        .net(NetConfig::SWITCHED_100MBPS)
        .build_counter();
    c.replica_mut::<CounterService>(2)
        .set_behavior(Behavior::CorruptAuth);
    c.replica_mut::<CounterService>(5)
        .set_behavior(Behavior::WrongResult);
    let id = c.add_client(LoopDriver::new(20));
    c.run_for(dur::secs(10));
    assert_correct_results(&c, id, 20);
}

#[test]
fn faulty_client_cannot_corrupt_replication() {
    // A "client" that sends garbage ops and misuses the read-only flag.
    // Its *authenticated* operations execute (that is correct: a signed
    // add is a legitimate request, and replicas route a mislabeled
    // "read-only" write through the ordered path — the RO fast path never
    // mutates state). What it must NOT be able to do is break agreement
    // or starve honest clients.
    struct EvilDriver {
        sent: u32,
    }
    impl ClientDriver for EvilDriver {
        fn on_start(&mut self, api: &mut ClientApi<'_, '_>) {
            // A write mislabeled as read-only.
            api.submit(CounterService::add_op(99), true);
        }
        fn on_complete(&mut self, api: &mut ClientApi<'_, '_>, _r: &[u8], _lat: u64) {
            self.sent += 1;
            if self.sent < 5 {
                api.submit(vec![0xff, 0xfe], false); // garbage op
            }
        }
    }
    let mut c = cluster(37);
    c.add_client(EvilDriver { sent: 0 });
    let honest = c.add_client(LoopDriver::new(20));
    c.run_for(dur::secs(5));
    // Honest results are strictly increasing (a consistent linear order).
    let results = c.client::<LoopDriver>(honest).driver().results.clone();
    assert_eq!(results.len(), 20);
    for w in results.windows(2) {
        assert!(w[0] < w[1]);
    }
    // The final state is exactly the honest adds plus the evil add: the
    // garbage ops are no-ops and nothing executed twice.
    let v = c.replica::<CounterService>(0).service().value();
    assert_eq!(v, 20 + 99);
    // All replicas agree.
    for r in 1..4 {
        assert_eq!(c.replica::<CounterService>(r).service().value(), v);
    }
}

#[test]
fn corrupted_state_transfer_snapshot_is_detected() {
    // Replica 3 falls far behind while partitioned; when it heals, its
    // first state-transfer target (replica 0) serves corrupted snapshots.
    // It must detect the digest mismatch and fetch from someone honest.
    let mut cfg = Config::new(1);
    cfg.checkpoint_interval = 8;
    cfg.log_window = 16;
    let mut c = Cluster::builder(cfg)
        .seed(40)
        .net(NetConfig::SWITCHED_100MBPS)
        .build_counter();
    c.replica_mut::<CounterService>(0)
        .set_behavior(Behavior::CorruptStateData);
    let id = c.add_client(LoopDriver::new(120));
    c.sim.network_mut().isolate(3, 4);
    c.run_for(dur::secs(10));
    assert_correct_results(&c, id, 120);
    c.sim.network_mut().heal_node(3);
    c.run_for(dur::secs(15));
    assert!(
        c.sim
            .metrics()
            .counter("replica.state_transfer_bad_snapshot")
            > 0,
        "the corrupted snapshot must be detected"
    );
    let r3 = c.replica::<CounterService>(3);
    assert!(
        r3.service().value() >= 112,
        "replica 3 must still catch up (value {})",
        r3.service().value()
    );
}

#[test]
fn forged_new_view_is_rejected_and_skipped() {
    // Primary 0 crashes; the next primary (1) forges its NEW-VIEW. The
    // backups must detect the wrong O-set recomputation and move on to
    // view 2 (primary 2).
    let mut c = cluster(39);
    c.replica_mut::<CounterService>(0)
        .set_behavior(Behavior::Crashed);
    c.replica_mut::<CounterService>(1)
        .set_behavior(Behavior::BadNewView);
    let id = c.add_client(LoopDriver::new(10));
    c.run_for(dur::secs(60));
    assert_correct_results(&c, id, 10);
    assert!(
        c.sim.metrics().counter("replica.bad_new_view") > 0,
        "the forged NEW-VIEW must be detected"
    );
    for r in [2u32, 3] {
        assert!(
            c.replica::<CounterService>(r).view() >= 2,
            "replica {r} must move past the forging primary"
        );
    }
}

#[test]
fn equivocating_primary_under_concurrent_load() {
    let mut c = cluster(38);
    c.replica_mut::<CounterService>(0)
        .set_behavior(Behavior::EquivocatingPrimary);
    let ids: Vec<u32> = (0..4).map(|_| c.add_client(LoopDriver::new(8))).collect();
    c.run_for(dur::secs(40));
    // All results across clients form a consistent linear history.
    let mut all: Vec<u64> = Vec::new();
    for id in ids {
        let r = &c.client::<LoopDriver>(id).driver().results;
        assert_eq!(r.len(), 8, "client {id} starved");
        all.extend_from_slice(r);
    }
    all.sort_unstable();
    assert_eq!(all, (1..=32).collect::<Vec<u64>>());
}
