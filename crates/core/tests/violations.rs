//! Directed coverage of every [`Violation`] variant.
//!
//! The chaos battery's failure reports are these `Display` strings; a
//! garbled or swapped field turns a real safety violation into an
//! undebuggable message. This test constructs each variant exactly as
//! its checker does and pins the rendered report, so every alarm the
//! invariant checker can raise has at least one test that has heard it
//! (enforced by `bft-lint`'s invariant-coverage rule).

use bft_core::Violation;
use bft_crypto::md5::Digest;

fn digest(byte: u8) -> Digest {
    Digest([byte; 16])
}

#[test]
fn agreement_report_names_both_replicas_and_digests() {
    let (a, b) = (digest(0xaa), digest(0xbb));
    let v = Violation::Agreement {
        seq: 42,
        a: (0, a),
        b: (3, b),
    };
    assert_eq!(
        v.to_string(),
        format!("agreement: replica 0 finalized {a} at seq 42 but replica 3 finalized {b}")
    );
}

#[test]
fn fast_commit_divergence_report_names_the_fast_committer() {
    let (a, b) = (digest(0x01), digest(0x02));
    let v = Violation::FastCommitDivergence {
        seq: 7,
        a: (1, a),
        b: (2, b),
    };
    assert_eq!(
        v.to_string(),
        format!(
            "fast-commit divergence: replica 1 fast-committed {a} at seq 7 but replica 2 holds {b}"
        )
    );
}

#[test]
fn view_regression_report_shows_the_backwards_step() {
    let v = Violation::ViewRegression {
        replica: 2,
        from: 9,
        to: 4,
    };
    assert_eq!(
        v.to_string(),
        "view regression: replica 2 went from view 9 back to 4"
    );
}

#[test]
fn checkpoint_divergence_report_names_both_announcements() {
    let (a, b) = (digest(0x0c), digest(0x0d));
    let v = Violation::CheckpointDivergence {
        seq: 128,
        a: (0, a),
        b: (1, b),
    };
    assert_eq!(
        v.to_string(),
        format!(
            "checkpoint divergence at seq 128: replica 0 announced {a} but replica 1 announced {b}"
        )
    );
}

#[test]
fn linearizability_report_carries_client_and_detail() {
    let v = Violation::Linearizability {
        client: 5,
        timestamp: 33,
        detail: "read 10 older than completed read 12".to_string(),
    };
    assert_eq!(
        v.to_string(),
        "linearizability: client 5 op ts 33: read 10 older than completed read 12"
    );
}

#[test]
fn liveness_report_carries_the_detail() {
    let v = Violation::Liveness {
        detail: "client 0 stuck at 17/50 ops".to_string(),
    };
    assert_eq!(v.to_string(), "liveness: client 0 stuck at 17/50 ops");
}

#[test]
fn recovery_divergence_report_contrasts_ours_with_quorum() {
    let (ours, quorum) = (digest(0xe0), digest(0xe1));
    let v = Violation::RecoveryDivergence {
        replica: 3,
        seq: 256,
        ours,
        quorum,
    };
    assert_eq!(
        v.to_string(),
        format!(
            "recovery divergence: replica 3 rejoined at seq 256 with state {ours} but the \
             quorum's checkpoint digest is {quorum}"
        )
    );
}

#[test]
fn stale_lease_read_report_names_replica_client_and_detail() {
    let v = Violation::StaleLeaseRead {
        replica: 1,
        client: 8,
        timestamp: 21,
        detail: "lease value 3 behind completed 5".to_string(),
    };
    assert_eq!(
        v.to_string(),
        "stale lease read: replica 1 served client 8 ts 21: lease value 3 behind completed 5"
    );
}

#[test]
fn unhealed_corruption_report_shows_the_missed_deadline() {
    let v = Violation::UnhealedCorruption {
        replica: 2,
        corrupted_at_ns: 1_000_000,
        deadline_ns: 5_000_000,
    };
    assert_eq!(
        v.to_string(),
        "unhealed corruption: replica 2 corrupted at 1000000ns had not completed a clean \
         recovery by 5000000ns"
    );
}

#[test]
fn unbounded_growth_report_names_queue_and_cap() {
    let v = Violation::UnboundedGrowth {
        replica: 1,
        queue: "ingest_backlog",
        len: 5000,
        cap: 4096,
    };
    assert_eq!(
        v.to_string(),
        "unbounded growth: replica 1 queue ingest_backlog holds 5000 entries, cap 4096"
    );
}

#[test]
fn client_starvation_report_counts_starved_ops() {
    let v = Violation::ClientStarvation {
        client: 6,
        starved_ops: 3,
    };
    assert_eq!(
        v.to_string(),
        "client starvation: honest client 6 exhausted its retry budget (3 starved ops)"
    );
}

#[test]
fn violations_are_distinguishable_by_equality() {
    // The chaos minimizer dedups violations by equality; two different
    // variants over the same ids must never compare equal.
    let d = digest(0x42);
    let agreement = Violation::Agreement {
        seq: 1,
        a: (0, d),
        b: (1, d),
    };
    let fast = Violation::FastCommitDivergence {
        seq: 1,
        a: (0, d),
        b: (1, d),
    };
    assert_ne!(agreement, fast);
    assert_eq!(agreement.clone(), agreement);
}
