//! End-to-end cluster tests: normal-case operation under every
//! optimization setting, checkpointing and garbage collection, view
//! changes, state transfer, and Byzantine fault injection.

use bft_core::prelude::*;
use bft_sim::dur;

/// A closed-loop driver issuing `target` operations produced by `make_op`,
/// recording every result.
struct LoopDriver {
    target: u64,
    issued: u64,
    results: Vec<Vec<u8>>,
    make_op: Box<dyn FnMut(u64) -> (Vec<u8>, bool)>,
}

impl LoopDriver {
    fn adds(target: u64) -> LoopDriver {
        LoopDriver {
            target,
            issued: 0,
            results: Vec::new(),
            make_op: Box::new(|_| (CounterService::add_op(1), false)),
        }
    }

    fn with_op(target: u64, make_op: Box<dyn FnMut(u64) -> (Vec<u8>, bool)>) -> LoopDriver {
        LoopDriver {
            target,
            issued: 0,
            results: Vec::new(),
            make_op,
        }
    }

    fn next(&mut self, api: &mut ClientApi<'_, '_>) {
        if self.issued < self.target {
            let (op, ro) = (self.make_op)(self.issued);
            self.issued += 1;
            api.submit(op, ro);
        }
    }
}

impl ClientDriver for LoopDriver {
    fn on_start(&mut self, api: &mut ClientApi<'_, '_>) {
        self.next(api);
    }
    fn on_complete(&mut self, api: &mut ClientApi<'_, '_>, result: &[u8], _latency: u64) {
        self.results.push(result.to_vec());
        self.next(api);
    }
}

fn counter_cluster(seed: u64, cfg: Config) -> Cluster {
    Cluster::builder(cfg)
        .seed(seed)
        .net(NetConfig::LOSSLESS_100MBPS)
        .build_counter()
}

/// Asserts that all replicas that executed everything agree on state.
fn assert_replica_agreement(cluster: &Cluster, expected_value: u64) {
    let mut agreeing = 0;
    for &r in &cluster.replicas {
        let rep = cluster.replica::<CounterService>(r);
        if rep.service().value() == expected_value {
            agreeing += 1;
        }
    }
    assert!(
        agreeing >= cluster.cfg.quorums.commit_quorum() as u32,
        "only {agreeing} replicas reached value {expected_value}"
    );
}

#[test]
fn normal_case_completes_all_operations() {
    let mut cluster = counter_cluster(1, Config::new(1));
    for _ in 0..3 {
        cluster.add_client(LoopDriver::adds(20));
    }
    cluster.run_for(dur::secs(5));
    assert_eq!(cluster.completed_ops(), 60);
    assert_replica_agreement(&cluster, 60);
    assert_eq!(
        cluster.sim.metrics().counter("client.retransmissions"),
        0,
        "lossless normal case should not retransmit"
    );
}

#[test]
fn results_are_correct_and_monotonic() {
    let mut cluster = counter_cluster(2, Config::new(1));
    let c = cluster.add_client(LoopDriver::adds(30));
    cluster.run_for(dur::secs(5));
    let client = cluster.client::<LoopDriver>(c);
    let results = &client.driver().results;
    assert_eq!(results.len(), 30);
    for (i, r) in results.iter().enumerate() {
        let v = u64::from_le_bytes(r.as_slice().try_into().expect("8-byte result"));
        assert_eq!(v, i as u64 + 1, "add #{i} must return the running total");
    }
}

#[test]
fn every_single_optimization_toggle_works() {
    type Tweak = Box<dyn Fn(&mut Optimizations)>;
    let toggles: Vec<(&str, Tweak)> = vec![
        (
            "digest_replies",
            Box::new(|o: &mut Optimizations| o.digest_replies = false),
        ),
        (
            "tentative_execution",
            Box::new(|o| o.tentative_execution = false),
        ),
        ("read_only", Box::new(|o| o.read_only = false)),
        ("batching", Box::new(|o| o.batching = false)),
        ("srt", Box::new(|o| o.separate_request_transmission = false)),
        ("piggyback_on", Box::new(|o| o.piggyback_commits = true)),
    ];
    for (name, tweak) in toggles {
        let mut cfg = Config::new(1);
        tweak(&mut cfg.opts);
        let mut cluster = counter_cluster(3, cfg);
        cluster.add_client(LoopDriver::adds(15));
        cluster.run_for(dur::secs(5));
        assert_eq!(cluster.completed_ops(), 15, "toggle {name}");
        assert_replica_agreement(&cluster, 15);
    }
}

#[test]
fn no_optimizations_at_all_still_works() {
    let cfg = Config::new(1).with_opts(Optimizations::NONE);
    let mut cluster = counter_cluster(4, cfg);
    cluster.add_client(LoopDriver::adds(15));
    cluster.run_for(dur::secs(5));
    assert_eq!(cluster.completed_ops(), 15);
    assert_replica_agreement(&cluster, 15);
}

#[test]
fn seven_replicas_tolerating_two_faults() {
    let mut cluster = counter_cluster(5, Config::new(2));
    cluster.add_client(LoopDriver::adds(12));
    // Crash two replicas (the maximum tolerated).
    cluster
        .replica_mut::<CounterService>(3)
        .set_behavior(Behavior::Crashed);
    cluster
        .replica_mut::<CounterService>(5)
        .set_behavior(Behavior::Crashed);
    cluster.run_for(dur::secs(10));
    assert_eq!(cluster.completed_ops(), 12);
}

#[test]
fn checkpoints_become_stable_and_gc_runs() {
    let mut cfg = Config::new(1);
    cfg.checkpoint_interval = 16;
    cfg.log_window = 32;
    let mut cluster = counter_cluster(6, cfg);
    cluster.add_client(LoopDriver::adds(100));
    cluster.run_for(dur::secs(10));
    assert_eq!(cluster.completed_ops(), 100);
    for &r in &cluster.replicas {
        let rep = cluster.replica::<CounterService>(r);
        assert!(
            rep.stable_checkpoint() >= 64,
            "replica {r} stable checkpoint stuck at {}",
            rep.stable_checkpoint()
        );
    }
    assert!(cluster.sim.metrics().counter("replica.stable_checkpoints") > 0);
}

#[test]
fn read_only_operations_are_fast_and_consistent() {
    let mut cluster = counter_cluster(7, Config::new(1));
    // Interleave writes and reads; reads must reflect all prior writes by
    // this client (linearizability from a single client's viewpoint).
    let c = cluster.add_client(LoopDriver::with_op(
        40,
        Box::new(|i| {
            if i % 2 == 0 {
                (CounterService::add_op(1), false)
            } else {
                (CounterService::get_op(), true)
            }
        }),
    ));
    cluster.run_for(dur::secs(5));
    let client = cluster.client::<LoopDriver>(c);
    assert_eq!(client.driver().results.len(), 40);
    for (i, r) in client.driver().results.iter().enumerate() {
        let v = u64::from_le_bytes(r.as_slice().try_into().expect("8 bytes"));
        let writes_so_far = (i as u64 + 2) / 2;
        assert_eq!(v, writes_so_far, "op #{i}");
    }
    assert!(cluster.sim.metrics().counter("replica.read_only_execs") > 0);
}

#[test]
fn large_requests_use_separate_transmission() {
    let mut cluster = counter_cluster(8, Config::new(1));
    // Ops bigger than the 255-byte inline threshold.
    cluster.add_client(LoopDriver::with_op(
        10,
        Box::new(|_| {
            let mut op = CounterService::add_op(1);
            op.extend_from_slice(&[0u8; 2000]);
            (op, false)
        }),
    ));
    cluster.run_for(dur::secs(5));
    assert_eq!(cluster.completed_ops(), 10);
    assert_replica_agreement(&cluster, 10);
}

#[test]
fn primary_crash_triggers_view_change_and_recovery() {
    let mut cluster = counter_cluster(9, Config::new(1));
    let c = cluster.add_client(LoopDriver::adds(30));
    // Let a handful of operations finish, then kill the primary mid-run.
    cluster.run_for(dur::millis(5));
    let before = cluster.client::<LoopDriver>(c).driver().results.len();
    assert!(before > 0, "some progress before the crash");
    assert!(before < 30, "crash must land mid-run");
    cluster
        .replica_mut::<CounterService>(0)
        .set_behavior(Behavior::Crashed);
    cluster.run_for(dur::secs(20));
    let client = cluster.client::<LoopDriver>(c);
    assert_eq!(
        client.driver().results.len(),
        30,
        "all ops complete after view change"
    );
    // The surviving replicas moved past view 0.
    for r in 1..4 {
        assert!(
            cluster.replica::<CounterService>(r).view() >= 1,
            "replica {r} still in view 0"
        );
    }
    // Results stayed correct across the view change.
    for (i, r) in cluster
        .client::<LoopDriver>(c)
        .driver()
        .results
        .iter()
        .enumerate()
    {
        let v = u64::from_le_bytes(r.as_slice().try_into().expect("8 bytes"));
        assert_eq!(v, i as u64 + 1);
    }
}

#[test]
fn repeated_primary_crashes_advance_views() {
    let mut cluster = counter_cluster(10, Config::new(1));
    let c = cluster.add_client(LoopDriver::adds(20));
    cluster.run_for(dur::millis(3));
    cluster
        .replica_mut::<CounterService>(0)
        .set_behavior(Behavior::Crashed);
    cluster.run_for(dur::secs(10));
    // Crash the next primary too: f=1 means this exceeds the fault budget,
    // so crash 0 back to life first (it stays silent; we instead crash 1
    // only after reviving is not possible — so simply verify the first
    // transition, then check a second one cannot block safety).
    let views: Vec<u64> = (1..4)
        .map(|r| cluster.replica::<CounterService>(r).view())
        .collect();
    assert!(views.iter().all(|&v| v >= 1), "views: {views:?}");
    assert_eq!(cluster.client::<LoopDriver>(c).driver().results.len(), 20);
}

#[test]
fn backup_crash_does_not_block_progress() {
    let mut cluster = counter_cluster(11, Config::new(1));
    cluster
        .replica_mut::<CounterService>(2)
        .set_behavior(Behavior::Crashed);
    cluster.add_client(LoopDriver::adds(25));
    cluster.run_for(dur::secs(5));
    assert_eq!(cluster.completed_ops(), 25);
}

#[test]
fn equivocating_primary_cannot_block_or_fork() {
    let mut cluster = counter_cluster(12, Config::new(1));
    cluster
        .replica_mut::<CounterService>(0)
        .set_behavior(Behavior::EquivocatingPrimary);
    let c = cluster.add_client(LoopDriver::adds(10));
    cluster.run_for(dur::secs(30));
    let client = cluster.client::<LoopDriver>(c);
    assert_eq!(
        client.driver().results.len(),
        10,
        "progress despite equivocation"
    );
    // No fork: every result is the correct running total.
    for (i, r) in client.driver().results.iter().enumerate() {
        let v = u64::from_le_bytes(r.as_slice().try_into().expect("8 bytes"));
        assert_eq!(v, i as u64 + 1);
    }
}

#[test]
fn corrupt_auth_replica_is_ignored() {
    let mut cluster = counter_cluster(13, Config::new(1));
    cluster
        .replica_mut::<CounterService>(2)
        .set_behavior(Behavior::CorruptAuth);
    cluster.add_client(LoopDriver::adds(15));
    cluster.run_for(dur::secs(10));
    assert_eq!(cluster.completed_ops(), 15);
    assert!(
        cluster.sim.metrics().counter("replica.bad_packet_auth") > 0,
        "corrupted MACs must be detected"
    );
}

#[test]
fn lying_replica_cannot_fool_clients() {
    let mut cluster = counter_cluster(14, Config::new(1));
    cluster
        .replica_mut::<CounterService>(1)
        .set_behavior(Behavior::WrongResult);
    let c = cluster.add_client(LoopDriver::adds(20));
    cluster.run_for(dur::secs(10));
    let client = cluster.client::<LoopDriver>(c);
    assert_eq!(client.driver().results.len(), 20);
    for (i, r) in client.driver().results.iter().enumerate() {
        let v = u64::from_le_bytes(r.as_slice().try_into().expect("8 bytes"));
        assert_eq!(v, i as u64 + 1, "client accepted a forged result");
    }
}

#[test]
fn partitioned_replica_catches_up_via_state_transfer() {
    let mut cfg = Config::new(1);
    cfg.checkpoint_interval = 8;
    cfg.log_window = 16;
    let mut cluster = counter_cluster(15, cfg);
    cluster.add_client(LoopDriver::adds(120));
    // Cut replica 3 off from everyone.
    cluster.sim.network_mut().isolate(3, 4);
    cluster.run_for(dur::secs(10));
    assert_eq!(cluster.completed_ops(), 120, "3 replicas suffice");
    let lagging = cluster.replica::<CounterService>(3).last_executed();
    assert!(lagging < 10, "replica 3 should be far behind, at {lagging}");
    // Heal and let it recover.
    cluster.sim.network_mut().heal_node(3);
    cluster.run_for(dur::secs(10));
    let r3 = cluster.replica::<CounterService>(3);
    assert!(
        r3.service().value() >= 112,
        "replica 3 did not catch up: value {}",
        r3.service().value()
    );
    assert!(
        cluster
            .sim
            .metrics()
            .counter("replica.state_transfers_completed")
            > 0,
        "state transfer should have run"
    );
}

#[test]
fn message_loss_is_tolerated() {
    let mut cluster = counter_cluster(16, Config::new(1));
    cluster.sim.network_mut().set_loss_probability(0.03);
    cluster.add_client(LoopDriver::adds(25));
    cluster.run_for(dur::secs(60));
    assert_eq!(cluster.completed_ops(), 25);
}

#[test]
fn many_clients_concurrently() {
    let mut cluster = counter_cluster(17, Config::new(1));
    for _ in 0..20 {
        cluster.add_client(LoopDriver::adds(5));
    }
    cluster.run_for(dur::secs(10));
    assert_eq!(cluster.completed_ops(), 100);
    assert_replica_agreement(&cluster, 100);
}

#[test]
fn deterministic_across_runs() {
    let run = |seed: u64| {
        let mut cluster = counter_cluster(seed, Config::new(1));
        cluster.add_client(LoopDriver::adds(10));
        cluster.run_for(dur::secs(2));
        (
            cluster.completed_ops(),
            cluster.sim.metrics().summary("client.latency").mean,
            cluster.sim.events_processed(),
        )
    };
    assert_eq!(run(42), run(42));
    assert_eq!(run(7), run(7));
}

#[test]
fn tentative_execution_reduces_latency() {
    let mut with = Config::new(1);
    with.opts.read_only = false;
    let mut without = with.clone();
    without.opts.tentative_execution = false;
    let latency = |cfg: Config, seed: u64| {
        let mut cluster = counter_cluster(seed, cfg);
        cluster.add_client(LoopDriver::adds(50));
        cluster.run_for(dur::secs(5));
        cluster.sim.metrics().summary("client.latency").mean
    };
    let l_with = latency(with, 18);
    let l_without = latency(without, 18);
    assert!(
        l_with < l_without,
        "tentative execution should cut a message delay: {l_with} vs {l_without}"
    );
}

#[test]
fn read_only_optimization_reduces_latency() {
    let ro_on = Config::new(1);
    let mut ro_off = ro_on.clone();
    ro_off.opts.read_only = false;
    let latency = |cfg: Config, seed: u64| {
        let mut cluster = counter_cluster(seed, cfg);
        cluster.add_client(LoopDriver::with_op(
            50,
            Box::new(|_| (CounterService::get_op(), true)),
        ));
        cluster.run_for(dur::secs(5));
        cluster.sim.metrics().summary("client.latency").mean
    };
    let l_on = latency(ro_on, 19);
    let l_off = latency(ro_off, 19);
    assert!(
        l_on < l_off,
        "read-only path should be a single round trip: {l_on} vs {l_off}"
    );
}
