//! View-change regression tests for the optimistic fast path.
//!
//! The dangerous window is a slot that fast-committed (all `n` prepare
//! votes seen, result released to the client, **no** Commit messages
//! ever sent) and then loses its primary before any classic commit
//! certificate exists. The new view must re-adopt that slot with the
//! same request: every non-faulty replica lists its fast votes in its
//! VIEW-CHANGE message, and `f + 1` matching reports form a provable
//! certificate the new primary must honour (see `viewchange.rs` and
//! DESIGN.md §5.13 for the quorum-intersection argument).
//!
//! These tests drive that window end to end through the simulator; the
//! per-message adoption logic is unit-tested next to `compute_plan`.

use bft_core::fuzz::{fastpath_fuzz_config, ChaosDriver, Workload};
use bft_core::prelude::*;
use bft_sim::chaos::{Fault, FaultEvent, NodeFault};
use bft_sim::dur;

/// A fast-committed-but-not-classically-committed slot must survive a
/// primary crash and re-election with the same request.
///
/// Construction: a fault-free prefix fast-commits a stream of slots
/// (two-round commits, zero Commit messages on the wire), then the
/// primary fail-stops mid-stream. The backups elect a new primary whose
/// NEW-VIEW must carry every fast-committed slot — adopted from `f + 1`
/// matching fast-vote reports — or the executed-but-uncertified suffix
/// would be re-ordered with different requests and the linearizability
/// and agreement invariants would trip. With the primary gone only
/// `n - 1` replicas remain, so every post-crash slot falls back to the
/// classic path; the run ends with a mixed fast/classic history that
/// the fast-commit safety invariant cross-checks replica by replica.
#[test]
fn fast_committed_slot_survives_primary_crash() {
    let mut cluster = Cluster::builder(fastpath_fuzz_config(1))
        .seed(0xFC_01)
        .build_counter();
    // Enough closed-loop work that both clients are still mid-stream at
    // the crash instant (a fast-committed op completes in ~a millisecond).
    cluster.add_client(ChaosDriver::new(0xFC_02, 300, Workload::Adds));
    cluster.add_client(ChaosDriver::new(0xFC_03, 300, Workload::Mixed).delayed(dur::millis(1)));
    let plan = FaultPlan {
        events: vec![FaultEvent {
            at_ns: dur::millis(100),
            fault: Fault::Node {
                node: 0,
                fault: NodeFault::Crash,
            },
        }],
    };
    let mut checker = InvariantChecker::new();
    cluster
        .run_with_plan::<CounterService, ChaosDriver>(&plan, dur::secs(15), &mut checker)
        .expect("no invariant may break");
    checker.finish().expect("linearizability must hold");
    assert_eq!(cluster.completed_ops(), 600, "progress must resume");
    let metrics = cluster.sim.metrics();
    assert!(
        metrics.counter("replica.fast_commits") > 0,
        "the fault-free prefix must have fast-committed slots"
    );
    assert!(
        metrics.counter("replica.view_changes_started") > 0,
        "the backups must have run a view change"
    );
    assert!(
        metrics.counter("replica.fast_fallbacks") > 0,
        "post-crash slots (n - 1 voters) must fall back to the classic path"
    );
    // The survivors converge on one stable checkpoint root covering the
    // full history — crash-straddling fast slots included.
    let reference = cluster.replica::<CounterService>(1).stable_proof();
    assert!(reference.0 > 0, "the run must have produced a checkpoint");
    for r in 2..4 {
        assert_eq!(
            cluster.replica::<CounterService>(r).stable_proof(),
            reference,
            "replica {r} diverges after the view change"
        );
    }
}

/// Repeated primary crashes across several views: each view change must
/// carry the fast-committed suffix of the previous view forward. Runs
/// the same construction as above through two successive primary
/// fail-stops (views 0 → 1 → 2) to cover fast votes cast *in a view
/// that was itself installed by a view change*.
#[test]
fn fast_path_survives_cascaded_view_changes() {
    let mut cluster = Cluster::builder(fastpath_fuzz_config(1))
        .seed(0xFC_11)
        .build_counter();
    cluster.add_client(ChaosDriver::new(0xFC_12, 600, Workload::Mixed));
    cluster.add_client(ChaosDriver::new(0xFC_13, 600, Workload::Adds));
    // Timeline (view-change timeout is 400ms): the view-0 primary
    // crashes mid-stream, view 1 is installed around 450ms, and its
    // primary crashes in turn while the ex-primary is still down — the
    // second view change must re-carry everything the first one adopted.
    // The ex-primary restarts afterwards and rejoins via NEW-VIEW
    // retransmission, leaving replicas 0, 2, 3 to finish the run.
    let plan = FaultPlan {
        events: vec![
            FaultEvent {
                at_ns: dur::millis(30),
                fault: Fault::Node {
                    node: 0,
                    fault: NodeFault::Crash,
                },
            },
            FaultEvent {
                at_ns: dur::millis(600),
                fault: Fault::Node {
                    node: 1,
                    fault: NodeFault::Crash,
                },
            },
            FaultEvent {
                at_ns: dur::millis(700),
                fault: Fault::Node {
                    node: 0,
                    fault: NodeFault::Restart,
                },
            },
        ],
    };
    let mut checker = InvariantChecker::new();
    cluster
        .run_with_plan::<CounterService, ChaosDriver>(&plan, dur::secs(60), &mut checker)
        .expect("no invariant may break");
    checker.finish().expect("linearizability must hold");
    assert_eq!(cluster.completed_ops(), 1_200, "progress must resume");
    assert!(
        cluster
            .sim
            .metrics()
            .counter("replica.view_changes_started")
            > 0,
        "the crashes must have forced view changes"
    );
    assert!(
        cluster.sim.metrics().counter("replica.fast_commits") > 0,
        "fast commits must happen around the crash windows"
    );
}
