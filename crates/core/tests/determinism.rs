//! Determinism regression: two clusters built from the same seed and fed
//! the same schedule must behave *identically* — event for event, not
//! just in aggregate. This is the property the `bft-lint` determinism
//! rule protects: a single iteration over a `HashMap` in a protocol path
//! can leak hasher randomness into message emission order and break it.
//!
//! The comparison is deliberately strict: the full trace ring of every
//! node (replicas and clients), element-wise. A divergence anywhere in
//! timing, view, sequence assignment, or batching shows up here.

use bft_core::fuzz::{
    fuzz_config, fuzz_plan, overload_fuzz_config, overload_fuzz_plan, ChaosDriver, Workload,
};
use bft_core::prelude::*;
use bft_sim::dur;
use bft_sim::trace::TraceEvent;
use bft_sim::{Counters, HealthSnapshot, NodeId};

const OPS_PER_CLIENT: u64 = 8;
const TRACE_CAPACITY: usize = 8192;

/// Builds a traced cluster from `seed`, runs it for `rounds` fixed-size
/// slices, and returns everything observable: per-node trace rings,
/// completed-op count, total events processed, and each replica's
/// final executed sequence number.
fn run_once(seed: u64, plan: &FaultPlan, rounds: u32) -> RunFingerprint {
    let cfg = fuzz_config(1);
    let n = cfg.n();
    let mut cluster = Cluster::builder(cfg)
        .seed(seed)
        .trace_capacity(TRACE_CAPACITY)
        .build_counter();
    cluster.add_client(ChaosDriver::new(seed ^ 1, OPS_PER_CLIENT, Workload::Adds));
    cluster.add_client(ChaosDriver::new(seed ^ 2, OPS_PER_CLIENT, Workload::Mixed));

    let mut checker = InvariantChecker::new();
    let empty = FaultPlan::empty();
    let mut health_seq: Vec<Vec<HealthSnapshot>> = Vec::new();
    for round in 0..rounds {
        let p = if round == 0 { plan } else { &empty };
        cluster
            .run_with_plan::<CounterService, ChaosDriver>(p, dur::millis(100), &mut checker)
            .expect("invariants hold in both runs");
        // Snapshot after every round: the health observatory must be as
        // deterministic as the protocol it observes.
        health_seq.push(cluster.health_snapshots::<CounterService>());
    }

    let sink = cluster.sim.trace();
    let rings: Vec<Vec<TraceEvent>> = (0..sink.node_count() as NodeId)
        .map(|node| sink.node_events(node).copied().collect())
        .collect();
    let executed: Vec<u64> = (0..n)
        .map(|r| cluster.replica::<CounterService>(r).last_executed())
        .collect();
    RunFingerprint {
        rings,
        completed_ops: cluster.completed_ops(),
        events_processed: cluster.sim.events_processed(),
        now_ns: cluster.sim.now().0,
        executed,
        health_seq,
        counters: cluster.sim.health().clone(),
    }
}

struct RunFingerprint {
    rings: Vec<Vec<TraceEvent>>,
    completed_ops: u64,
    events_processed: u64,
    now_ns: u64,
    executed: Vec<u64>,
    /// Per-round health snapshots of every replica.
    health_seq: Vec<Vec<HealthSnapshot>>,
    /// Final health counter registry (messages by tag, protocol events).
    counters: Counters,
}

/// Asserts two runs are indistinguishable, with a pinpointed diagnostic
/// (node + ring index + both events) on the first divergence.
fn assert_identical(a: &RunFingerprint, b: &RunFingerprint) {
    assert_eq!(a.completed_ops, b.completed_ops, "completed ops differ");
    assert_eq!(
        a.events_processed, b.events_processed,
        "simulator event counts differ"
    );
    assert_eq!(a.now_ns, b.now_ns, "final simulated times differ");
    assert_eq!(a.executed, b.executed, "executed sequence numbers differ");
    assert_eq!(a.rings.len(), b.rings.len(), "node counts differ");
    for (node, (ra, rb)) in a.rings.iter().zip(&b.rings).enumerate() {
        assert_eq!(
            ra.len(),
            rb.len(),
            "node {node}: trace ring lengths differ ({} vs {})",
            ra.len(),
            rb.len()
        );
        for (i, (ea, eb)) in ra.iter().zip(rb).enumerate() {
            assert_eq!(ea, eb, "node {node}: traces diverge at ring index {i}");
        }
    }
    assert_eq!(
        a.health_seq.len(),
        b.health_seq.len(),
        "health snapshot round counts differ"
    );
    for (round, (sa, sb)) in a.health_seq.iter().zip(&b.health_seq).enumerate() {
        assert_eq!(sa, sb, "health snapshots diverge after round {round}");
    }
    assert_eq!(a.counters, b.counters, "health counters diverge");
}

/// Fault-free: same seed, same schedule, identical traces.
#[test]
fn identical_seeds_produce_identical_traces() {
    let plan = FaultPlan::empty();
    let a = run_once(0x0DE7_E121, &plan, 12);
    assert!(
        a.completed_ops >= OPS_PER_CLIENT,
        "run must make progress to be a meaningful comparison"
    );
    assert!(
        a.counters.sent_by_tag().iter().sum::<u64>() > 0
            && a.health_seq.last().is_some_and(|s| !s.is_empty()),
        "health observatory must be populated, or the comparison is vacuous"
    );
    let b = run_once(0x0DE7_E121, &plan, 12);
    assert_identical(&a, &b);
}

/// Under chaos: a seeded fault schedule (partitions, delays, crashes)
/// exercises the view-change, checkpoint, and backfill paths — exactly
/// the code the BTreeMap migration covered. Still bit-identical.
#[test]
fn identical_seeds_identical_traces_under_chaos() {
    for seed in [0xC4A05u64, 0xFEED_5EED] {
        let plan = fuzz_plan(seed, 1);
        let a = run_once(seed, &plan, 16);
        let b = run_once(seed, &plan, 16);
        assert_identical(&a, &b);
    }
}

/// Builds an admission-controlled cluster under a client-fault plan
/// (floods, replays, malformed MACs) and fingerprints it — the overload
/// analogue of [`run_once`].
fn run_overload_once(seed: u64, plan: &FaultPlan, rounds: u32) -> RunFingerprint {
    let cfg = overload_fuzz_config(1);
    let n = cfg.n();
    let mut cluster = Cluster::builder(cfg)
        .seed(seed)
        .trace_capacity(TRACE_CAPACITY)
        .build_counter();
    cluster.add_client(ChaosDriver::new(seed ^ 1, OPS_PER_CLIENT, Workload::Adds));
    cluster.add_client(ChaosDriver::new(seed ^ 2, OPS_PER_CLIENT, Workload::Mixed));

    let mut checker = InvariantChecker::new();
    let empty = FaultPlan::empty();
    let mut health_seq: Vec<Vec<HealthSnapshot>> = Vec::new();
    for round in 0..rounds {
        let p = if round == 0 { plan } else { &empty };
        cluster
            .run_with_plan::<CounterService, ChaosDriver>(p, dur::millis(100), &mut checker)
            .expect("invariants hold in both runs");
        health_seq.push(cluster.health_snapshots::<CounterService>());
    }

    let sink = cluster.sim.trace();
    let rings: Vec<Vec<TraceEvent>> = (0..sink.node_count() as NodeId)
        .map(|node| sink.node_events(node).copied().collect())
        .collect();
    let executed: Vec<u64> = (0..n)
        .map(|r| cluster.replica::<CounterService>(r).last_executed())
        .collect();
    RunFingerprint {
        rings,
        completed_ops: cluster.completed_ops(),
        events_processed: cluster.sim.events_processed(),
        now_ns: cluster.sim.now().0,
        executed,
        health_seq,
        counters: cluster.sim.health().clone(),
    }
}

/// Overload armor end to end: admission gates, BUSY pushback, the
/// client's jittered backoff, and injected client floods. The backoff
/// jitter is hashed from the client id and retry state — never drawn
/// from a shared RNG — so two clusters stay bit-identical. A `rand`
/// call sneaking into that path shows up here as a trace divergence.
#[test]
fn identical_seeds_identical_traces_under_overload() {
    for seed in [0x0BE5_0001u64, 0x0BE5_0002] {
        let plan = overload_fuzz_plan(seed, 1);
        let a = run_overload_once(seed, &plan, 16);
        let b = run_overload_once(seed, &plan, 16);
        assert_identical(&a, &b);
    }
}

/// Different seeds must *not* be identical — guards against the
/// comparison being vacuous (e.g. empty rings on both sides).
#[test]
fn different_seeds_diverge() {
    let plan = FaultPlan::empty();
    let a = run_once(1, &plan, 12);
    let b = run_once(2, &plan, 12);
    assert_ne!(
        (a.events_processed, &a.rings),
        (b.events_processed, &b.rings),
        "different seeds should produce observably different runs"
    );
}
