//! Key refresh (NEW-KEY) and proactive recovery under load.
//!
//! Section 2 of the paper: "BFT can recover replicas proactively. This
//! allows BFT to offer safety and liveness even if all replicas fail
//! provided less than 1/3 of the replicas become faulty within a window
//! of vulnerability."

use bft_core::prelude::*;
use bft_sim::dur;

struct LoopDriver {
    target: u64,
    done: u64,
    last: u64,
}

impl ClientDriver for LoopDriver {
    fn on_start(&mut self, api: &mut ClientApi<'_, '_>) {
        api.submit(CounterService::add_op(1), false);
    }
    fn on_complete(&mut self, api: &mut ClientApi<'_, '_>, result: &[u8], _lat: u64) {
        let v = u64::from_le_bytes(result.try_into().expect("8 bytes"));
        assert!(
            v > self.last,
            "results must stay monotone across recoveries"
        );
        self.last = v;
        self.done += 1;
        if self.done < self.target {
            api.submit(CounterService::add_op(1), false);
        }
    }
}

fn cluster_with(cfg: Config, seed: u64, clients: u32, ops: u64) -> (Cluster, Vec<u32>) {
    let mut cluster = Cluster::builder(cfg)
        .seed(seed)
        .net(NetConfig::SWITCHED_100MBPS)
        .build_counter();
    let ids = (0..clients)
        .map(|_| {
            cluster.add_client(LoopDriver {
                target: ops,
                done: 0,
                last: 0,
            })
        })
        .collect();
    (cluster, ids)
}

#[test]
fn key_refresh_under_load_is_transparent() {
    let mut cfg = Config::new(1);
    cfg.key_refresh_interval_ns = dur::millis(150);
    let (mut cluster, ids) = cluster_with(cfg, 21, 3, 50);
    cluster.run_for(dur::secs(10));
    for id in ids {
        assert_eq!(cluster.client::<LoopDriver>(id).driver().done, 50);
    }
    let refreshes = cluster.sim.metrics().counter("replica.key_refreshes");
    assert!(refreshes >= 8, "only {refreshes} refreshes happened");
    assert_eq!(
        cluster.sim.metrics().counter("replica.bad_packet_auth"),
        0,
        "the grace window must cover in-flight traffic"
    );
}

#[test]
fn proactive_recovery_under_load_keeps_liveness() {
    let mut cfg = Config::new(1);
    cfg.checkpoint_interval = 16;
    cfg.log_window = 32;
    cfg.proactive_recovery_interval_ns = dur::millis(400);
    let (mut cluster, ids) = cluster_with(cfg, 22, 4, 150);
    cluster.run_for(dur::secs(30));
    for id in ids {
        assert_eq!(
            cluster.client::<LoopDriver>(id).driver().done,
            150,
            "ops must complete despite periodic recoveries"
        );
    }
    let recoveries = cluster
        .sim
        .metrics()
        .counter("replica.proactive_recoveries");
    assert!(recoveries >= 4, "only {recoveries} recoveries happened");
    // All replicas converge to the final value.
    let total = 4 * 150;
    let agreeing = (0..4)
        .filter(|&r| cluster.replica::<CounterService>(r).service().value() == total)
        .count();
    assert!(agreeing >= 3, "only {agreeing} replicas converged");
}

#[test]
fn recovered_replica_rejoins_from_its_checkpoint() {
    let mut cfg = Config::new(1);
    cfg.checkpoint_interval = 8;
    cfg.log_window = 16;
    let (mut cluster, ids) = cluster_with(cfg, 23, 2, 60);
    cluster.run_for(dur::secs(3));
    for &id in &ids {
        assert_eq!(cluster.client::<LoopDriver>(id).driver().done, 60);
    }
    // Snapshot a backup's state, recover it, and check it resumes from
    // its stable checkpoint and catches back up through backfill.
    let before = cluster.replica::<CounterService>(2).last_executed();
    assert!(before > 0);
    // Trigger recovery by enabling the interval on a fresh timer is not
    // possible post-hoc; instead run more load with recovery configured.
    let mut cfg2 = Config::new(1);
    cfg2.checkpoint_interval = 8;
    cfg2.log_window = 16;
    cfg2.proactive_recovery_interval_ns = dur::millis(250);
    let (mut cluster2, ids2) = cluster_with(cfg2, 24, 2, 100);
    cluster2.run_for(dur::secs(20));
    for id in ids2 {
        assert_eq!(cluster2.client::<LoopDriver>(id).driver().done, 100);
    }
    assert!(
        cluster2
            .sim
            .metrics()
            .counter("replica.proactive_recoveries")
            > 0
    );
    // All replicas converge to the final state after their recoveries.
    let total = 2 * 100;
    let agreeing = (0..4)
        .filter(|&r| cluster2.replica::<CounterService>(r).service().value() == total)
        .count();
    assert!(
        agreeing >= 3,
        "only {agreeing} replicas converged after recoveries"
    );
}

#[test]
fn recovery_with_a_crashed_replica_still_works() {
    // One replica crashed (the budgeted fault) while the others cycle
    // through proactive recovery: the group stays live.
    let mut cfg = Config::new(1);
    cfg.checkpoint_interval = 16;
    cfg.log_window = 32;
    cfg.proactive_recovery_interval_ns = dur::millis(500);
    let (mut cluster, ids) = cluster_with(cfg, 25, 2, 60);
    cluster
        .replica_mut::<CounterService>(3)
        .set_behavior(Behavior::Crashed);
    cluster.run_for(dur::secs(30));
    for id in ids {
        assert_eq!(cluster.client::<LoopDriver>(id).driver().done, 60);
    }
}

/// A corrupted replica (silent bit-flip, no crash, no dirty marks) is
/// healed by its next proactive recovery: the audit against the
/// `f+1`-attested root catches the bad partition and re-fetches it, and
/// the replica converges back to the cluster's state.
#[test]
fn silent_corruption_is_healed_by_the_next_recovery() {
    let mut cfg = Config::new(1);
    cfg.checkpoint_interval = 8;
    cfg.log_window = 32;
    cfg.proactive_recovery_interval_ns = dur::millis(400);
    let (mut cluster, ids) = cluster_with(cfg, 26, 2, 80);
    // Let some state accumulate, then flip a bit in replica 2's counter
    // (odd salt: the retained checkpoint copies are corrupted too, so
    // the audit must take the re-fetch path rather than restoring a
    // local copy).
    cluster.run_for(dur::millis(300));
    cluster.replica_mut::<CounterService>(2).corrupt_state(1);
    cluster.run_for(dur::secs(10));
    for id in ids {
        assert_eq!(cluster.client::<LoopDriver>(id).driver().done, 80);
    }
    let total = 2 * 80;
    for r in 0..4 {
        assert_eq!(
            cluster.replica::<CounterService>(r).service().value(),
            total,
            "replica {r} must have converged after the corruption healed"
        );
    }
    assert!(
        cluster
            .sim
            .metrics()
            .counter("replica.recovery_audit_refetch")
            > 0,
        "the audit must have caught the corrupt partition and re-fetched"
    );
}

/// Satellite regression for the view-change timeout cap: a 2/2 partition
/// gives no side a quorum, so view-change rounds fail back-to-back and
/// the timeout doubles each round. Uncapped, 20 s of partition pushes
/// the next attempt ~13 s past the heal; with the cap the next round
/// starts within `view_change_timeout_max_ns`, so the cluster re-elects
/// and drains the backlog quickly after the heal.
#[test]
fn view_change_timeout_cap_bounds_reelection_after_partition() {
    let mut cfg = Config::new(1);
    cfg.checkpoint_interval = 8;
    cfg.log_window = 32;
    cfg.view_change_timeout_ns = dur::millis(400);
    cfg.view_change_timeout_max_ns = dur::millis(800);
    cfg.client_retry_timeout_ns = dur::millis(150);
    let (mut cluster, ids) = cluster_with(cfg, 27, 2, 400);
    cluster.run_for(dur::millis(100));
    // {0, 1} | {2, 3}: neither side can assemble 2f+1 = 3.
    for &(a, b) in &[(0, 2), (0, 3), (1, 2), (1, 3)] {
        cluster.sim.network_mut().partition(a, b);
    }
    cluster.run_for(dur::secs(20));
    cluster.sim.network_mut().heal();
    // Re-election must happen within the cap (plus client retry slack) —
    // far sooner than the ~13 s an uncapped doubling schedule would
    // allow for.
    cluster.run_for(dur::secs(5));
    for id in ids {
        assert_eq!(
            cluster.client::<LoopDriver>(id).driver().done,
            400,
            "the backlog must drain shortly after the heal"
        );
    }
    assert!(
        cluster
            .sim
            .metrics()
            .counter("replica.view_changes_started")
            > 0,
        "the partition must have triggered view changes"
    );
}

/// Satellite regression for read-only liveness during recovery (the
/// degraded-read concern of arXiv:2107.11144): a replica whose recovery
/// is stuck awaiting attestations drops read-only requests, so with one
/// replica crashed a read cannot assemble its 2f+1 matching replies.
/// The client must fall back to the ordered read-write path and finish.
#[test]
fn reads_fall_back_to_read_write_while_a_replica_recovers() {
    use bft_core::fuzz::{ChaosDriver, Workload};
    let mut cfg = Config::new(1);
    // Checkpoints must stabilise well inside one recovery interval, or
    // every watchdog fire rolls the cluster back to genesis and the run
    // spends its whole budget replaying the same slots.
    cfg.checkpoint_interval = 4;
    cfg.log_window = 32;
    cfg.proactive_recovery_interval_ns = dur::millis(800);
    cfg.client_retry_timeout_ns = dur::millis(150);
    // A crashed replica 3 means view 3 can never be installed; a short
    // base timeout skips that dead round quickly when one is triggered.
    cfg.view_change_timeout_ns = dur::millis(400);
    cfg.view_change_timeout_max_ns = dur::millis(1600);
    let mut cluster = Cluster::builder(cfg)
        .seed(28)
        .net(NetConfig::SWITCHED_100MBPS)
        .build_counter();
    let writer = cluster.add_client(ChaosDriver::new(3, 40, Workload::Adds));
    let reader =
        cluster.add_client(ChaosDriver::new(5, 10, Workload::Reads).delayed(dur::millis(650)));
    cluster
        .replica_mut::<CounterService>(3)
        .set_behavior(Behavior::Crashed);
    // Cut replica 2 off from its peers just before its first watchdog
    // fire (interval·(id+1)/n = 600 ms): its RECOVER reaches nobody, so
    // it sticks in AwaitingAttestation and keeps dropping reads, while
    // reads served by 0 and 1 alone cannot reach 2f+1 = 3 matches.
    cluster.run_for(dur::millis(550));
    cluster.sim.network_mut().partition(2, 0);
    cluster.sim.network_mut().partition(2, 1);
    cluster.run_for(dur::millis(450));
    // Heal: the stuck recovery's RECOVER resend gets through, attestation
    // completes, and the ordered path drains the fallback reads.
    cluster.sim.network_mut().heal();
    cluster.run_for(dur::secs(15));
    assert_eq!(
        cluster.client::<ChaosDriver>(writer).completed_ops(),
        40,
        "writes must complete"
    );
    assert_eq!(
        cluster.client::<ChaosDriver>(reader).completed_ops(),
        10,
        "every read must complete despite the in-recovery replica"
    );
    assert!(
        cluster
            .sim
            .metrics()
            .counter("replica.ro_dropped_in_recovery")
            > 0,
        "the recovering replica must have dropped read-only requests"
    );
    assert!(
        cluster.sim.metrics().counter("client.ro_fallbacks") > 0,
        "at least one read must have fallen back to the ordered path"
    );
}
