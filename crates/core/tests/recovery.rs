//! Key refresh (NEW-KEY) and proactive recovery under load.
//!
//! Section 2 of the paper: "BFT can recover replicas proactively. This
//! allows BFT to offer safety and liveness even if all replicas fail
//! provided less than 1/3 of the replicas become faulty within a window
//! of vulnerability."

use bft_core::prelude::*;
use bft_sim::dur;

struct LoopDriver {
    target: u64,
    done: u64,
    last: u64,
}

impl ClientDriver for LoopDriver {
    fn on_start(&mut self, api: &mut ClientApi<'_, '_>) {
        api.submit(CounterService::add_op(1), false);
    }
    fn on_complete(&mut self, api: &mut ClientApi<'_, '_>, result: &[u8], _lat: u64) {
        let v = u64::from_le_bytes(result.try_into().expect("8 bytes"));
        assert!(
            v > self.last,
            "results must stay monotone across recoveries"
        );
        self.last = v;
        self.done += 1;
        if self.done < self.target {
            api.submit(CounterService::add_op(1), false);
        }
    }
}

fn cluster_with(cfg: Config, seed: u64, clients: u32, ops: u64) -> (Cluster, Vec<u32>) {
    let mut cluster = Cluster::builder(cfg)
        .seed(seed)
        .net(NetConfig::SWITCHED_100MBPS)
        .build_counter();
    let ids = (0..clients)
        .map(|_| {
            cluster.add_client(LoopDriver {
                target: ops,
                done: 0,
                last: 0,
            })
        })
        .collect();
    (cluster, ids)
}

#[test]
fn key_refresh_under_load_is_transparent() {
    let mut cfg = Config::new(1);
    cfg.key_refresh_interval_ns = dur::millis(150);
    let (mut cluster, ids) = cluster_with(cfg, 21, 3, 50);
    cluster.run_for(dur::secs(10));
    for id in ids {
        assert_eq!(cluster.client::<LoopDriver>(id).driver().done, 50);
    }
    let refreshes = cluster.sim.metrics().counter("replica.key_refreshes");
    assert!(refreshes >= 8, "only {refreshes} refreshes happened");
    assert_eq!(
        cluster.sim.metrics().counter("replica.bad_packet_auth"),
        0,
        "the grace window must cover in-flight traffic"
    );
}

#[test]
fn proactive_recovery_under_load_keeps_liveness() {
    let mut cfg = Config::new(1);
    cfg.checkpoint_interval = 16;
    cfg.log_window = 32;
    cfg.proactive_recovery_interval_ns = dur::millis(400);
    let (mut cluster, ids) = cluster_with(cfg, 22, 4, 150);
    cluster.run_for(dur::secs(30));
    for id in ids {
        assert_eq!(
            cluster.client::<LoopDriver>(id).driver().done,
            150,
            "ops must complete despite periodic recoveries"
        );
    }
    let recoveries = cluster
        .sim
        .metrics()
        .counter("replica.proactive_recoveries");
    assert!(recoveries >= 4, "only {recoveries} recoveries happened");
    // All replicas converge to the final value.
    let total = 4 * 150;
    let agreeing = (0..4)
        .filter(|&r| cluster.replica::<CounterService>(r).service().value() == total)
        .count();
    assert!(agreeing >= 3, "only {agreeing} replicas converged");
}

#[test]
fn recovered_replica_rejoins_from_its_checkpoint() {
    let mut cfg = Config::new(1);
    cfg.checkpoint_interval = 8;
    cfg.log_window = 16;
    let (mut cluster, ids) = cluster_with(cfg, 23, 2, 60);
    cluster.run_for(dur::secs(3));
    for &id in &ids {
        assert_eq!(cluster.client::<LoopDriver>(id).driver().done, 60);
    }
    // Snapshot a backup's state, recover it, and check it resumes from
    // its stable checkpoint and catches back up through backfill.
    let before = cluster.replica::<CounterService>(2).last_executed();
    assert!(before > 0);
    // Trigger recovery by enabling the interval on a fresh timer is not
    // possible post-hoc; instead run more load with recovery configured.
    let mut cfg2 = Config::new(1);
    cfg2.checkpoint_interval = 8;
    cfg2.log_window = 16;
    cfg2.proactive_recovery_interval_ns = dur::millis(250);
    let (mut cluster2, ids2) = cluster_with(cfg2, 24, 2, 100);
    cluster2.run_for(dur::secs(20));
    for id in ids2 {
        assert_eq!(cluster2.client::<LoopDriver>(id).driver().done, 100);
    }
    assert!(
        cluster2
            .sim
            .metrics()
            .counter("replica.proactive_recoveries")
            > 0
    );
    // All replicas converge to the final state after their recoveries.
    let total = 2 * 100;
    let agreeing = (0..4)
        .filter(|&r| cluster2.replica::<CounterService>(r).service().value() == total)
        .count();
    assert!(
        agreeing >= 3,
        "only {agreeing} replicas converged after recoveries"
    );
}

#[test]
fn recovery_with_a_crashed_replica_still_works() {
    // One replica crashed (the budgeted fault) while the others cycle
    // through proactive recovery: the group stays live.
    let mut cfg = Config::new(1);
    cfg.checkpoint_interval = 16;
    cfg.log_window = 32;
    cfg.proactive_recovery_interval_ns = dur::millis(500);
    let (mut cluster, ids) = cluster_with(cfg, 25, 2, 60);
    cluster
        .replica_mut::<CounterService>(3)
        .set_behavior(Behavior::Crashed);
    cluster.run_for(dur::secs(30));
    for id in ids {
        assert_eq!(cluster.client::<LoopDriver>(id).driver().done, 60);
    }
}
