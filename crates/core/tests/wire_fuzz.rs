//! Decoder totality fuzz: every `Wire` decoder, fed arbitrary untrusted
//! bytes, must return `Ok` or `Err` — never panic. This is the dynamic
//! counterpart of the `bft-lint` `decode-panic` rule: the lint proves no
//! panicking *construct* appears in a decode path; this test hammers the
//! decoders with garbage to catch anything the syntactic rule can't see
//! (arithmetic overflow, huge length prefixes, recursion).
//!
//! Every type with an `impl Wire` in `wire.rs` and `messages.rs` is
//! listed here; adding a decoder without covering it should fail review.

use bft_core::messages::*;
use bft_core::wire::Wire;
use bft_crypto::md5::Digest;
use bft_crypto::umac::Mac;
use proptest::prelude::*;

/// Decodes `bytes` as `T` and returns whether it parsed. The value of a
/// successful parse is dropped; the property under test is "no panic,
/// and failure is reported through `Err`".
fn decode_is_total<T: Wire>(bytes: &[u8]) -> bool {
    T::from_bytes(bytes).is_ok()
}

macro_rules! fuzz_decoders {
    ($bytes:expr => $($ty:ty),+ $(,)?) => {
        $(let _ = decode_is_total::<$ty>($bytes);)+
    };
}

proptest! {
    /// Arbitrary bytes through every primitive and composite decoder in
    /// `wire.rs`.
    #[test]
    fn wire_primitives_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        fuzz_decoders!(&bytes =>
            u8, u32, u64, bool,
            Vec<u8>, Vec<u32>, Vec<Vec<u8>>,
            Option<u32>, Option<Vec<u8>>,
            (u32, u64), (u64, Digest),
            Digest, Mac,
        );
    }

    /// Arbitrary bytes through every protocol-message decoder in
    /// `messages.rs`, including the top-level `Msg` envelope a replica
    /// decodes straight off the (simulated) network.
    #[test]
    fn message_decoders_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        fuzz_decoders!(&bytes =>
            AuthTag, Request, BatchEntry,
            PrePrepare, Prepare, Commit,
            ReplyBody, Reply,
            Checkpoint, PreparedInfo, ViewChange, NewView,
            FetchState, StateMeta, FetchParts, PartData,
            FetchBatch, FetchRequests, RequestData, BatchData,
            Status, CommittedBatch, NewKey,
            Recover, RecoverAttest,
            Lease, LeaseRenew, LeaseRevoke, Busy,
            Msg,
        );
    }

    /// Truncating a *valid* encoding at every possible point must yield a
    /// clean `Err`, never a panic and never a bogus `Ok` that consumed
    /// the whole prefix as if it were complete.
    #[test]
    fn truncated_valid_encodings_fail_cleanly(
        client in any::<u32>(),
        timestamp in any::<u64>(),
        op in proptest::collection::vec(any::<u8>(), 0..64),
        cut in any::<usize>(),
    ) {
        let msg = Msg::Request(Request {
            client,
            timestamp,
            op,
            read_only: false,
            replier: 0,
            auth: AuthTag::Mac(Mac { nonce: 7, tag: [9; 8] }),
        });
        let full = msg.to_bytes();
        prop_assert!(Msg::from_bytes(&full).is_ok(), "round trip must hold");
        let cut = cut % full.len(); // strictly less than full.len()
        prop_assert!(
            Msg::from_bytes(&full[..cut]).is_err(),
            "a strict prefix ({cut} of {} bytes) must not decode",
            full.len()
        );
    }

    /// Flipping one byte of a valid encoding must not panic (it may still
    /// decode — MACs, not the codec, reject tampering).
    #[test]
    fn corrupted_valid_encodings_never_panic(
        seed_ts in any::<u64>(),
        pos in any::<usize>(),
        xor in 1u8..=255,
    ) {
        let msg = Msg::Commit(Commit {
            view: 3,
            seq: seed_ts,
            batch_digest: Digest([0xAB; 16]),
            replica: 2,
        });
        let mut bytes = msg.to_bytes();
        let pos = pos % bytes.len();
        bytes[pos] ^= xor;
        let _ = Msg::from_bytes(&bytes);
    }
}
