//! Property-based tests: wire-codec round trips for arbitrary protocol
//! messages, batch-digest behaviour, and log/certificate invariants under
//! arbitrary event orders.

use bft_core::checkpoint::CheckpointTracker;
use bft_core::log::Log;
use bft_core::messages::*;
use bft_core::service::{RestoreError, Service};
use bft_core::types::{ClientId, Quorums};
use bft_core::wire::Wire;
use bft_crypto::md5::Digest;
use bft_crypto::umac::Mac;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

fn arb_digest() -> impl Strategy<Value = Digest> {
    any::<[u8; 16]>().prop_map(Digest)
}

fn arb_mac() -> impl Strategy<Value = Mac> {
    (any::<u64>(), any::<[u8; 8]>()).prop_map(|(nonce, tag)| Mac { nonce, tag })
}

fn arb_auth() -> impl Strategy<Value = AuthTag> {
    prop_oneof![
        Just(AuthTag::None),
        arb_mac().prop_map(AuthTag::Mac),
        proptest::collection::vec((any::<u32>(), arb_mac()), 0..5).prop_map(|entries| {
            AuthTag::Vector(bft_crypto::keychain::Authenticator { entries })
        }),
    ]
}

fn arb_request() -> impl Strategy<Value = Request> {
    (
        any::<u32>(),
        any::<u64>(),
        proptest::collection::vec(any::<u8>(), 0..300),
        any::<bool>(),
        any::<u32>(),
        arb_auth(),
    )
        .prop_map(
            |(client, timestamp, op, read_only, replier, auth)| Request {
                client,
                timestamp,
                op,
                read_only,
                replier,
                auth,
            },
        )
}

fn arb_entry() -> impl Strategy<Value = BatchEntry> {
    prop_oneof![
        arb_request().prop_map(BatchEntry::Full),
        (any::<u32>(), any::<u64>(), arb_digest()).prop_map(|(client, timestamp, digest)| {
            BatchEntry::Ref {
                client,
                timestamp,
                digest,
            }
        }),
    ]
}

fn arb_msg() -> impl Strategy<Value = Msg> {
    prop_oneof![
        arb_request().prop_map(Msg::Request),
        (
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec(arb_entry(), 0..4),
            arb_digest(),
            proptest::collection::vec((any::<u64>(), arb_digest()), 0..3),
        )
            .prop_map(|(view, seq, entries, batch_digest, piggy_commits)| {
                Msg::PrePrepare(PrePrepare {
                    view,
                    seq,
                    entries,
                    batch_digest,
                    piggy_commits,
                })
            }),
        (any::<u64>(), any::<u64>(), arb_digest(), any::<u32>()).prop_map(
            |(view, seq, batch_digest, replica)| Msg::Prepare(Prepare {
                view,
                seq,
                batch_digest,
                replica,
                piggy_commits: vec![],
            })
        ),
        (any::<u64>(), any::<u64>(), arb_digest(), any::<u32>()).prop_map(
            |(view, seq, batch_digest, replica)| Msg::Commit(Commit {
                view,
                seq,
                batch_digest,
                replica,
            })
        ),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u32>(),
            any::<u32>(),
            any::<bool>(),
            prop_oneof![
                proptest::collection::vec(any::<u8>(), 0..200).prop_map(ReplyBody::Full),
                arb_digest().prop_map(ReplyBody::Digest),
            ],
        )
            .prop_map(|(view, timestamp, client, replica, tentative, body)| {
                Msg::Reply(Reply {
                    view,
                    timestamp,
                    client,
                    replica,
                    tentative,
                    body,
                })
            }),
        (any::<u64>(), arb_digest(), any::<u32>()).prop_map(|(seq, state_digest, replica)| {
            Msg::Checkpoint(Checkpoint {
                seq,
                state_digest,
                replica,
            })
        }),
        (
            any::<u64>(),
            any::<u64>(),
            arb_digest(),
            proptest::collection::vec(
                (any::<u64>(), any::<u64>(), arb_digest()).prop_map(|(seq, view, batch_digest)| {
                    PreparedInfo {
                        seq,
                        view,
                        batch_digest,
                    }
                }),
                0..4,
            ),
            proptest::collection::vec(
                (any::<u64>(), any::<u64>(), arb_digest()).prop_map(|(seq, view, batch_digest)| {
                    PreparedInfo {
                        seq,
                        view,
                        batch_digest,
                    }
                }),
                0..4,
            ),
            any::<u32>(),
        )
            .prop_map(
                |(new_view, last_stable, stable_digest, prepared, fast_votes, replica)| {
                    Msg::ViewChange(ViewChange {
                        new_view,
                        last_stable,
                        stable_digest,
                        prepared,
                        fast_votes,
                        replica,
                    })
                }
            ),
        any::<u64>().prop_map(|seq| Msg::FetchState(FetchState { seq })),
        (any::<u64>(), proptest::collection::vec(arb_digest(), 0..6))
            .prop_map(|(seq, leaves)| Msg::StateMeta(StateMeta { seq, leaves })),
        (any::<u64>(), proptest::collection::vec(any::<u32>(), 0..6))
            .prop_map(|(seq, parts)| Msg::FetchParts(FetchParts { seq, parts })),
        (
            any::<u64>(),
            proptest::collection::vec(
                (any::<u32>(), proptest::collection::vec(any::<u8>(), 0..100)),
                0..4
            )
        )
            .prop_map(|(seq, parts)| Msg::PartData(PartData { seq, parts })),
        (any::<u64>(), arb_digest())
            .prop_map(|(seq, batch_digest)| Msg::FetchBatch(FetchBatch { seq, batch_digest })),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(view, last_stable, last_executed)| {
                Msg::Status(Status {
                    view,
                    last_stable,
                    last_executed,
                })
            }
        ),
        (
            any::<u64>(),
            arb_digest(),
            proptest::collection::vec(arb_entry(), 0..3)
        )
            .prop_map(
                |(seq, batch_digest, entries)| Msg::CommittedBatch(CommittedBatch {
                    seq,
                    batch_digest,
                    entries,
                })
            ),
        proptest::collection::vec(arb_digest(), 0..4)
            .prop_map(|digests| Msg::FetchRequests(FetchRequests { digests })),
        proptest::collection::vec(arb_request(), 0..3)
            .prop_map(|requests| Msg::RequestData(RequestData { requests })),
        (any::<u32>(), any::<u64>())
            .prop_map(|(replica, epoch)| Msg::NewKey(NewKey { replica, epoch })),
    ]
}

proptest! {
    /// Every message survives an encode/decode round trip byte-exactly.
    #[test]
    fn msg_roundtrip(msg in arb_msg()) {
        let bytes = msg.to_bytes();
        prop_assert_eq!(Msg::from_bytes(&bytes).expect("decodes"), msg);
    }

    /// Decoding never panics on arbitrary bytes (it may error).
    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Msg::from_bytes(&bytes);
    }

    /// Truncating a valid encoding is always detected.
    #[test]
    fn truncation_always_detected(msg in arb_msg(), cut in any::<usize>()) {
        let bytes = msg.to_bytes();
        prop_assume!(bytes.len() > 1);
        let cut = 1 + cut % (bytes.len() - 1);
        let result = Msg::from_bytes(&bytes[..cut]);
        // Either an error, or (rarely) a prefix that happens to decode to
        // a *different* message; it must never equal the original.
        if let Ok(decoded) = result {
            prop_assert_ne!(decoded, msg);
        }
    }

    /// The batch digest commits to content and order.
    #[test]
    fn batch_digest_commits_to_order(entries in proptest::collection::vec(arb_entry(), 2..6)) {
        let d = batch_digest(&entries);
        let mut rotated = entries.clone();
        rotated.rotate_left(1);
        if rotated != entries {
            prop_assert_ne!(batch_digest(&rotated), d);
        }
        prop_assert_eq!(batch_digest(&entries), d, "deterministic");
    }

    /// Full and Ref forms of the same request produce the same digest.
    #[test]
    fn entry_forms_agree(req in arb_request()) {
        let full = BatchEntry::Full(req.clone());
        let by_ref = BatchEntry::Ref {
            client: req.client,
            timestamp: req.timestamp,
            digest: req.digest(),
        };
        prop_assert_eq!(batch_digest(&[full]), batch_digest(&[by_ref]));
    }
}

// ---------------------------------------------------------------------
// Incremental partitioned checkpoint digests
// ---------------------------------------------------------------------

/// A partition-aware test service: eight `u64` registers, one per
/// partition, with full undo, snapshot/restore, and dirty tracking.
#[derive(Debug, Clone, Default)]
struct ShardedKv {
    slots: [u64; 8],
    dirty: std::collections::BTreeSet<u32>,
    undo: Vec<(usize, u64)>,
}

impl ShardedKv {
    fn slot_digest(p: u32, value: u64) -> Digest {
        bft_crypto::md5::digest_parts(&[b"KV", &p.to_le_bytes(), &value.to_le_bytes()])
    }
}

impl Service for ShardedKv {
    fn execute(&mut self, _client: ClientId, op: &[u8]) -> Vec<u8> {
        let slot = usize::from(op.first().copied().unwrap_or(0)) % 8;
        let val = u64::from(op.get(1).copied().unwrap_or(0));
        self.undo.push((slot, self.slots[slot]));
        self.slots[slot] = self.slots[slot].wrapping_mul(31).wrapping_add(val);
        self.dirty.insert(slot as u32);
        Vec::new()
    }

    fn execute_read_only(&self, _client: ClientId, _op: &[u8]) -> Vec<u8> {
        Vec::new()
    }

    fn is_read_only(&self, _op: &[u8]) -> bool {
        false
    }

    fn state_digest(&self) -> Digest {
        CheckpointTracker::root_of(&(0..8).map(|p| self.partition_digest(p)).collect::<Vec<_>>())
    }

    fn snapshot(&self) -> Vec<u8> {
        self.slots.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    fn restore(&mut self, snapshot: &[u8]) -> Result<(), RestoreError> {
        if snapshot.len() != 64 {
            return Err(RestoreError("bad length".into()));
        }
        for (i, chunk) in snapshot.chunks_exact(8).enumerate() {
            self.slots[i] = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
        }
        self.undo.clear();
        self.dirty = (0..8).collect();
        Ok(())
    }

    fn commit_prefix(&mut self, ops: usize) {
        let n = ops.min(self.undo.len());
        self.undo.drain(..n);
    }

    fn rollback_suffix(&mut self, ops: usize) {
        for _ in 0..ops {
            let Some((slot, prev)) = self.undo.pop() else {
                break;
            };
            self.slots[slot] = prev;
            self.dirty.insert(slot as u32);
        }
    }

    fn partition_count(&self) -> u32 {
        8
    }

    fn partition_digest(&self, p: u32) -> Digest {
        Self::slot_digest(p, self.slots[p as usize])
    }

    fn partition_snapshot(&self, p: u32) -> Vec<u8> {
        self.slots[p as usize].to_le_bytes().to_vec()
    }

    fn take_dirty_partitions(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.dirty).into_iter().collect()
    }

    fn restore_partition(
        &mut self,
        p: u32,
        bytes: &[u8],
        expect: &Digest,
    ) -> Result<(), RestoreError> {
        let arr: [u8; 8] = bytes
            .try_into()
            .map_err(|_| RestoreError("bad length".into()))?;
        let value = u64::from_le_bytes(arr);
        if Self::slot_digest(p, value) != *expect {
            return Err(RestoreError("partition digest mismatch".into()));
        }
        self.slots[p as usize] = value;
        self.dirty.insert(p);
        Ok(())
    }
}

#[derive(Debug, Clone)]
enum KvEvent {
    Exec { slot: u8, val: u8 },
    Commit(usize),
    Rollback(usize),
    CacheByte(u8),
    Refresh,
    SnapshotRestore,
    PartitionTransfer { p: u32 },
}

fn arb_kv_event() -> impl Strategy<Value = KvEvent> {
    prop_oneof![
        4 => (any::<u8>(), any::<u8>()).prop_map(|(slot, val)| KvEvent::Exec { slot, val }),
        1 => (0usize..4).prop_map(KvEvent::Commit),
        1 => (0usize..4).prop_map(KvEvent::Rollback),
        1 => any::<u8>().prop_map(KvEvent::CacheByte),
        2 => Just(KvEvent::Refresh),
        1 => Just(KvEvent::SnapshotRestore),
        1 => (0u32..8).prop_map(|p| KvEvent::PartitionTransfer { p }),
    ]
}

proptest! {
    /// The incrementally maintained partitioned digest tree always agrees
    /// with a from-scratch recompute, under arbitrary interleavings of
    /// execution, rollback, snapshot/restore, partition transfer, and
    /// reply-cache changes.
    #[test]
    fn incremental_digest_matches_full_recompute(
        events in proptest::collection::vec(arb_kv_event(), 0..80),
    ) {
        let mut svc = ShardedKv::default();
        let mut donor = ShardedKv::default();
        donor.execute(1, &[3, 200]);
        let mut cache: Vec<u8> = Vec::new();
        svc.take_dirty_partitions();
        let mut tracker = CheckpointTracker::new(&svc, &cache);
        prop_assert_eq!(tracker.partition_count(), 8);
        for ev in events {
            match ev {
                KvEvent::Exec { slot, val } => {
                    svc.execute(1, &[slot, val]);
                }
                KvEvent::Commit(n) => svc.commit_prefix(n),
                KvEvent::Rollback(n) => svc.rollback_suffix(n),
                KvEvent::CacheByte(b) => cache.push(b),
                KvEvent::SnapshotRestore => {
                    let snap = svc.snapshot();
                    svc.restore(&snap).expect("own snapshot restores");
                }
                KvEvent::PartitionTransfer { p } => {
                    let bytes = donor.partition_snapshot(p);
                    svc.restore_partition(p, &bytes, &donor.partition_digest(p))
                        .expect("verified partition restores");
                }
                KvEvent::Refresh => {
                    let stats = tracker.refresh(&mut svc, &cache);
                    let fresh = CheckpointTracker::new(&svc, &cache);
                    prop_assert_eq!(tracker.root(), fresh.root(), "incremental == full");
                    prop_assert_eq!(stats.root, tracker.root());
                    prop_assert_eq!(tracker.leaves(), fresh.leaves());
                }
            }
        }
        // Whatever the trailing events were, one refresh reconverges.
        tracker.refresh(&mut svc, &cache);
        let fresh = CheckpointTracker::new(&svc, &cache);
        prop_assert_eq!(tracker.root(), fresh.root());
        // And a second refresh with nothing dirty re-digests nothing.
        let stats = tracker.refresh(&mut svc, &cache);
        prop_assert_eq!(stats.dirty_parts, 0);
    }
}

// ---------------------------------------------------------------------
// Log / certificate invariants
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum LogEvent {
    Prepare { seq: u64, replica: u32, tag: u8 },
    Commit { seq: u64, replica: u32, tag: u8 },
    PrePrepare { seq: u64, tag: u8 },
    Gc { to: u64 },
}

fn arb_log_event() -> impl Strategy<Value = LogEvent> {
    prop_oneof![
        (1u64..40, 0u32..4, 0u8..3).prop_map(|(seq, replica, tag)| LogEvent::Prepare {
            seq,
            replica,
            tag
        }),
        (1u64..40, 0u32..4, 0u8..3).prop_map(|(seq, replica, tag)| LogEvent::Commit {
            seq,
            replica,
            tag
        }),
        (1u64..40, 0u8..3).prop_map(|(seq, tag)| LogEvent::PrePrepare { seq, tag }),
        (0u64..60).prop_map(|to| LogEvent::Gc { to }),
    ]
}

proptest! {
    /// Under any event order: prepared/committed only ever hold with a
    /// matching pre-prepare; GC never resurrects slots; committed ⊆
    /// prepared.
    #[test]
    fn log_invariants_under_arbitrary_orders(events in proptest::collection::vec(arb_log_event(), 0..120)) {
        let q = Quorums::minimal(1);
        let mut log = Log::new(256);
        let d = |t: u8| bft_crypto::digest(&[t]);
        for ev in events {
            match ev {
                LogEvent::PrePrepare { seq, tag } => {
                    if log.in_window(seq) {
                        let slot = log.slot_mut(seq);
                        if slot.digest.is_none() {
                            slot.digest = Some(d(tag));
                            slot.requests = Some(vec![]);
                        }
                    }
                }
                LogEvent::Prepare { seq, replica, tag } => {
                    if log.in_window(seq) {
                        log.slot_mut(seq).prepares.insert(replica, d(tag));
                    }
                }
                LogEvent::Commit { seq, replica, tag } => {
                    if log.in_window(seq) {
                        log.slot_mut(seq).commits.insert(replica, d(tag));
                    }
                }
                LogEvent::Gc { to } => log.collect_garbage(to),
            }
            // Invariants after every step.
            for (seq, slot) in log.iter() {
                prop_assert!(log.in_window(seq));
                if slot.committed(&q) {
                    prop_assert!(slot.prepared(&q), "committed implies prepared");
                }
                if slot.prepared(&q) {
                    prop_assert!(slot.digest.is_some(), "prepared implies pre-prepare");
                    let d = slot.digest.expect("checked");
                    let primary = q.primary(slot.view);
                    let matching = slot
                        .prepares
                        .iter()
                        .filter(|&(&r, &pd)| r != primary && pd == d)
                        .count();
                    prop_assert!(matching >= 2, "2f matching prepares");
                }
            }
        }
    }

    /// Two logs fed the same events in the same order agree exactly.
    #[test]
    fn log_is_deterministic(events in proptest::collection::vec(arb_log_event(), 0..60)) {
        let apply = |events: &[LogEvent]| {
            let mut log = Log::new(256);
            let d = |t: u8| bft_crypto::digest(&[t]);
            for ev in events {
                match *ev {
                    LogEvent::PrePrepare { seq, tag } => {
                        if log.in_window(seq) {
                            log.slot_mut(seq).digest.get_or_insert(d(tag));
                        }
                    }
                    LogEvent::Prepare { seq, replica, tag } => {
                        if log.in_window(seq) {
                            log.slot_mut(seq).prepares.insert(replica, d(tag));
                        }
                    }
                    LogEvent::Commit { seq, replica, tag } => {
                        if log.in_window(seq) {
                            log.slot_mut(seq).commits.insert(replica, d(tag));
                        }
                    }
                    LogEvent::Gc { to } => log.collect_garbage(to),
                }
            }
            (log.low(), log.len())
        };
        prop_assert_eq!(apply(&events), apply(&events));
    }
}
