//! Randomized chaos fuzzing: seeded fault schedules against full clusters,
//! with every protocol invariant checked after every event. The harness
//! itself lives in [`bft_core::fuzz`] so the umbrella crate's tier-1
//! suite can drive the same machinery; this file holds the core-crate
//! entry points plus the directed chaos regression tests.
//!
//! Knobs (environment variables):
//!
//! - `CHAOS_SCHEDULES` — total seeded schedules across the four
//!   `fuzz_smoke_*` tests (default 120; the nightly CI job raises it).
//! - `CHAOS_BASE_SEED` — base seed the per-run seeds are derived from.
//! - `CHAOS_SEED` (+ optional `CHAOS_F`) — replay exactly one run via the
//!   `replay_one` test.
//! - `CHAOS_RECOVERY_SCHEDULES` — seeded schedules for the recovery-fault
//!   family (`fuzz_smoke_recovery`, default 24; nightly raises it), with
//!   `replay_recovery_one` as the matching replay entry point.
//! - `CHAOS_FASTPATH_SCHEDULES` — seeded schedules for the fast-path
//!   family (`fuzz_smoke_fastpath`, default 24; nightly raises it), with
//!   `replay_fastpath_one` as the matching replay entry point.
//! - `CHAOS_LEASE_SCHEDULES` — seeded schedules for the read-lease
//!   family (`fuzz_smoke_lease`, default 24; nightly raises it), with
//!   `replay_lease_one` as the matching replay entry point.
//! - `CHAOS_OVERLOAD_SCHEDULES` — seeded schedules for the overload
//!   family (`fuzz_smoke_overload`, default 24; nightly raises it):
//!   client floods, replay storms, and malformed requests against an
//!   admission-controlled cluster, with `replay_overload_one` as the
//!   matching replay entry point.

use bft_core::fuzz::{
    check_schedule, env_u64, failure_report, fastpath_fuzz_config, fastpath_fuzz_plan, fuzz_config,
    fuzz_plan, lease_fuzz_config, lease_fuzz_plan, overload_fuzz_config, overload_fuzz_plan,
    recovery_fuzz_config, recovery_fuzz_plan, run_fastpath_fuzz_schedule_traced,
    run_fuzz_schedule_traced, run_lease_fuzz_schedule_traced, run_overload_fuzz_schedule_traced,
    run_recovery_fuzz_schedule, run_recovery_fuzz_schedule_traced, ChaosDriver, Workload,
    FLIGHT_DUMP_LAST, FLIGHT_RING, HEAL_DEADLINE_NS,
};
use bft_core::prelude::*;
use bft_sim::chaos::{ByzMode, ClientFault, Fault, FaultEvent, NetFault, NodeFault};
use bft_sim::dur;

/// Fixed default base seed so a plain `cargo test` run is reproducible.
const DEFAULT_BASE_SEED: u64 = 0xCA05_2026;

/// One quarter of the smoke budget, so the four `fuzz_smoke_*` tests run
/// in parallel under the default test harness.
fn fuzz_quarter(quarter: u64) {
    let total = env_u64("CHAOS_SCHEDULES", 120);
    let base = env_u64("CHAOS_BASE_SEED", DEFAULT_BASE_SEED);
    bft_core::fuzz::check_schedules(base, total, quarter, 4, 1);
}

#[test]
fn fuzz_smoke_a() {
    fuzz_quarter(0);
}

#[test]
fn fuzz_smoke_b() {
    fuzz_quarter(1);
}

#[test]
fn fuzz_smoke_c() {
    fuzz_quarter(2);
}

#[test]
fn fuzz_smoke_d() {
    fuzz_quarter(3);
}

/// A handful of schedules against the larger f = 2 (n = 7) group.
#[test]
fn fuzz_smoke_f2() {
    let base = env_u64("CHAOS_BASE_SEED", DEFAULT_BASE_SEED);
    for i in 0..6 {
        check_schedule(derive_seed(base ^ 0xF2, i), 2);
    }
}

/// Replays one run printed by a failing fuzz test:
/// `CHAOS_SEED=<seed> [CHAOS_F=<f>] cargo test -p bft-core --test chaos replay_one -- --nocapture`
#[test]
fn replay_one() {
    let Ok(seed) = std::env::var("CHAOS_SEED") else {
        return; // nothing to replay; the fuzz tests are the default path
    };
    let seed: u64 = seed.parse().expect("CHAOS_SEED must be a u64");
    let f = env_u64("CHAOS_F", 1) as u32;
    let plan = fuzz_plan(seed, f);
    println!("replaying seed {seed} (f = {f}) with plan:\n{plan}");
    match run_fuzz_schedule_traced(seed, f, &plan) {
        Ok(()) => println!("seed {seed}: all invariants held"),
        Err((v, flight)) => panic!("{}", failure_report(seed, f, &plan, &v, Some(&flight))),
    }
}

/// Seeded schedules drawing from the recovery-fault family: silent
/// corruption and stale-state faults with proactive-recovery watchdogs
/// armed, checked against bounded-heal and recovery-completeness on top
/// of every existing invariant.
#[test]
fn fuzz_smoke_recovery() {
    let total = env_u64("CHAOS_RECOVERY_SCHEDULES", 24);
    let base = env_u64("CHAOS_BASE_SEED", DEFAULT_BASE_SEED);
    bft_core::fuzz::check_recovery_schedules(base ^ 0x9EC0, total, 0, 1, 1);
}

/// Replays one run printed by a failing recovery-fault fuzz test:
/// `CHAOS_SEED=<seed> [CHAOS_F=<f>] cargo test -p bft-core --test chaos replay_recovery_one -- --nocapture`
#[test]
fn replay_recovery_one() {
    let Ok(seed) = std::env::var("CHAOS_SEED") else {
        return; // nothing to replay; the fuzz tests are the default path
    };
    let seed: u64 = seed.parse().expect("CHAOS_SEED must be a u64");
    let f = env_u64("CHAOS_F", 1) as u32;
    let plan = recovery_fuzz_plan(seed, f);
    println!("replaying seed {seed} (f = {f}) with plan:\n{plan}");
    match run_recovery_fuzz_schedule_traced(seed, f, &plan) {
        Ok(()) => println!("seed {seed}: all invariants held"),
        Err((v, flight)) => panic!("{}", failure_report(seed, f, &plan, &v, Some(&flight))),
    }
}

/// Seeded schedules drawing from the fast-path family: the regular
/// chaos vocabulary (partitions, loss, Byzantine primaries) run against
/// a cluster with the optimistic fast path armed and a short fallback
/// window, so runs constantly cross the fast→classic boundary mid-slot.
/// Checked by the fast-commit safety invariant on top of every existing
/// one.
#[test]
fn fuzz_smoke_fastpath() {
    let total = env_u64("CHAOS_FASTPATH_SCHEDULES", 24);
    let base = env_u64("CHAOS_BASE_SEED", DEFAULT_BASE_SEED);
    bft_core::fuzz::check_fastpath_schedules(base ^ 0xFA57, total, 0, 1, 1);
}

/// Replays one run printed by a failing fast-path fuzz test:
/// `CHAOS_SEED=<seed> [CHAOS_F=<f>] cargo test -p bft-core --test chaos replay_fastpath_one -- --nocapture`
#[test]
fn replay_fastpath_one() {
    let Ok(seed) = std::env::var("CHAOS_SEED") else {
        return; // nothing to replay; the fuzz tests are the default path
    };
    let seed: u64 = seed.parse().expect("CHAOS_SEED must be a u64");
    let f = env_u64("CHAOS_F", 1) as u32;
    let plan = fastpath_fuzz_plan(seed, f);
    println!("replaying seed {seed} (f = {f}) with plan:\n{plan}");
    match run_fastpath_fuzz_schedule_traced(seed, f, &plan) {
        Ok(()) => println!("seed {seed}: all invariants held"),
        Err((v, flight)) => panic!("{}", failure_report(seed, f, &plan, &v, Some(&flight))),
    }
}

/// Seeded schedules drawing from the read-lease family: read leases
/// armed against the full chaos vocabulary *including* recovery faults,
/// so lease expiry mid-read, revokes lost in partitions, view changes
/// with outstanding leases, and recoveries of lease holders all occur —
/// checked by the stale-lease-read invariant on top of every existing
/// one.
#[test]
fn fuzz_smoke_lease() {
    let total = env_u64("CHAOS_LEASE_SCHEDULES", 24);
    let base = env_u64("CHAOS_BASE_SEED", DEFAULT_BASE_SEED);
    bft_core::fuzz::check_lease_schedules(base ^ 0x1EA5E, total, 0, 1, 1);
}

/// Replays one run printed by a failing read-lease fuzz test:
/// `CHAOS_SEED=<seed> [CHAOS_F=<f>] cargo test -p bft-core --test chaos replay_lease_one -- --nocapture`
#[test]
fn replay_lease_one() {
    let Ok(seed) = std::env::var("CHAOS_SEED") else {
        return; // nothing to replay; the fuzz tests are the default path
    };
    let seed: u64 = seed.parse().expect("CHAOS_SEED must be a u64");
    let f = env_u64("CHAOS_F", 1) as u32;
    let plan = lease_fuzz_plan(seed, f);
    println!("replaying seed {seed} (f = {f}) with plan:\n{plan}");
    match run_lease_fuzz_schedule_traced(seed, f, &plan) {
        Ok(()) => println!("seed {seed}: all invariants held"),
        Err((v, flight)) => panic!("{}", failure_report(seed, f, &plan, &v, Some(&flight))),
    }
}

/// Seeded schedules drawing from the overload family: the regular chaos
/// vocabulary plus client floods, replay storms, and malformed requests
/// against a cluster with admission control, BUSY pushback, and bounded
/// retry budgets armed — checked by the bounded-queue and honest-client
/// starvation invariants on top of every existing one, with per-client
/// liveness (a flooder's junk completions must not mask a stuck honest
/// client).
#[test]
fn fuzz_smoke_overload() {
    let total = env_u64("CHAOS_OVERLOAD_SCHEDULES", 24);
    let base = env_u64("CHAOS_BASE_SEED", DEFAULT_BASE_SEED);
    bft_core::fuzz::check_overload_schedules(base ^ 0x0BE5, total, 0, 1, 1);
}

/// Replays one run printed by a failing overload fuzz test:
/// `CHAOS_SEED=<seed> [CHAOS_F=<f>] cargo test -p bft-core --test chaos replay_overload_one -- --nocapture`
#[test]
fn replay_overload_one() {
    let Ok(seed) = std::env::var("CHAOS_SEED") else {
        return; // nothing to replay; the fuzz tests are the default path
    };
    let seed: u64 = seed.parse().expect("CHAOS_SEED must be a u64");
    let f = env_u64("CHAOS_F", 1) as u32;
    let plan = overload_fuzz_plan(seed, f);
    println!("replaying seed {seed} (f = {f}) with plan:\n{plan}");
    match run_overload_fuzz_schedule_traced(seed, f, &plan) {
        Ok(()) => println!("seed {seed}: all invariants held"),
        Err((v, flight)) => panic!("{}", failure_report(seed, f, &plan, &v, Some(&flight))),
    }
}

// ---------------------------------------------------------------------
// Directed tests
// ---------------------------------------------------------------------

/// Runs four clients (the last optionally flooding from 300 ms on) for a
/// fixed window under the overload configuration and returns the honest
/// clients' combined completed-op count plus the metric counters the
/// fairness test asserts on.
fn overload_goodput(seed: u64, flood_interval_ns: Option<u64>) -> (u64, u64, u64) {
    let cfg = overload_fuzz_config(1);
    let mut cluster = Cluster::builder(cfg).seed(seed).build_counter();
    // Targets far beyond what the window allows: goodput is whatever
    // completes in the fixed window, not a fixed op count.
    let honest: Vec<_> = (0..3)
        .map(|i| cluster.add_client(ChaosDriver::new(seed ^ (i + 1), 100_000, Workload::Mixed)))
        .collect();
    let flooder = cluster.add_client(ChaosDriver::new(seed ^ 9, 100_000, Workload::Mixed));
    let mut events = Vec::new();
    if let Some(interval_ns) = flood_interval_ns {
        events.push(FaultEvent {
            at_ns: dur::millis(300),
            fault: Fault::Client {
                client: flooder,
                fault: ClientFault::Flood { interval_ns },
            },
        });
    }
    let plan = FaultPlan { events };
    let mut checker = InvariantChecker::new();
    cluster
        .run_with_plan::<CounterService, ChaosDriver>(&plan, dur::secs(3), &mut checker)
        .expect("no invariant may break (incl. bounded queues and starvation)");
    let goodput: u64 = honest
        .iter()
        .map(|&id| cluster.client::<ChaosDriver>(id).completed_ops())
        .sum();
    let metrics = cluster.sim.metrics();
    if std::env::var("CHAOS_DEBUG").is_ok() {
        for c in [
            "replica.requests_shed",
            "replica.busy_sent",
            "replica.batches_proposed",
            "replica.view_changes_started",
            "replica.lease_reads",
            "replica.lease_revokes",
            "replica.lease_reads_evicted",
            "client.flood_requests",
            "client.flood_abandoned",
            "client.busy_received",
            "client.busy_ro_fallbacks",
            "client.retransmissions",
            "client.ro_fallbacks",
            "client.ops_completed",
            "client.retry_budget_exhausted",
        ] {
            println!("  {c}: {}", metrics.counter(c));
        }
    }
    (
        goodput,
        metrics.counter("replica.requests_shed"),
        metrics.counter("replica.busy_sent"),
    )
}

/// Overload fairness: one client flooding at ~25k req/s (a saturating
/// multiple of the cluster's ordered throughput) must not collapse the
/// three honest clients' goodput — per-client quotas shed the flood at
/// the door, round-robin draining keeps honest lanes moving, and honest
/// goodput stays within 20% of the no-flood baseline. The shed path must
/// actually fire (requests shed, BUSY sent) and every bounded queue must
/// stay at or under its cap (the checker enforces `UnboundedGrowth`
/// after every event).
#[test]
fn flooding_client_cannot_starve_honest_clients() {
    let (baseline, _, _) = overload_goodput(0x0F_A1, None);
    let (flooded, shed, busy) = overload_goodput(0x0F_A1, Some(dur::micros(40)));
    assert!(baseline > 100, "baseline must do real work, got {baseline}");
    assert!(shed > 0, "the admission gate must have shed flood requests");
    assert!(busy > 0, "sheds must be answered with BUSY, not dropped");
    assert!(
        flooded * 10 >= baseline * 8,
        "honest goodput under flood ({flooded}) fell more than 20% below baseline ({baseline})"
    );
}

/// The headline acceptance bar: a flood offered at ~10× the cluster's
/// no-flood ordered throughput (~75k req/s against ~7.5k ops/s) may cost
/// honest clients at most half their goodput. At this rate the penalty
/// box does the heavy lifting — over-quota requests are shed before MAC
/// verification — and the bounded-queue/starvation invariants run after
/// every event throughout.
#[test]
fn ten_x_saturating_flood_keeps_half_of_honest_goodput() {
    let (baseline, _, _) = overload_goodput(0x0F_A2, None);
    let (flooded, shed, _) = overload_goodput(0x0F_A2, Some(dur::micros(13)));
    assert!(baseline > 100, "baseline must do real work, got {baseline}");
    assert!(shed > 0, "the admission gate must have shed flood requests");
    assert!(
        flooded * 2 >= baseline,
        "honest goodput under a 10x flood ({flooded}) fell below 50% of baseline ({baseline})"
    );
}

/// Fault-free fast path: with no faults every slot should assemble its
/// fast quorum (all n prepare votes) and commit in two rounds — no
/// replica ever falls back, no commit messages are sent for fast slots,
/// and all client ops still complete.
#[test]
fn fastpath_fault_free_commits_without_commit_round() {
    let mut cluster = Cluster::builder(fastpath_fuzz_config(1))
        .seed(0xFA_01)
        .build_counter();
    cluster.add_client(ChaosDriver::new(0xFA_02, 40, Workload::Adds));
    cluster.add_client(ChaosDriver::new(0xFA_03, 40, Workload::Mixed));
    let mut checker = InvariantChecker::new();
    cluster
        .run_with_plan::<CounterService, ChaosDriver>(
            &FaultPlan::empty(),
            dur::secs(8),
            &mut checker,
        )
        .expect("no invariant may break");
    checker.finish().expect("linearizability must hold");
    assert_eq!(cluster.completed_ops(), 80, "all ops must complete");
    let metrics = cluster.sim.metrics();
    assert!(
        metrics.counter("replica.fast_commits") > 0,
        "fault-free slots must fast-commit"
    );
    assert_eq!(
        metrics.counter("replica.fast_fallbacks"),
        0,
        "no fault-free slot may fall back to the classic path"
    );
}

/// A silent Byzantine backup caps participation at `n - 1` prepare
/// votes, one short of the fast quorum: every slot arms its fast-path
/// timer, times out, and falls back to the classic three-phase path.
/// All ops must still complete (2f + 1 honest votes suffice for a
/// classic commit) and the fast-commit safety invariant must hold
/// across the mixed fast/classic history.
#[test]
fn silent_backup_forces_classic_fallback() {
    let mut cluster = Cluster::builder(fastpath_fuzz_config(1))
        .seed(0xFA_11)
        .build_counter();
    cluster.add_client(ChaosDriver::new(0xFA_12, 30, Workload::Adds));
    let plan = FaultPlan {
        events: vec![FaultEvent {
            at_ns: 0,
            fault: Fault::Node {
                node: 3,
                fault: NodeFault::Byzantine(ByzMode::Silent),
            },
        }],
    };
    let mut checker = InvariantChecker::new();
    cluster
        .run_with_plan::<CounterService, ChaosDriver>(&plan, dur::secs(10), &mut checker)
        .expect("no invariant may break");
    checker.finish().expect("linearizability must hold");
    assert_eq!(cluster.completed_ops(), 30, "all ops must complete");
    let metrics = cluster.sim.metrics();
    assert!(
        metrics.counter("replica.fast_fallbacks") > 0,
        "sub-fast-quorum participation must fall back to the classic path"
    );
    assert!(
        metrics.counter("replica.fast_timeouts") > 0,
        "the per-slot fast-path timer must have fired"
    );
}

/// Acceptance scenario for proactive recovery: a schedule that silently
/// corrupts one replica (no crash, no dirty marks) must converge — the
/// corrupted replica's recovery slot fires, the audit catches the bad
/// partition against the `f+1`-attested root, and within the heal
/// deadline every non-faulty replica's partition digests agree again.
/// The run is seed-replayable (`CHAOS_SEED=<seed> ... replay_recovery_one`)
/// and minimizing the plan against "still violates" leaves it empty,
/// because no subset of this plan breaks any invariant.
#[test]
fn silent_corruption_converges_after_recovery() {
    let seed = 0x00C0_FFEE;
    let f = 1;
    let plan = FaultPlan {
        events: vec![FaultEvent {
            at_ns: dur::millis(400),
            fault: Fault::Node {
                node: 2,
                fault: NodeFault::SilentCorruption { salt: 0xD1CE },
            },
        }],
    };
    run_recovery_fuzz_schedule(seed, f, &plan).expect("corruption must heal inside the deadline");
    // The set of failing sub-plans is empty: the minimizer, asked for a
    // sub-plan that still violates an invariant, cannot shed a single
    // event (there is nothing failing to shrink towards).
    let min = plan.minimize(|p| run_recovery_fuzz_schedule(seed, f, p).is_err());
    assert_eq!(min, plan, "no failing sub-plan may exist");
    // Directly examine the healed cluster: run the same schedule by hand
    // and compare every replica's attested partition-digest root (the
    // stable checkpoint's Merkle root) at the end.
    let cfg = recovery_fuzz_config(f);
    let mut cluster = Cluster::builder(cfg).seed(seed).build_counter();
    cluster.add_client(ChaosDriver::new(seed, 60, Workload::Adds));
    cluster.add_client(ChaosDriver::new(seed ^ 3, 60, Workload::Mixed).delayed(dur::millis(2)));
    let mut checker = InvariantChecker::new();
    checker.set_heal_deadline(HEAL_DEADLINE_NS);
    cluster
        .run_with_plan::<CounterService, ChaosDriver>(&plan, dur::secs(12), &mut checker)
        .expect("no invariant may break");
    checker.finish().expect("linearizability must hold");
    assert_eq!(
        checker.corrupted_replicas().count(),
        0,
        "the corrupted replica must have healed"
    );
    assert!(
        cluster
            .sim
            .metrics()
            .counter("replica.recoveries_completed")
            > 0,
        "the recovery watchdog must have fired"
    );
    // Every replica (the ex-corrupt one included) has converged to the
    // same stable checkpoint root — the Merkle root over its partition
    // digests — within the heal window. Live state is compared at
    // checkpoint granularity because a proactive recovery may be mid-
    // backfill at the instant the run ends.
    let reference = cluster.replica::<CounterService>(0).stable_proof();
    assert!(reference.0 > 0, "the run must have produced a checkpoint");
    for r in 1..4 {
        assert_eq!(
            cluster.replica::<CounterService>(r).stable_proof(),
            reference,
            "replica {r} partition digests diverge after the heal window"
        );
    }
}

/// A deliberately broken replica (quorum checks disabled behind the
/// test-only [`Behavior::BrokenQuorumCheck`] flag) must be caught by the
/// invariant checker and reported with a replayable seed.
///
/// Construction: the primary is cut off from backups 2 and 3 before any
/// request is ordered, so its pre-prepares reach only backup 1, which
/// executes them without a quorum. The view change that follows re-orders
/// the same requests — batched differently, since by then both clients'
/// retries sit in the new primary's queue — so backup 1's recorded
/// commits disagree with what the cluster actually commits.
#[test]
fn injected_broken_quorum_check_is_caught() {
    let seed = 0xB0B;
    // Arm the flight recorder so the failure dumps what every node was
    // doing right before the violation.
    let mut cluster = Cluster::builder(fuzz_config(1))
        .seed(seed)
        .trace_capacity(FLIGHT_RING)
        .build_counter();
    cluster.add_client(ChaosDriver::new(seed, 6, Workload::Adds));
    cluster.add_client(ChaosDriver::new(seed ^ 7, 6, Workload::Adds).delayed(dur::millis(5)));
    cluster
        .replica_mut::<CounterService>(1)
        .set_behavior(Behavior::BrokenQuorumCheck);
    let plan = FaultPlan {
        events: vec![
            FaultEvent {
                at_ns: 0,
                fault: Fault::Net(NetFault::Partition { a: 0, b: 2 }),
            },
            FaultEvent {
                at_ns: 0,
                fault: Fault::Net(NetFault::Partition { a: 0, b: 3 }),
            },
        ],
    };
    let mut checker = InvariantChecker::new();
    let mut caught = None;
    let empty = FaultPlan::empty();
    for round in 0..20 {
        let p = if round == 0 { &plan } else { &empty };
        if let Err(v) =
            cluster.run_with_plan::<CounterService, ChaosDriver>(p, dur::millis(250), &mut checker)
        {
            caught = Some(v);
            break;
        }
    }
    let v = caught.expect("the checker must catch the broken quorum check");
    assert!(
        matches!(
            v,
            Violation::Agreement { .. }
                | Violation::CheckpointDivergence { .. }
                | Violation::Linearizability { .. }
        ),
        "unexpected violation kind: {v}"
    );
    // The failure report must carry everything needed to replay the run,
    // with the flight-recorder trace next to the replay seed.
    let flight = cluster.sim.trace().flight_dump(FLIGHT_DUMP_LAST);
    let report = failure_report(seed, 1, &plan, &v, Some(&flight));
    assert!(report.contains(&format!("CHAOS_SEED={seed}")), "{report}");
    assert!(report.contains("replay:"), "{report}");
    assert!(
        report.contains("flight recorder"),
        "report must embed the flight dump: {report}"
    );
    // The dump must show protocol activity on the broken replica (node 1
    // executed batches without a commit quorum).
    assert!(report.contains("node 1:"), "{report}");
    assert!(report.contains("pre-prepare"), "{report}");
}

/// The traced fuzz failure path must append the per-replica health
/// snapshot table to the flight dump, so a failure report says what
/// state each node was wedged in — not just its last events.
///
/// Construction: a seeded plan crashes backups 1 and 2 at time zero and
/// never restarts them. With two of four replicas down there is no
/// quorum of three, no operation ever completes, and the liveness
/// budget expires — the health table must then show every replica and
/// the crashed pair pinned at `last_executed` 0.
#[test]
fn fuzz_failure_report_includes_health_snapshots() {
    let seed = 0x8EA17;
    let plan = FaultPlan {
        events: vec![
            FaultEvent {
                at_ns: 0,
                fault: Fault::Node {
                    node: 1,
                    fault: NodeFault::Crash,
                },
            },
            FaultEvent {
                at_ns: 0,
                fault: Fault::Node {
                    node: 2,
                    fault: NodeFault::Crash,
                },
            },
        ],
    };
    let (v, flight) = run_fuzz_schedule_traced(seed, 1, &plan)
        .expect_err("two crashed replicas out of four must stall liveness");
    assert!(matches!(v, Violation::Liveness { .. }), "{v}");
    let report = failure_report(seed, 1, &plan, &v, Some(&flight));
    assert!(
        report.contains("health at failure (per-replica snapshots)"),
        "report must embed the health table: {report}"
    );
    // One snapshot row per replica, plus the cluster-level diff line.
    for node in 0..4 {
        assert!(
            report.contains(&format!("\n{node:>4}  ")),
            "missing snapshot row for replica {node}: {report}"
        );
    }
    assert!(report.contains("cluster: max_view="), "{report}");
    // Nothing was ever ordered: the diff must agree nobody executed.
    assert!(report.contains("max_executed=0"), "{report}");
}

/// Read-only operations that cannot assemble their 2f + 1 read-only
/// quorum (here: the reader is partitioned from two replicas while
/// writes commit concurrently) must be retried as read-write and must
/// never return a stale value.
#[test]
fn read_only_conflicts_retry_as_read_write() {
    let cfg = fuzz_config(1);
    let mut cluster = Cluster::builder(cfg).seed(7).build_counter();
    let writer = cluster.add_client(ChaosDriver::new(11, 40, Workload::Adds));
    let reader = cluster.add_client(ChaosDriver::new(13, 10, Workload::Reads));
    // The reader can reach only replicas 0 and 1: a read-only round trip
    // cannot assemble its quorum and must fall back to the ordered path.
    // (The client's adaptive retransmission backoff grows with each
    // timed-out read, so the partition heals partway through — the early
    // reads exercise the conflict path, the rest finish quickly.)
    let plan = FaultPlan {
        events: vec![
            FaultEvent {
                at_ns: 0,
                fault: Fault::Net(NetFault::Partition { a: reader, b: 2 }),
            },
            FaultEvent {
                at_ns: 0,
                fault: Fault::Net(NetFault::Partition { a: reader, b: 3 }),
            },
            FaultEvent {
                at_ns: dur::secs(5),
                fault: Fault::Net(NetFault::HealNode(reader)),
            },
        ],
    };
    let mut checker = InvariantChecker::new();
    cluster
        .run_with_plan::<CounterService, ChaosDriver>(&plan, dur::secs(40), &mut checker)
        .expect("no invariant may break");
    checker.finish().expect("linearizability must hold");
    assert_eq!(cluster.completed_ops(), 50, "all ops must complete");
    assert_eq!(
        cluster.client::<ChaosDriver>(reader).completed_ops(),
        10,
        "every read must complete despite the unreachable read-only quorum"
    );
    assert!(
        cluster.sim.metrics().counter("client.retransmissions") > 0,
        "reads must have timed out and retried as read-write"
    );
    let _ = writer;
}

/// The read-lease counterpart to the conflict test above
/// (arXiv:2107.11144): with `Config::read_leases` on and a writer
/// running concurrently, reads in a 99/1 read-dominated mix must stay on
/// the one-round lease path — zero read-write fallbacks — and every
/// lease-served value must be linearizable (the checker cross-checks
/// each one against the global order at its serve instant). Without
/// leases the same conflict pattern degrades reads into ordered
/// read-write rounds; the `read_only_conflicts_retry_as_read_write` test
/// above pins that baseline behaviour.
#[test]
fn leased_reads_stay_one_round_under_conflicting_writes() {
    let cfg = lease_fuzz_config(1);
    let mut cluster = Cluster::builder(cfg).seed(41).build_counter();
    // A dedicated writer keeps the fence busy: every ordered add must
    // first revoke (or wait out) the outstanding lease round.
    let writer = cluster.add_client(ChaosDriver::new(43, 120, Workload::Adds));
    let reader_a = cluster.add_client(ChaosDriver::new(47, 300, Workload::ReadMostly));
    let reader_b =
        cluster.add_client(ChaosDriver::new(53, 300, Workload::ReadMostly).delayed(dur::millis(3)));
    let mut checker = InvariantChecker::new();
    cluster
        .run_with_plan::<CounterService, ChaosDriver>(
            &FaultPlan::empty(),
            dur::secs(30),
            &mut checker,
        )
        .expect("no invariant may break (incl. stale lease reads)");
    checker.finish().expect("linearizability must hold");
    assert_eq!(cluster.completed_ops(), 720, "all ops must complete");
    let metrics = cluster.sim.metrics();
    assert!(
        metrics.counter("replica.lease_reads") > 0,
        "reads must have been served locally under a lease"
    );
    assert!(
        metrics.counter("replica.lease_revokes") > 0,
        "concurrent writes must have exercised the revoke fence"
    );
    assert_eq!(
        metrics.counter("client.ro_fallbacks"),
        0,
        "no read may fall back to the ordered read-write path"
    );
    let _ = (writer, reader_a, reader_b);
}

/// View change under an asymmetric partition: the primary is cut off
/// from every backup but still hears from clients. The backups must
/// elect a new primary and resume progress; after the heal the isolated
/// ex-primary must rejoin (via NEW-VIEW retransmission) and the cluster
/// must settle within a bounded number of views.
#[test]
fn view_change_under_asymmetric_partition() {
    // Enough closed-loop work that the clients are still busy for the
    // whole fault window (an op completes in a couple of milliseconds).
    let mut cluster = Cluster::builder(fuzz_config(1)).seed(21).build_counter();
    cluster.add_client(ChaosDriver::new(31, 400, Workload::Mixed));
    cluster.add_client(ChaosDriver::new(37, 400, Workload::Mixed));
    let mut events = vec![];
    for b in 1..4 {
        events.push(FaultEvent {
            at_ns: dur::millis(100),
            fault: Fault::Net(NetFault::Partition { a: 0, b }),
        });
    }
    events.push(FaultEvent {
        at_ns: dur::millis(2_500),
        fault: Fault::Net(NetFault::HealNode(0)),
    });
    let plan = FaultPlan { events };
    let mut checker = InvariantChecker::new();
    cluster
        .run_with_plan::<CounterService, ChaosDriver>(&plan, dur::secs(8), &mut checker)
        .expect("no invariant may break");
    checker.finish().expect("linearizability must hold");
    assert_eq!(cluster.completed_ops(), 800, "progress must resume");
    assert!(
        cluster
            .sim
            .metrics()
            .counter("replica.view_changes_started")
            > 0,
        "the backups must have run a view change"
    );
    for i in 0..4 {
        let view = cluster.replica::<CounterService>(i).view();
        assert!(
            (1..=4).contains(&view),
            "replica {i} must have left view 0 and settled quickly, got view {view}"
        );
    }
}
