//! Trace-lifecycle properties: for committed requests, span events must
//! appear in protocol phase order with monotonic simulated timestamps,
//! across randomized seeds; and the per-request span assembler must join
//! every completed request into a chain whose phase times telescope
//! exactly to the end-to-end latency.

use std::collections::HashMap;

use bft_core::fuzz::{fuzz_config, ChaosDriver, Workload};
use bft_core::prelude::*;
use bft_sim::trace::{assemble, breakdown, SpanEdge, TracePhase};
use bft_sim::NodeId;
use proptest::prelude::*;

const OPS_PER_CLIENT: u64 = 6;

/// Runs a small fault-free traced cluster to completion; returns it plus
/// the number of completed operations.
fn run_traced(seed: u64) -> (Cluster, u64) {
    let mut cluster = Cluster::builder(fuzz_config(1))
        .seed(seed)
        .trace_capacity(4096)
        .build_counter();
    cluster.add_client(ChaosDriver::new(seed ^ 1, OPS_PER_CLIENT, Workload::Adds));
    cluster.add_client(ChaosDriver::new(seed ^ 2, OPS_PER_CLIENT, Workload::Adds));
    let target = 2 * OPS_PER_CLIENT;
    let mut rounds = 0;
    while cluster.completed_ops() < target && rounds < 200 {
        cluster.run_for(dur::millis(50));
        rounds += 1;
    }
    assert_eq!(cluster.completed_ops(), target, "workload must complete");
    (cluster, target)
}

proptest! {
    /// Phase-order and monotonicity invariants over randomized seeds.
    #[test]
    fn committed_requests_trace_in_phase_order(seed in any::<u64>()) {
        let (cluster, target) = run_traced(seed);
        let sink = cluster.sim.trace();

        // 1. Per-node rings are monotone in simulated time: each node is
        //    a serial processor, so its events must be recorded in order.
        for node in 0..sink.node_count() as NodeId {
            let mut prev = 0u64;
            for ev in sink.node_events(node) {
                prop_assert!(
                    ev.at_ns >= prev,
                    "node {node}: event at {} after {}", ev.at_ns, prev
                );
                prev = ev.at_ns;
            }
        }

        // 2. Ordering spans per (node, seq) respect protocol phase order:
        //    pre-prepare opens before it closes (prepared), the commit
        //    span closes no earlier than prepared, and every execution
        //    instant for that seq happens after the pre-prepare opened.
        let mut pp_open: HashMap<(NodeId, u64), u64> = HashMap::new();
        let mut prepared: HashMap<(NodeId, u64), u64> = HashMap::new();
        let mut committed: HashMap<(NodeId, u64), u64> = HashMap::new();
        let mut exec: Vec<(NodeId, u64, u64)> = Vec::new();
        for ev in sink.events() {
            let key = (ev.node, ev.meta.seq);
            match (ev.phase, ev.edge) {
                (TracePhase::PrePrepare, SpanEdge::Open) => {
                    pp_open.entry(key).or_insert(ev.at_ns);
                }
                (TracePhase::PrePrepare, SpanEdge::Close) => {
                    prepared.entry(key).or_insert(ev.at_ns);
                }
                (TracePhase::Commit, SpanEdge::Close) => {
                    committed.entry(key).or_insert(ev.at_ns);
                }
                (TracePhase::ExecuteRequest, SpanEdge::Instant) => {
                    exec.push((ev.node, ev.meta.seq, ev.at_ns));
                }
                _ => {}
            }
        }
        prop_assert!(!prepared.is_empty(), "requests must have prepared");
        for (key, &t_prep) in &prepared {
            if let Some(&t_open) = pp_open.get(key) {
                prop_assert!(
                    t_open <= t_prep,
                    "node {} seq {}: pre-prepare closed at {} before it opened at {}",
                    key.0, key.1, t_prep, t_open
                );
            }
            if let Some(&t_commit) = committed.get(key) {
                prop_assert!(
                    t_prep <= t_commit,
                    "node {} seq {}: commit quorum at {} before prepared at {}",
                    key.0, key.1, t_commit, t_prep
                );
            }
        }
        for &(node, seq, t_exec) in &exec {
            if let Some(&t_open) = pp_open.get(&(node, seq)) {
                prop_assert!(
                    t_open <= t_exec,
                    "node {node} seq {seq}: executed at {t_exec} before pre-prepare at {t_open}"
                );
            }
        }

        // 3. The assembler joins every completed request, and each chain
        //    telescopes: phase times sum exactly to the end-to-end time.
        let paths = assemble(sink);
        prop_assert_eq!(paths.len() as u64, target);
        for p in &paths {
            let sum: u64 = p.phases().iter().sum();
            prop_assert_eq!(sum, p.total());
            for w in p.t.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
        }
        let b = breakdown(&paths);
        prop_assert_eq!(b.requests, target);
        prop_assert_eq!(b.phase_total_ns.iter().sum::<u64>(), b.e2e_total_ns);
    }
}

/// The assembled end-to-end mean must agree with the independently
/// measured `client.latency` histogram (which is log-bucketed, so allow
/// its ~3% quantization error plus slack).
#[test]
fn breakdown_matches_measured_latency() {
    let (cluster, _) = run_traced(0x7ace);
    let paths = assemble(cluster.sim.trace());
    let b = breakdown(&paths);
    let measured = cluster.sim.metrics().summary("client.latency").mean;
    let assembled = b.e2e_mean_ns();
    let err = (assembled - measured).abs() / measured;
    assert!(
        err < 0.05,
        "assembled mean {assembled} vs measured mean {measured} (err {err})"
    );
}

/// Tracing must not perturb the simulation: a traced run and an untraced
/// run of the same seed produce identical event counts and final state.
#[test]
fn tracing_is_observer_only() {
    let run = |capacity: usize| {
        let mut cluster = Cluster::builder(fuzz_config(1))
            .seed(99)
            .trace_capacity(capacity)
            .build_counter();
        cluster.add_client(ChaosDriver::new(5, 8, Workload::Mixed));
        let mut rounds = 0;
        while cluster.completed_ops() < 8 && rounds < 100 {
            cluster.run_for(dur::millis(50));
            rounds += 1;
        }
        (
            cluster.sim.events_processed(),
            cluster.sim.now(),
            cluster.replica::<CounterService>(0).last_executed(),
        )
    };
    assert_eq!(run(0), run(1024));
}
