//! Convenience harness assembling a simulated BFT cluster: `n` replicas
//! followed by any number of clients, with node ids equal to principal
//! ids. Used by the test suite, the examples, and the benchmark drivers.

use crate::client::{Client, ClientDriver};
use crate::config::Config;
use crate::messages::Packet;
use crate::replica::Replica;
use crate::service::Service;
use crate::types::ClientId;
use bft_sim::{NetConfig, NodeId, Simulation};

/// A simulated BFT cluster under construction / test.
pub struct Cluster {
    /// The underlying simulation.
    pub sim: Simulation<Packet>,
    /// The shared configuration.
    pub cfg: Config,
    /// Node ids of the replicas (always `0..n`).
    pub replicas: Vec<NodeId>,
    /// Node ids of the clients (in registration order).
    pub clients: Vec<NodeId>,
}

impl Cluster {
    /// Creates a cluster with `n` replicas, each running a service built
    /// by `make_service`.
    pub fn new<S, F>(seed: u64, net: NetConfig, cfg: Config, mut make_service: F) -> Cluster
    where
        S: Service,
        F: FnMut(u32) -> S,
    {
        cfg.validate();
        let mut sim = Simulation::new(seed, net);
        let mut replicas = Vec::with_capacity(cfg.n() as usize);
        for i in 0..cfg.n() {
            let id = sim.add_node(Box::new(Replica::new(i, cfg.clone(), make_service(i))));
            assert_eq!(id, i, "replica node ids must equal replica ids");
            replicas.push(id);
        }
        Cluster {
            sim,
            cfg,
            replicas,
            clients: Vec::new(),
        }
    }

    /// Adds a client with the given driver; returns its id.
    pub fn add_client<D: ClientDriver>(&mut self, driver: D) -> ClientId {
        let id = self.sim.node_count() as ClientId;
        let node = self
            .sim
            .add_node(Box::new(Client::new(id, self.cfg.clone(), driver)));
        assert_eq!(node, id);
        self.clients.push(id);
        id
    }

    /// Borrows replica `i` downcast to its concrete service type.
    ///
    /// # Panics
    ///
    /// Panics if the service type does not match.
    pub fn replica<S: Service>(&self, i: u32) -> &Replica<S> {
        self.sim.node_as::<Replica<S>>(i)
    }

    /// Mutably borrows replica `i`.
    ///
    /// # Panics
    ///
    /// Panics if the service type does not match.
    pub fn replica_mut<S: Service>(&mut self, i: u32) -> &mut Replica<S> {
        self.sim.node_as_mut::<Replica<S>>(i)
    }

    /// Borrows a client by id.
    ///
    /// # Panics
    ///
    /// Panics if the driver type does not match.
    pub fn client<D: ClientDriver>(&self, id: ClientId) -> &Client<D> {
        self.sim.node_as::<Client<D>>(id)
    }

    /// Mutably borrows a client by id.
    ///
    /// # Panics
    ///
    /// Panics if the driver type does not match.
    pub fn client_mut<D: ClientDriver>(&mut self, id: ClientId) -> &mut Client<D> {
        self.sim.node_as_mut::<Client<D>>(id)
    }

    /// Runs the simulation for `delta_ns` of simulated time.
    pub fn run_for(&mut self, delta_ns: u64) {
        self.sim.run_for(delta_ns);
    }

    /// Total completed client operations (from the metrics).
    pub fn completed_ops(&self) -> u64 {
        self.sim.metrics().counter("client.ops_completed")
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("replicas", &self.replicas.len())
            .field("clients", &self.clients.len())
            .field("now", &self.sim.now())
            .finish()
    }
}
