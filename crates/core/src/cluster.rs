//! Convenience harness assembling a simulated BFT cluster: `n` replicas
//! followed by any number of clients, with node ids equal to principal
//! ids. Used by the test suite, the examples, and the benchmark drivers.

use crate::client::{Client, ClientBehavior, ClientDriver};
use crate::config::Config;
use crate::invariants::{InvariantChecker, Violation};
use crate::messages::{Msg, Packet, Request};
use crate::replica::{Behavior, Replica};
use crate::service::{CounterService, Service};
use crate::types::ClientId;
use bft_sim::chaos::{ByzMode, ClientFault, Fault, FaultPlan, NodeFault};
use bft_sim::{HealthReport, HealthSnapshot, NetConfig, NodeId, Simulation};

/// Mixes an index into a base seed (splitmix64), giving well-separated
/// per-run seeds for fuzz loops and multi-cluster tests.
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Fluent construction of a [`Cluster`], so fuzz loops and directed tests
/// share one path instead of duplicating seed/net plumbing.
#[derive(Debug, Clone)]
pub struct ClusterBuilder {
    seed: u64,
    net: NetConfig,
    cfg: Config,
    trace_capacity: usize,
}

impl ClusterBuilder {
    /// Starts a builder for the given protocol configuration, with seed 0,
    /// the lossless network model, and tracing disabled.
    pub fn new(cfg: Config) -> ClusterBuilder {
        ClusterBuilder {
            seed: 0,
            net: NetConfig::LOSSLESS_100MBPS,
            cfg,
            trace_capacity: 0,
        }
    }

    /// Sets the simulation RNG seed.
    pub fn seed(mut self, seed: u64) -> ClusterBuilder {
        self.seed = seed;
        self
    }

    /// Sets the network model.
    pub fn net(mut self, net: NetConfig) -> ClusterBuilder {
        self.net = net;
        self
    }

    /// Enables trace-event recording with the given per-node ring
    /// capacity (0 = disabled). Tracing never changes simulation
    /// behaviour — a traced run is event-for-event identical to an
    /// untraced one — so the fuzz flight recorder can re-run a failing
    /// seed with tracing on and capture exactly the failing execution.
    pub fn trace_capacity(mut self, capacity: usize) -> ClusterBuilder {
        self.trace_capacity = capacity;
        self
    }

    /// The seed this builder will use (for replay reporting).
    pub fn seed_value(&self) -> u64 {
        self.seed
    }

    /// Builds the cluster, constructing each replica's service with
    /// `make_service`.
    pub fn build<S, F>(self, make_service: F) -> Cluster
    where
        S: Service,
        F: FnMut(u32) -> S,
    {
        let mut cluster = Cluster::new(self.seed, self.net, self.cfg, make_service);
        if self.trace_capacity > 0 {
            cluster.sim.trace_mut().set_capacity(self.trace_capacity);
        }
        cluster
    }

    /// Builds a cluster of default counter services (the chaos workload).
    pub fn build_counter(self) -> Cluster {
        self.build(|_| CounterService::default())
    }
}

/// A simulated BFT cluster under construction / test.
pub struct Cluster {
    /// The underlying simulation.
    pub sim: Simulation<Packet>,
    /// The shared configuration.
    pub cfg: Config,
    /// Node ids of the replicas (always `0..n`).
    pub replicas: Vec<NodeId>,
    /// Node ids of the clients (in registration order).
    pub clients: Vec<NodeId>,
}

impl Cluster {
    /// Creates a cluster with `n` replicas, each running a service built
    /// by `make_service`.
    pub fn new<S, F>(seed: u64, net: NetConfig, cfg: Config, mut make_service: F) -> Cluster
    where
        S: Service,
        F: FnMut(u32) -> S,
    {
        cfg.validate();
        let mut sim = Simulation::new(seed, net);
        let mut replicas = Vec::with_capacity(cfg.n() as usize);
        for i in 0..cfg.n() {
            let id = sim.add_node(Box::new(Replica::new(i, cfg.clone(), make_service(i))));
            assert_eq!(id, i, "replica node ids must equal replica ids");
            replicas.push(id);
        }
        Cluster {
            sim,
            cfg,
            replicas,
            clients: Vec::new(),
        }
    }

    /// Adds a client with the given driver; returns its id.
    pub fn add_client<D: ClientDriver>(&mut self, driver: D) -> ClientId {
        let id = self.sim.node_count() as ClientId;
        let node = self
            .sim
            .add_node(Box::new(Client::new(id, self.cfg.clone(), driver)));
        assert_eq!(node, id);
        self.clients.push(id);
        id
    }

    /// Borrows replica `i` downcast to its concrete service type.
    ///
    /// # Panics
    ///
    /// Panics if the service type does not match.
    pub fn replica<S: Service>(&self, i: u32) -> &Replica<S> {
        self.sim.node_as::<Replica<S>>(i)
    }

    /// Mutably borrows replica `i`.
    ///
    /// # Panics
    ///
    /// Panics if the service type does not match.
    pub fn replica_mut<S: Service>(&mut self, i: u32) -> &mut Replica<S> {
        self.sim.node_as_mut::<Replica<S>>(i)
    }

    /// Borrows a client by id.
    ///
    /// # Panics
    ///
    /// Panics if the driver type does not match.
    pub fn client<D: ClientDriver>(&self, id: ClientId) -> &Client<D> {
        self.sim.node_as::<Client<D>>(id)
    }

    /// Mutably borrows a client by id.
    ///
    /// # Panics
    ///
    /// Panics if the driver type does not match.
    pub fn client_mut<D: ClientDriver>(&mut self, id: ClientId) -> &mut Client<D> {
        self.sim.node_as_mut::<Client<D>>(id)
    }

    /// Starts a [`ClusterBuilder`] for `cfg`.
    pub fn builder(cfg: Config) -> ClusterBuilder {
        ClusterBuilder::new(cfg)
    }

    /// An infinite iterator of builders whose seeds are derived from
    /// `base_seed` (via [`derive_seed`]): run `i` of a fuzz loop uses the
    /// `i`-th builder. Report `builder.seed_value()` on failure so the
    /// run can be reconstructed without re-deriving.
    pub fn with_seed_iter(base_seed: u64, cfg: Config) -> impl Iterator<Item = ClusterBuilder> {
        (0u64..).map(move |i| ClusterBuilder::new(cfg.clone()).seed(derive_seed(base_seed, i)))
    }

    /// Runs the simulation for `delta_ns` of simulated time.
    pub fn run_for(&mut self, delta_ns: u64) {
        self.sim.run_for(delta_ns);
    }

    /// Total completed client operations (from the metrics).
    pub fn completed_ops(&self) -> u64 {
        self.sim.metrics().counter("client.ops_completed")
    }

    /// Per-replica health snapshots at the current simulated time, in
    /// replica-id order. Observer-only: taking snapshots never changes
    /// the simulation.
    pub fn health_snapshots<S: Service>(&self) -> Vec<HealthSnapshot> {
        let now = self.sim.now().nanos();
        self.replicas
            .iter()
            .map(|&i| self.replica::<S>(i).health_snapshot(now))
            .collect()
    }

    /// A cluster-level [`HealthReport`] diffing the current per-replica
    /// snapshots (laggards, view divergence, wedged nodes).
    pub fn health_report<S: Service>(&self) -> HealthReport {
        HealthReport::from_snapshots(self.health_snapshots::<S>())
    }

    /// Runs for `delta_ns` of simulated time while applying `plan`'s
    /// faults at their scheduled instants (absolute, measured from time
    /// zero) and checking every invariant after every event.
    ///
    /// `S` and `D` are the cluster's service and client-driver types
    /// (chaos runs use one driver type for all clients). A plan should be
    /// passed to exactly one call; later phases of the same run (e.g. a
    /// post-heal liveness phase) pass [`FaultPlan::empty`] so node faults
    /// are not re-applied.
    pub fn run_with_plan<S: Service, D: ClientDriver>(
        &mut self,
        plan: &FaultPlan,
        delta_ns: u64,
        checker: &mut InvariantChecker,
    ) -> Result<(), Violation> {
        let deadline = self.sim.now().after(delta_ns);
        let mut next_fault = 0;
        loop {
            let next_event = self.sim.next_event_at().filter(|&t| t <= deadline);
            // Apply every fault due before the next event we will step
            // over (nothing happens between events, so applying a fault
            // any time before the first event at/after its instant is
            // exact).
            let fault_horizon = next_event.unwrap_or(deadline).nanos();
            while next_fault < plan.events.len() && plan.events[next_fault].at_ns <= fault_horizon {
                self.apply_fault::<S, D>(&plan.events[next_fault].fault, checker);
                next_fault += 1;
            }
            if next_event.is_none() {
                break;
            }
            self.sim.step();
            checker.observe::<S, D>(self)?;
        }
        // No events remain before the deadline; advance the clock to it.
        self.sim.run_until(deadline);
        Ok(())
    }

    fn apply_fault<S: Service, D: ClientDriver>(
        &mut self,
        fault: &Fault,
        checker: &mut InvariantChecker,
    ) {
        match fault {
            Fault::Net(nf) => nf.apply(self.sim.network_mut()),
            Fault::Client { client, fault } => {
                if *client < self.cfg.n() || *client >= self.sim.node_count() as u32 {
                    return;
                }
                let behavior = match fault {
                    ClientFault::Flood { interval_ns } => ClientBehavior::Flood {
                        interval_ns: *interval_ns,
                    },
                    ClientFault::Replay { interval_ns } => ClientBehavior::Replay {
                        interval_ns: *interval_ns,
                    },
                    ClientFault::Malformed { interval_ns } => ClientBehavior::Malformed {
                        interval_ns: *interval_ns,
                    },
                    ClientFault::Restore => ClientBehavior::Correct,
                };
                if *fault == ClientFault::Restore {
                    checker.restore_client(*client);
                } else {
                    // A misbehaving client's ops may never complete;
                    // exempt it from the starvation audit.
                    checker.mark_client_tainted(*client);
                }
                self.client_mut::<D>(*client).set_behavior(behavior);
                // The behavior's pacing timer arms on the client's next
                // event. A flooding client may have nothing scheduled
                // (e.g. parked on a long retransmission backoff), so
                // kick it with a harmless message — clients ignore
                // REQUEST bodies — to bound the arming delay.
                let kick = Packet::unauthenticated(Msg::Request(Request {
                    client: *client,
                    timestamp: 0,
                    op: Vec::new(),
                    read_only: false,
                    replier: 0,
                    auth: crate::messages::AuthTag::None,
                }));
                self.sim.inject(*client, *client, kick, 0);
            }
            Fault::Node { node, fault } => {
                if *node >= self.cfg.n() {
                    return;
                }
                let behavior = match fault {
                    NodeFault::Crash => Behavior::Crashed,
                    NodeFault::Restart => Behavior::Correct,
                    NodeFault::StaleState => Behavior::StaleState,
                    NodeFault::SilentCorruption { salt } => {
                        // Not a behaviour switch: mutate the service state
                        // in place and tell the checker, which suspends
                        // (revocably) this replica's checkpoint-
                        // consistency check until a recovery heals it.
                        let now = self.sim.now().nanos();
                        self.replica_mut::<S>(*node).corrupt_state(*salt);
                        checker.mark_corrupted(*node, now);
                        return;
                    }
                    NodeFault::Byzantine(mode) => {
                        // Byzantine state is arbitrary by definition;
                        // exempt the replica from the safety audit.
                        checker.mark_tainted(*node);
                        match mode {
                            ByzMode::Silent => Behavior::Silent,
                            ByzMode::Equivocate => Behavior::EquivocatingPrimary,
                            ByzMode::WrongResult => Behavior::WrongResult,
                            ByzMode::CorruptAuth => Behavior::CorruptAuth,
                            ByzMode::CorruptStateData => Behavior::CorruptStateData,
                        }
                    }
                };
                self.replica_mut::<S>(*node).set_behavior(behavior);
            }
        }
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("replicas", &self.replicas.len())
            .field("clients", &self.clients.len())
            .field("now", &self.sim.now())
            .finish()
    }
}
