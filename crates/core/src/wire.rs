//! Byte-exact wire encoding.
//!
//! Digests and MACs are computed over encoded bytes, and the network model
//! charges links for encoded sizes, so the codec is the ground truth for
//! both authentication and performance accounting — exactly the role of
//! BFT's hand-rolled message formats. The format is little-endian, with
//! varint-free fixed-width integers (simple, and the sizes match the
//! paper-era C structs closely enough for the evaluation).

use bft_crypto::md5::Digest;
use bft_crypto::umac::Mac;

/// Encoding/decoding failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the value was complete.
    Truncated,
    /// A tag or enum discriminant was out of range.
    BadTag(u8),
    /// A length prefix exceeded sanity bounds.
    BadLength(u64),
    /// Input had trailing bytes after a complete message.
    TrailingBytes,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "input truncated"),
            WireError::BadTag(t) => write!(f, "invalid tag byte {t}"),
            WireError::BadLength(l) => write!(f, "implausible length {l}"),
            WireError::TrailingBytes => write!(f, "trailing bytes after message"),
        }
    }
}

impl std::error::Error for WireError {}

/// Maximum length prefix accepted while decoding, to bound allocation on
/// malformed input.
const MAX_LEN: u64 = 64 * 1024 * 1024;

/// A value with a byte-exact wire representation.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decodes a value from the front of `r`.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] describing the first malformation found.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;

    /// Encodes into a fresh buffer, pre-sized from [`Wire::wire_len`] so
    /// encoding never reallocates.
    fn to_bytes(&self) -> Vec<u8> {
        let len = self.wire_len();
        let mut buf = Vec::with_capacity(len);
        self.encode(&mut buf);
        debug_assert_eq!(buf.len(), len, "wire_len disagrees with encode");
        buf
    }

    /// Encoded size in bytes. Implementations override this with an
    /// arithmetic computation; the default encodes into a scratch buffer
    /// and counts (correct for any type, but does the work of a full
    /// encode).
    fn wire_len(&self) -> usize {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf.len()
    }

    /// Decodes a complete message, rejecting trailing bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on malformed or incomplete input.
    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(WireError::TrailingBytes);
        }
        Ok(v)
    }
}

/// A cursor over bytes being decoded.
#[derive(Debug)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Reader<'a> {
        Reader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Takes `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Takes a single byte.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if the input is exhausted.
    pub fn take_byte(&mut self) -> Result<u8, WireError> {
        self.take(1)?.first().copied().ok_or(WireError::Truncated)
    }

    /// Takes exactly `N` bytes as a fixed-size array, so decoders never
    /// need a panicking slice-to-array conversion.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if fewer than `N` bytes remain.
    pub fn take_array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        self.take(N)?.try_into().map_err(|_| WireError::Truncated)
    }
}

impl Wire for u8 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.take_byte()
    }
    fn wire_len(&self) -> usize {
        1
    }
}

impl Wire for u32 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(u32::from_le_bytes(r.take_array()?))
    }
    fn wire_len(&self) -> usize {
        4
    }
}

impl Wire for u64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(u64::from_le_bytes(r.take_array()?))
    }
    fn wire_len(&self) -> usize {
        8
    }
}

impl Wire for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.take_byte()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::BadTag(t)),
        }
    }
    fn wire_len(&self) -> usize {
        1
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u64).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
    fn wire_len(&self) -> usize {
        8 + self.iter().map(Wire::wire_len).sum::<usize>()
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = u64::decode(r)?;
        if len > MAX_LEN {
            return Err(WireError::BadLength(len));
        }
        // Guard allocation: items are at least one byte each.
        if len as usize > r.remaining() {
            return Err(WireError::Truncated);
        }
        let mut out = Vec::with_capacity(len as usize);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.take_byte()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            t => Err(WireError::BadTag(t)),
        }
    }
    fn wire_len(&self) -> usize {
        1 + self.as_ref().map_or(0, Wire::wire_len)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
    fn wire_len(&self) -> usize {
        self.0.wire_len() + self.1.wire_len()
    }
}

impl Wire for Digest {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Digest(r.take_array()?))
    }
    fn wire_len(&self) -> usize {
        16
    }
}

impl Wire for Mac {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.nonce.encode(buf);
        buf.extend_from_slice(&self.tag);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let nonce = u64::decode(r)?;
        let tag = r.take_array()?;
        Ok(Mac { nonce, tag })
    }
    fn wire_len(&self) -> usize {
        16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(bytes.len(), v.wire_len());
        assert_eq!(T::from_bytes(&bytes).expect("decodes"), v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(0xdead_beefu32);
        roundtrip(u64::MAX);
        roundtrip(true);
        roundtrip(false);
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(vec![1u8, 2, 3]);
        roundtrip(Vec::<u8>::new());
        roundtrip(vec![7u32, 8, 9]);
        roundtrip(Option::<u32>::None);
        roundtrip(Some(5u64));
        roundtrip((3u32, vec![1u8]));
    }

    #[test]
    fn crypto_types_roundtrip() {
        roundtrip(bft_crypto::digest(b"x"));
        roundtrip(Mac {
            nonce: 42,
            tag: [1, 2, 3, 4, 5, 6, 7, 8],
        });
    }

    #[test]
    fn truncation_detected() {
        let bytes = 0xabcdu32.to_bytes();
        assert_eq!(u32::from_bytes(&bytes[..3]), Err(WireError::Truncated));
        assert_eq!(u64::from_bytes(&[]), Err(WireError::Truncated));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut bytes = 1u8.to_bytes();
        bytes.push(0);
        assert_eq!(u8::from_bytes(&bytes), Err(WireError::TrailingBytes));
    }

    #[test]
    fn bad_bool_tag() {
        assert_eq!(bool::from_bytes(&[2]), Err(WireError::BadTag(2)));
    }

    #[test]
    fn huge_length_rejected_without_allocating() {
        let mut bytes = Vec::new();
        u64::MAX.encode(&mut bytes);
        assert_eq!(
            Vec::<u8>::from_bytes(&bytes),
            Err(WireError::BadLength(u64::MAX))
        );
        // A length that passes the sanity bound but exceeds the input is
        // caught as truncation before allocation.
        let mut bytes = Vec::new();
        (1_000_000u64).encode(&mut bytes);
        assert_eq!(Vec::<u32>::from_bytes(&bytes), Err(WireError::Truncated));
    }

    #[test]
    fn option_bad_tag() {
        assert_eq!(Option::<u32>::from_bytes(&[9]), Err(WireError::BadTag(9)));
    }
}
