//! The chaos-fuzzing harness: seeded (fault plan, workload) pairs run to
//! quiescence with every protocol invariant checked after every event.
//!
//! This lives in the library (rather than a test file) so that both the
//! core integration tests and the umbrella crate's tier-1 suite drive
//! one implementation with different budgets. A fuzz iteration is a pure
//! function of `(seed, f)`:
//!
//! 1. [`fuzz_config`] derives an aggressive protocol configuration
//!    (short timers, small checkpoint interval) so view changes, garbage
//!    collection, and state transfer all happen within simulated seconds;
//! 2. [`fuzz_plan`] generates the deterministic fault schedule;
//! 3. [`run_fuzz_schedule`] builds the cluster through the same
//!    [`ClusterBuilder`] path the directed tests use, runs the mixed
//!    workload through the fault window, then gives the healed cluster a
//!    bounded liveness budget to finish every outstanding operation.
//!
//! On a violation, [`check_schedule`] greedily minimizes the fault plan
//! (keeping the violation kind) and panics with the seed, the minimized
//! plan, and a one-command replay line.

use crate::client::{ClientApi, ClientDriver};
use crate::cluster::{derive_seed, Cluster};
use crate::config::Config;
use crate::invariants::{InvariantChecker, Violation};
use crate::service::CounterService;
use bft_sim::chaos::{ChaosConfig, FaultPlan};
use bft_sim::dur;

/// Clients per fuzz cluster.
pub const FUZZ_CLIENTS: u64 = 3;
/// Operations each fuzz client must complete.
pub const FUZZ_OPS_PER_CLIENT: u64 = 24;
/// Length of the fault window in a fuzz run.
pub const FAULT_HORIZON_NS: u64 = 3_000_000_000;
/// Post-heal liveness budget: rounds of [`LIVENESS_ROUND_NS`] each.
pub const LIVENESS_ROUNDS: u64 = 60;
/// Length of one liveness round.
pub const LIVENESS_ROUND_NS: u64 = 500_000_000;

/// Reads a `u64` knob from the environment, falling back to `default`.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Operation mix issued by a [`ChaosDriver`].
#[derive(Clone, Copy, Debug)]
pub enum Workload {
    /// ~1/4 read-only gets, the rest adds of 1..=9.
    Mixed,
    /// Adds only.
    Adds,
    /// Read-only gets only.
    Reads,
    /// ~1/100 adds, the rest read-only gets — the read-dominated mix
    /// where read leases pay off (arXiv:2107.11144).
    ReadMostly,
}

/// Closed-loop counter-service driver shared by the fuzz loop and the
/// directed chaos tests (the invariant checker downcasts every client in
/// a cluster to one driver type). The op sequence is a pure function of
/// the salt, so a run is replayable from its seed.
pub struct ChaosDriver {
    salt: u64,
    target: u64,
    issued: u64,
    workload: Workload,
    start_delay_ns: u64,
}

impl ChaosDriver {
    /// A driver that issues `target` operations drawn from `workload`,
    /// deterministically from `salt`.
    pub fn new(salt: u64, target: u64, workload: Workload) -> ChaosDriver {
        ChaosDriver {
            salt,
            target,
            issued: 0,
            workload,
            start_delay_ns: 0,
        }
    }

    /// Delays the first operation by `ns` (for staggered-start tests).
    pub fn delayed(mut self, ns: u64) -> ChaosDriver {
        self.start_delay_ns = ns;
        self
    }

    fn next_op(&mut self, api: &mut ClientApi<'_, '_>) {
        if self.issued >= self.target {
            return;
        }
        self.issued += 1;
        let h = derive_seed(self.salt, self.issued);
        let read = match self.workload {
            Workload::Mixed => h.is_multiple_of(4),
            Workload::Adds => false,
            Workload::Reads => true,
            Workload::ReadMostly => !h.is_multiple_of(100),
        };
        if read {
            api.submit(CounterService::get_op(), true);
        } else {
            api.submit(CounterService::add_op((h % 9) as u8 + 1), false);
        }
    }
}

impl ClientDriver for ChaosDriver {
    fn on_start(&mut self, api: &mut ClientApi<'_, '_>) {
        if self.start_delay_ns > 0 {
            api.set_timer(self.start_delay_ns, 1);
        } else {
            self.next_op(api);
        }
    }

    fn on_complete(&mut self, api: &mut ClientApi<'_, '_>, _result: &[u8], _latency_ns: u64) {
        self.next_op(api);
    }

    fn on_timer(&mut self, api: &mut ClientApi<'_, '_>, _token: u64) {
        if !api.busy() {
            self.next_op(api);
        }
    }
}

/// Aggressive timers and a short checkpoint interval so view changes,
/// garbage collection, and state transfer all happen inside a few
/// simulated seconds.
pub fn fuzz_config(f: u32) -> Config {
    let mut cfg = Config::new(f);
    cfg.checkpoint_interval = 8;
    cfg.log_window = 32;
    cfg.view_change_timeout_ns = dur::millis(400);
    cfg.client_retry_timeout_ns = dur::millis(150);
    cfg.resend_interval_ns = dur::millis(50);
    cfg
}

/// The deterministic fault schedule for one fuzz iteration.
pub fn fuzz_plan(seed: u64, f: u32) -> FaultPlan {
    let cfg = fuzz_config(f);
    FaultPlan::generate(
        seed,
        &ChaosConfig {
            replicas: cfg.n(),
            clients: FUZZ_CLIENTS as u32,
            max_faulty: cfg.f(),
            horizon_ns: FAULT_HORIZON_NS,
            events: 12,
            recovery_faults: false,
            client_faults: false,
        },
    )
}

/// [`fuzz_config`] plus proactive recovery: a staggered watchdog every
/// 600 ms per replica with a 150 ms in-recovery lease, so several full
/// recovery cycles fit inside one fuzz run.
pub fn recovery_fuzz_config(f: u32) -> Config {
    let mut cfg = fuzz_config(f);
    cfg.proactive_recovery_interval_ns = dur::millis(600);
    cfg.recovery_lease_ns = dur::millis(150);
    cfg
}

/// *Bounded heal*: a silently corrupted replica must complete a clean
/// recovery within this long of the corruption (several watchdog periods
/// plus state-transfer time, with slack for lease deferrals and
/// partitions that outlast the fault window).
pub const HEAL_DEADLINE_NS: u64 = 8_000_000_000;

/// The fault schedule for one recovery-fuzz iteration: the regular chaos
/// vocabulary plus silent corruption and stale-state faults.
pub fn recovery_fuzz_plan(seed: u64, f: u32) -> FaultPlan {
    let cfg = recovery_fuzz_config(f);
    FaultPlan::generate(
        seed,
        &ChaosConfig {
            replicas: cfg.n(),
            clients: FUZZ_CLIENTS as u32,
            max_faulty: cfg.f(),
            horizon_ns: FAULT_HORIZON_NS,
            events: 12,
            recovery_faults: true,
            client_faults: false,
        },
    )
}

/// [`fuzz_config`] with the optimistic fast path armed and a short
/// fallback window, so partitions, loss, and Byzantine primaries force
/// plenty of mid-stream fast→classic fallbacks per run.
pub fn fastpath_fuzz_config(f: u32) -> Config {
    let mut cfg = fuzz_config(f);
    cfg.fast_path = true;
    cfg.fast_path_timeout_ns = dur::micros(800);
    cfg
}

/// The fault schedule for one fast-path fuzz iteration: the regular
/// chaos vocabulary (partitions, loss, delay, crashes, Byzantine modes)
/// run against a fast-path cluster, checked by the fast-commit safety
/// invariant on top of every existing one.
pub fn fastpath_fuzz_plan(seed: u64, f: u32) -> FaultPlan {
    let cfg = fastpath_fuzz_config(f);
    FaultPlan::generate(
        seed,
        &ChaosConfig {
            replicas: cfg.n(),
            clients: FUZZ_CLIENTS as u32,
            max_faulty: cfg.f(),
            horizon_ns: FAULT_HORIZON_NS,
            events: 12,
            recovery_faults: false,
            client_faults: false,
        },
    )
}

/// [`fuzz_config`] with read leases armed (arXiv:2107.11144) on top of
/// the proactive-recovery watchdogs: a 60 ms lease (renewed every 30 ms,
/// expiring mid-read under partitions; `3 × 60 ms` fits the 400 ms
/// view-change timeout) while replicas also reboot every 600 ms — so one
/// run exercises lease expiry, revokes lost in partitions, view changes
/// with outstanding leases, and recovery of a lease holder, all checked
/// by the stale-lease-read invariant.
pub fn lease_fuzz_config(f: u32) -> Config {
    let mut cfg = fuzz_config(f);
    cfg.read_leases = true;
    cfg.read_lease_ns = dur::millis(60);
    cfg.proactive_recovery_interval_ns = dur::millis(600);
    cfg.recovery_lease_ns = dur::millis(150);
    cfg
}

/// The fault schedule for one lease-fuzz iteration: the full chaos
/// vocabulary including corruption and stale-state faults, so lease
/// holders get partitioned, deposed, crashed, and rebooted mid-lease.
pub fn lease_fuzz_plan(seed: u64, f: u32) -> FaultPlan {
    let cfg = lease_fuzz_config(f);
    FaultPlan::generate(
        seed,
        &ChaosConfig {
            replicas: cfg.n(),
            clients: FUZZ_CLIENTS as u32,
            max_faulty: cfg.f(),
            horizon_ns: FAULT_HORIZON_NS,
            events: 12,
            recovery_faults: true,
            client_faults: false,
        },
    )
}

/// [`fuzz_config`] with overload armor armed: admission control with a
/// small per-client quota and backlog cap (so a flooding client hits
/// both gates many times over), BUSY pushback with a short retry-after
/// hint, a bounded client retry budget (the `ClientStarvation` invariant
/// watches honest clients), and read leases on so persistent pushback
/// also exercises the optimistic-read → classic fallback.
pub fn overload_fuzz_config(f: u32) -> Config {
    let mut cfg = fuzz_config(f);
    cfg.admission_control = true;
    cfg.admission_client_quota = 4;
    cfg.admission_queue_cap = 64;
    cfg.busy_retry_after_ns = dur::millis(2);
    cfg.client_retry_budget = 12;
    cfg.read_leases = true;
    cfg.read_lease_ns = dur::millis(60);
    cfg
}

/// The fault schedule for one overload-fuzz iteration: the regular chaos
/// vocabulary plus client faults — floods, replay storms, and malformed
/// requests from at most one client at a time, restored by cleanup.
pub fn overload_fuzz_plan(seed: u64, f: u32) -> FaultPlan {
    let cfg = overload_fuzz_config(f);
    FaultPlan::generate(
        seed,
        &ChaosConfig {
            replicas: cfg.n(),
            clients: FUZZ_CLIENTS as u32,
            max_faulty: cfg.f(),
            horizon_ns: FAULT_HORIZON_NS,
            events: 12,
            recovery_faults: false,
            client_faults: true,
        },
    )
}

/// Per-node flight-recorder ring capacity used by traced fuzz re-runs.
pub const FLIGHT_RING: usize = 256;
/// Events per node included in a flight-recorder dump.
pub const FLIGHT_DUMP_LAST: usize = 24;

/// Runs one seeded (plan, workload) pair to quiescence, checking every
/// invariant after every event. The cluster construction must stay in
/// lockstep with [`Cluster::with_seed_iter`]: a builder with the same
/// seed, so `CHAOS_SEED=<seed>` reconstructs the identical run.
pub fn run_fuzz_schedule(seed: u64, f: u32, plan: &FaultPlan) -> Result<(), Violation> {
    run_fuzz_schedule_inner(seed, fuzz_config(f), 0, plan, 0, false).map_err(|(v, _)| v)
}

/// [`run_fuzz_schedule`] with the flight recorder armed: trace rings of
/// [`FLIGHT_RING`] events per node. On a violation, returns the dump of
/// each node's last [`FLIGHT_DUMP_LAST`] events — what every replica and
/// client was doing right up to the failure — followed by the final
/// per-replica health snapshot table ([`health_dump`]): view, role,
/// execution watermarks, queue depths, and wedge status at the instant
/// of the violation. Tracing does not perturb the simulation, so the
/// traced run reproduces the untraced failure event for event.
pub fn run_fuzz_schedule_traced(
    seed: u64,
    f: u32,
    plan: &FaultPlan,
) -> Result<(), (Violation, String)> {
    run_fuzz_schedule_inner(seed, fuzz_config(f), 0, plan, FLIGHT_RING, false)
}

/// One recovery-fuzz iteration: [`recovery_fuzz_config`] (watchdogs on),
/// the bounded-heal deadline armed, and the run extended past workload
/// completion until every corrupted replica has provably healed.
pub fn run_recovery_fuzz_schedule(seed: u64, f: u32, plan: &FaultPlan) -> Result<(), Violation> {
    run_fuzz_schedule_inner(
        seed,
        recovery_fuzz_config(f),
        HEAL_DEADLINE_NS,
        plan,
        0,
        false,
    )
    .map_err(|(v, _)| v)
}

/// [`run_recovery_fuzz_schedule`] with the flight recorder armed.
pub fn run_recovery_fuzz_schedule_traced(
    seed: u64,
    f: u32,
    plan: &FaultPlan,
) -> Result<(), (Violation, String)> {
    run_fuzz_schedule_inner(
        seed,
        recovery_fuzz_config(f),
        HEAL_DEADLINE_NS,
        plan,
        FLIGHT_RING,
        false,
    )
}

/// One fast-path fuzz iteration: [`fastpath_fuzz_config`] (fast path
/// on, short fallback window) against the standard chaos vocabulary.
pub fn run_fastpath_fuzz_schedule(seed: u64, f: u32, plan: &FaultPlan) -> Result<(), Violation> {
    run_fuzz_schedule_inner(seed, fastpath_fuzz_config(f), 0, plan, 0, false).map_err(|(v, _)| v)
}

/// [`run_fastpath_fuzz_schedule`] with the flight recorder armed.
pub fn run_fastpath_fuzz_schedule_traced(
    seed: u64,
    f: u32,
    plan: &FaultPlan,
) -> Result<(), (Violation, String)> {
    run_fuzz_schedule_inner(seed, fastpath_fuzz_config(f), 0, plan, FLIGHT_RING, false)
}

/// One lease-fuzz iteration: [`lease_fuzz_config`] (read leases on,
/// watchdogs on) with the bounded-heal deadline armed, against the full
/// recovery-fault chaos vocabulary.
pub fn run_lease_fuzz_schedule(seed: u64, f: u32, plan: &FaultPlan) -> Result<(), Violation> {
    run_fuzz_schedule_inner(seed, lease_fuzz_config(f), HEAL_DEADLINE_NS, plan, 0, false)
        .map_err(|(v, _)| v)
}

/// [`run_lease_fuzz_schedule`] with the flight recorder armed.
pub fn run_lease_fuzz_schedule_traced(
    seed: u64,
    f: u32,
    plan: &FaultPlan,
) -> Result<(), (Violation, String)> {
    run_fuzz_schedule_inner(
        seed,
        lease_fuzz_config(f),
        HEAL_DEADLINE_NS,
        plan,
        FLIGHT_RING,
        false,
    )
}

fn run_fuzz_schedule_inner(
    seed: u64,
    cfg: Config,
    heal_deadline_ns: u64,
    plan: &FaultPlan,
    trace_capacity: usize,
    per_client_liveness: bool,
) -> Result<(), (Violation, String)> {
    let mut cluster = Cluster::builder(cfg)
        .seed(seed)
        .trace_capacity(trace_capacity)
        .build_counter();
    for i in 0..FUZZ_CLIENTS {
        cluster.add_client(ChaosDriver::new(
            seed ^ (i + 1),
            FUZZ_OPS_PER_CLIENT,
            Workload::Mixed,
        ));
    }
    let mut checker = InvariantChecker::new();
    checker.set_heal_deadline(heal_deadline_ns);
    let flight = |cluster: &Cluster| {
        let mut dump = cluster.sim.trace().flight_dump(FLIGHT_DUMP_LAST);
        dump.push_str(&health_dump(cluster));
        dump
    };
    if let Err(v) = cluster.run_with_plan::<CounterService, ChaosDriver>(
        plan,
        FAULT_HORIZON_NS + dur::millis(1),
        &mut checker,
    ) {
        let dump = flight(&cluster);
        return Err((v, dump));
    }
    // The plan's cleanup events have healed the network and restarted
    // every faulted replica; the cluster must now finish the workload —
    // and, for recovery plans, every corrupted replica must heal before
    // its bounded-heal deadline (the checker enforces the deadline; this
    // loop just keeps the simulation running long enough to reach it).
    let target = FUZZ_CLIENTS * FUZZ_OPS_PER_CLIENT;
    let empty = FaultPlan::empty();
    let mut rounds = 0;
    // Overload runs count a flooder's own junk completions in the global
    // metric, which could mask a stuck honest client; they assert
    // per-client progress instead.
    let workload_done = |cluster: &Cluster| {
        if per_client_liveness {
            cluster
                .clients
                .iter()
                .all(|&id| cluster.client::<ChaosDriver>(id).completed_ops() >= FUZZ_OPS_PER_CLIENT)
        } else {
            cluster.completed_ops() >= target
        }
    };
    while !workload_done(&cluster) || checker.corrupted_replicas().next().is_some() {
        if rounds == LIVENESS_ROUNDS {
            let v = Violation::Liveness {
                detail: format!(
                    "{}/{} ops completed ({} replicas still corrupt) {} s after all faults healed",
                    cluster.completed_ops(),
                    target,
                    checker.corrupted_replicas().count(),
                    LIVENESS_ROUNDS * LIVENESS_ROUND_NS / 1_000_000_000,
                ),
            };
            return Err((v, flight(&cluster)));
        }
        if let Err(v) = cluster.run_with_plan::<CounterService, ChaosDriver>(
            &empty,
            LIVENESS_ROUND_NS,
            &mut checker,
        ) {
            let dump = flight(&cluster);
            return Err((v, dump));
        }
        rounds += 1;
    }
    checker.finish().map_err(|v| {
        let dump = flight(&cluster);
        (v, dump)
    })
}

/// The per-replica health table appended to every flight-recorder dump:
/// the final [`bft_sim::HealthSnapshot`] of each replica plus the
/// cluster-level diff (laggards, view divergence, wedge status), so a
/// failure report says what state each node was stuck in — not just its
/// last events. Fuzz clusters run [`CounterService`], which is what the
/// snapshot downcast expects.
pub fn health_dump(cluster: &Cluster) -> String {
    format!(
        "  health at failure (per-replica snapshots):\n{}",
        cluster.health_report::<CounterService>().render()
    )
}

/// Formats a violation with everything needed to replay the run:
/// the minimized plan, the one-command replay line, and (when a traced
/// re-run captured one) the flight-recorder dump of each node's last
/// events before the violation.
pub fn failure_report(
    seed: u64,
    f: u32,
    plan: &FaultPlan,
    v: &Violation,
    flight: Option<&str>,
) -> String {
    failure_report_for(seed, f, plan, v, flight, "replay_one")
}

/// [`failure_report`] with an explicit replay test name, for fuzz
/// families with their own replay entry point (e.g. recovery schedules
/// replay through `replay_recovery_one`, which arms the watchdogs).
pub fn failure_report_for(
    seed: u64,
    f: u32,
    plan: &FaultPlan,
    v: &Violation,
    flight: Option<&str>,
    replay_test: &str,
) -> String {
    let mut report = format!(
        "\nchaos: invariant violated\n  violation: {v}\n  seed: {seed} (f = {f})\n  minimized fault plan ({} events):\n{plan}\n  replay: CHAOS_SEED={seed} CHAOS_F={f} cargo test -p bft-core --test chaos {replay_test} -- --nocapture\n",
        plan.events.len(),
    );
    if let Some(dump) = flight {
        report.push_str("  flight recorder (last events per node before the violation):\n");
        report.push_str(dump);
    }
    report
}

/// Runs one seed; on violation, greedily minimizes the plan (keeping the
/// same violation kind), re-runs the minimized plan with the flight
/// recorder armed, and panics with a replayable report that includes the
/// last trace events of every node.
pub fn check_schedule(seed: u64, f: u32) {
    let plan = fuzz_plan(seed, f);
    if let Err(v) = run_fuzz_schedule(seed, f, &plan) {
        let kind = std::mem::discriminant(&v);
        let min = plan.minimize(|p| {
            run_fuzz_schedule(seed, f, p)
                .err()
                .is_some_and(|e| std::mem::discriminant(&e) == kind)
        });
        // The minimized plan reproduces the violation kind by
        // construction; the traced re-run captures its flight recording.
        let (v, flight) = match run_fuzz_schedule_traced(seed, f, &min) {
            Err((v, dump)) => (v, Some(dump)),
            Ok(()) => (v, None),
        };
        panic!("{}", failure_report(seed, f, &min, &v, flight.as_deref()));
    }
}

/// Runs every `i` in `0..total` with `i % stride == offset` (so `stride`
/// test functions can split one budget and run in parallel), deriving
/// per-run seeds from `base` via [`Cluster::with_seed_iter`].
pub fn check_schedules(base: u64, total: u64, offset: u64, stride: u64, f: u32) {
    for (i, builder) in Cluster::with_seed_iter(base, fuzz_config(f))
        .enumerate()
        .take(total as usize)
    {
        if i as u64 % stride == offset {
            check_schedule(builder.seed_value(), f);
        }
    }
}

/// [`check_schedule`] for the recovery-fault family: corruption and
/// stale-state faults in the plan, watchdogs armed, bounded-heal and
/// recovery-completeness checked alongside every existing invariant.
pub fn check_recovery_schedule(seed: u64, f: u32) {
    let plan = recovery_fuzz_plan(seed, f);
    if let Err(v) = run_recovery_fuzz_schedule(seed, f, &plan) {
        let kind = std::mem::discriminant(&v);
        let min = plan.minimize(|p| {
            run_recovery_fuzz_schedule(seed, f, p)
                .err()
                .is_some_and(|e| std::mem::discriminant(&e) == kind)
        });
        let (v, flight) = match run_recovery_fuzz_schedule_traced(seed, f, &min) {
            Err((v, dump)) => (v, Some(dump)),
            Ok(()) => (v, None),
        };
        panic!(
            "{}",
            failure_report_for(seed, f, &min, &v, flight.as_deref(), "replay_recovery_one")
        );
    }
}

/// Strided sweep over recovery-fault schedules (see [`check_schedules`]).
pub fn check_recovery_schedules(base: u64, total: u64, offset: u64, stride: u64, f: u32) {
    for (i, builder) in Cluster::with_seed_iter(base, recovery_fuzz_config(f))
        .enumerate()
        .take(total as usize)
    {
        if i as u64 % stride == offset {
            check_recovery_schedule(builder.seed_value(), f);
        }
    }
}

/// [`check_schedule`] for the fast-path family: the same chaos
/// vocabulary against a fast-path cluster, so partitions, loss, and
/// Byzantine primaries force mid-stream fast→classic fallbacks checked
/// by the fast-commit safety invariant.
pub fn check_fastpath_schedule(seed: u64, f: u32) {
    let plan = fastpath_fuzz_plan(seed, f);
    if let Err(v) = run_fastpath_fuzz_schedule(seed, f, &plan) {
        let kind = std::mem::discriminant(&v);
        let min = plan.minimize(|p| {
            run_fastpath_fuzz_schedule(seed, f, p)
                .err()
                .is_some_and(|e| std::mem::discriminant(&e) == kind)
        });
        let (v, flight) = match run_fastpath_fuzz_schedule_traced(seed, f, &min) {
            Err((v, dump)) => (v, Some(dump)),
            Ok(()) => (v, None),
        };
        panic!(
            "{}",
            failure_report_for(seed, f, &min, &v, flight.as_deref(), "replay_fastpath_one")
        );
    }
}

/// Strided sweep over fast-path schedules (see [`check_schedules`]).
pub fn check_fastpath_schedules(base: u64, total: u64, offset: u64, stride: u64, f: u32) {
    for (i, builder) in Cluster::with_seed_iter(base, fastpath_fuzz_config(f))
        .enumerate()
        .take(total as usize)
    {
        if i as u64 % stride == offset {
            check_fastpath_schedule(builder.seed_value(), f);
        }
    }
}

/// [`check_schedule`] for the read-lease family: chaos plus recovery
/// faults against a leased cluster, so lease expiry mid-read, revokes
/// lost in partitions, view changes with outstanding leases, and
/// recoveries of lease holders are all exercised — checked by the
/// stale-lease-read invariant on top of every existing one.
pub fn check_lease_schedule(seed: u64, f: u32) {
    let plan = lease_fuzz_plan(seed, f);
    if let Err(v) = run_lease_fuzz_schedule(seed, f, &plan) {
        let kind = std::mem::discriminant(&v);
        let min = plan.minimize(|p| {
            run_lease_fuzz_schedule(seed, f, p)
                .err()
                .is_some_and(|e| std::mem::discriminant(&e) == kind)
        });
        let (v, flight) = match run_lease_fuzz_schedule_traced(seed, f, &min) {
            Err((v, dump)) => (v, Some(dump)),
            Ok(()) => (v, None),
        };
        panic!(
            "{}",
            failure_report_for(seed, f, &min, &v, flight.as_deref(), "replay_lease_one")
        );
    }
}

/// Strided sweep over read-lease schedules (see [`check_schedules`]).
pub fn check_lease_schedules(base: u64, total: u64, offset: u64, stride: u64, f: u32) {
    for (i, builder) in Cluster::with_seed_iter(base, lease_fuzz_config(f))
        .enumerate()
        .take(total as usize)
    {
        if i as u64 % stride == offset {
            check_lease_schedule(builder.seed_value(), f);
        }
    }
}

/// One overload-fuzz iteration: [`overload_fuzz_config`] (admission
/// control, BUSY pushback, bounded retry budgets, read leases) against
/// chaos plans that include client floods, replay storms, and malformed
/// requests. Liveness is asserted per client — a flooder's junk
/// completions must not mask a starved honest client — and the
/// `UnboundedGrowth` and `ClientStarvation` invariants are checked after
/// every event alongside every existing one.
pub fn run_overload_fuzz_schedule(seed: u64, f: u32, plan: &FaultPlan) -> Result<(), Violation> {
    run_fuzz_schedule_inner(seed, overload_fuzz_config(f), 0, plan, 0, true).map_err(|(v, _)| v)
}

/// [`run_overload_fuzz_schedule`] with the flight recorder armed.
pub fn run_overload_fuzz_schedule_traced(
    seed: u64,
    f: u32,
    plan: &FaultPlan,
) -> Result<(), (Violation, String)> {
    run_fuzz_schedule_inner(seed, overload_fuzz_config(f), 0, plan, FLIGHT_RING, true)
}

/// [`check_schedule`] for the overload family: Byzantine client floods
/// against an admission-controlled cluster, with bounded queues and
/// honest-client starvation checked alongside every existing invariant.
pub fn check_overload_schedule(seed: u64, f: u32) {
    let plan = overload_fuzz_plan(seed, f);
    if let Err(v) = run_overload_fuzz_schedule(seed, f, &plan) {
        let kind = std::mem::discriminant(&v);
        let min = plan.minimize(|p| {
            run_overload_fuzz_schedule(seed, f, p)
                .err()
                .is_some_and(|e| std::mem::discriminant(&e) == kind)
        });
        let (v, flight) = match run_overload_fuzz_schedule_traced(seed, f, &min) {
            Err((v, dump)) => (v, Some(dump)),
            Ok(()) => (v, None),
        };
        panic!(
            "{}",
            failure_report_for(seed, f, &min, &v, flight.as_deref(), "replay_overload_one")
        );
    }
}

/// Strided sweep over overload schedules (see [`check_schedules`]).
pub fn check_overload_schedules(base: u64, total: u64, offset: u64, stride: u64, f: u32) {
    for (i, builder) in Cluster::with_seed_iter(base, overload_fuzz_config(f))
        .enumerate()
        .take(total as usize)
    {
        if i as u64 % stride == offset {
            check_overload_schedule(builder.seed_value(), f);
        }
    }
}
