//! Protocol messages and their wire formats.
//!
//! One network datagram is a [`Packet`]: a message body plus an
//! authentication tag (a single MAC for point-to-point messages, a MAC
//! *vector* for multicasts — Figure 1 of the paper writes these as
//! `<m>_{μ(i,j)}` and `<m>_{α(i)}`). MACs are computed over the MD5 digest
//! of the encoded body, as in BFT.

use crate::types::{ClientId, ReplicaId, SeqNum, Timestamp, View};
use crate::wire::{Reader, Wire, WireError};
use bft_crypto::keychain::Authenticator;
use bft_crypto::md5::{digest_parts, Digest};
use bft_crypto::umac::Mac;

/// The digest used for null requests proposed to fill gaps in a new view.
pub const NULL_DIGEST: Digest = Digest::ZERO;

/// Designated-replier value meaning "every replica sends the full result".
pub const REPLIER_ALL: ReplicaId = u32::MAX;

/// Authentication attached to a packet.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum AuthTag {
    /// No packet-level authentication (the body authenticates itself, as
    /// with requests that embed their own authenticator).
    #[default]
    None,
    /// A single MAC, for point-to-point messages.
    Mac(Mac),
    /// A MAC vector with an entry per replica, for multicasts.
    Vector(Authenticator),
}

impl AuthTag {
    /// Bytes this tag occupies on the wire.
    pub fn wire_bytes(&self) -> usize {
        match self {
            AuthTag::None => 1,
            AuthTag::Mac(_) => 1 + Mac::WIRE_BYTES,
            AuthTag::Vector(a) => 1 + 8 + a.wire_bytes(),
        }
    }
}

impl Wire for AuthTag {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            AuthTag::None => buf.push(0),
            AuthTag::Mac(m) => {
                buf.push(1);
                m.encode(buf);
            }
            AuthTag::Vector(a) => {
                buf.push(2);
                (a.entries.len() as u64).encode(buf);
                for (r, m) in &a.entries {
                    r.encode(buf);
                    m.encode(buf);
                }
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(AuthTag::None),
            1 => Ok(AuthTag::Mac(Mac::decode(r)?)),
            2 => {
                let len = u64::decode(r)?;
                if len > 4096 {
                    return Err(WireError::BadLength(len));
                }
                let mut entries = Vec::with_capacity(len as usize);
                for _ in 0..len {
                    entries.push((u32::decode(r)?, Mac::decode(r)?));
                }
                Ok(AuthTag::Vector(Authenticator { entries }))
            }
            t => Err(WireError::BadTag(t)),
        }
    }
    fn wire_len(&self) -> usize {
        match self {
            AuthTag::None => 1,
            AuthTag::Mac(_) => 1 + Mac::WIRE_BYTES,
            AuthTag::Vector(a) => 1 + 8 + a.entries.len() * (4 + Mac::WIRE_BYTES),
        }
    }
}

/// A client request (REQUEST in the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Issuing client.
    pub client: ClientId,
    /// Client-local timestamp; replies echo it and replicas use it to
    /// deduplicate retransmissions.
    pub timestamp: Timestamp,
    /// The opaque operation, interpreted by the replicated service.
    pub op: Vec<u8>,
    /// Whether the client is invoking the read-only optimization.
    pub read_only: bool,
    /// Designated replier for the digest-replies optimization, or
    /// [`REPLIER_ALL`].
    pub replier: ReplicaId,
    /// The client's own authenticator over the request digest, carried so
    /// backups can validate requests arriving inside pre-prepares or via
    /// separate transmission.
    pub auth: AuthTag,
}

impl Request {
    /// The request's identity digest, covering everything except the
    /// replier hint and the authenticator (so retransmissions can change
    /// the replier without becoming a different request).
    pub fn digest(&self) -> Digest {
        digest_parts(&[
            b"REQ",
            &self.client.to_le_bytes(),
            &self.timestamp.to_le_bytes(),
            &[u8::from(self.read_only)],
            &self.op,
        ])
    }
}

impl Wire for Request {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.client.encode(buf);
        self.timestamp.encode(buf);
        self.op.encode(buf);
        self.read_only.encode(buf);
        self.replier.encode(buf);
        self.auth.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Request {
            client: u32::decode(r)?,
            timestamp: u64::decode(r)?,
            op: Vec::<u8>::decode(r)?,
            read_only: bool::decode(r)?,
            replier: u32::decode(r)?,
            auth: AuthTag::decode(r)?,
        })
    }
    fn wire_len(&self) -> usize {
        4 + 8 + (8 + self.op.len()) + 1 + 4 + self.auth.wire_len()
    }
}

/// One request in a pre-prepare batch: inlined, or referenced by digest
/// when separate request transmission applies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchEntry {
    /// The full request travels in the pre-prepare.
    Full(Request),
    /// Only the identity travels; the body was multicast by the client.
    Ref {
        /// Issuing client.
        client: ClientId,
        /// The client's timestamp.
        timestamp: Timestamp,
        /// The request digest.
        digest: Digest,
    },
}

impl BatchEntry {
    /// The digest of the underlying request.
    pub fn digest(&self) -> Digest {
        match self {
            BatchEntry::Full(r) => r.digest(),
            BatchEntry::Ref { digest, .. } => *digest,
        }
    }

    /// The `(client, timestamp)` identity of the underlying request.
    pub fn identity(&self) -> (ClientId, Timestamp) {
        match self {
            BatchEntry::Full(r) => (r.client, r.timestamp),
            BatchEntry::Ref {
                client, timestamp, ..
            } => (*client, *timestamp),
        }
    }
}

impl Wire for BatchEntry {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            BatchEntry::Full(r) => {
                buf.push(0);
                r.encode(buf);
            }
            BatchEntry::Ref {
                client,
                timestamp,
                digest,
            } => {
                buf.push(1);
                client.encode(buf);
                timestamp.encode(buf);
                digest.encode(buf);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(BatchEntry::Full(Request::decode(r)?)),
            1 => Ok(BatchEntry::Ref {
                client: u32::decode(r)?,
                timestamp: u64::decode(r)?,
                digest: Digest::decode(r)?,
            }),
            t => Err(WireError::BadTag(t)),
        }
    }
    fn wire_len(&self) -> usize {
        match self {
            BatchEntry::Full(r) => 1 + r.wire_len(),
            BatchEntry::Ref { .. } => 1 + 4 + 8 + 16,
        }
    }
}

/// Computes the batch digest: the digest of the concatenated request
/// digests, in batch order.
pub fn batch_digest(entries: &[BatchEntry]) -> Digest {
    let digests: Vec<Digest> = entries.iter().map(BatchEntry::digest).collect();
    let parts: Vec<&[u8]> = std::iter::once(b"BATCH".as_slice())
        .chain(digests.iter().map(|d| d.as_bytes().as_slice()))
        .collect();
    digest_parts(&parts)
}

/// PRE-PREPARE: the primary's sequence-number assignment for a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrePrepare {
    /// Current view.
    pub view: View,
    /// Assigned sequence number.
    pub seq: SeqNum,
    /// The ordered batch.
    pub entries: Vec<BatchEntry>,
    /// Digest of the batch (what prepares and commits refer to).
    pub batch_digest: Digest,
    /// Piggybacked commit announcements `(seq, digest)` from the sender
    /// (only used when the piggybacked-commits optimization is on).
    pub piggy_commits: Vec<(SeqNum, Digest)>,
}

impl Wire for PrePrepare {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.view.encode(buf);
        self.seq.encode(buf);
        self.entries.encode(buf);
        self.batch_digest.encode(buf);
        self.piggy_commits.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(PrePrepare {
            view: u64::decode(r)?,
            seq: u64::decode(r)?,
            entries: Vec::<BatchEntry>::decode(r)?,
            batch_digest: Digest::decode(r)?,
            piggy_commits: Vec::<(u64, Digest)>::decode(r)?,
        })
    }
    fn wire_len(&self) -> usize {
        8 + 8 + self.entries.wire_len() + 16 + self.piggy_commits.wire_len()
    }
}

/// PREPARE: a backup's agreement with a sequence-number assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prepare {
    /// Current view.
    pub view: View,
    /// Sequence number being agreed to.
    pub seq: SeqNum,
    /// Batch digest from the pre-prepare.
    pub batch_digest: Digest,
    /// Sending replica.
    pub replica: ReplicaId,
    /// Piggybacked commit announcements (see [`PrePrepare::piggy_commits`]).
    pub piggy_commits: Vec<(SeqNum, Digest)>,
}

impl Wire for Prepare {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.view.encode(buf);
        self.seq.encode(buf);
        self.batch_digest.encode(buf);
        self.replica.encode(buf);
        self.piggy_commits.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Prepare {
            view: u64::decode(r)?,
            seq: u64::decode(r)?,
            batch_digest: Digest::decode(r)?,
            replica: u32::decode(r)?,
            piggy_commits: Vec::<(u64, Digest)>::decode(r)?,
        })
    }
    fn wire_len(&self) -> usize {
        8 + 8 + 16 + 4 + self.piggy_commits.wire_len()
    }
}

/// COMMIT: a replica's announcement that the batch prepared at it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Commit {
    /// Current view.
    pub view: View,
    /// Sequence number.
    pub seq: SeqNum,
    /// Batch digest.
    pub batch_digest: Digest,
    /// Sending replica.
    pub replica: ReplicaId,
}

impl Wire for Commit {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.view.encode(buf);
        self.seq.encode(buf);
        self.batch_digest.encode(buf);
        self.replica.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Commit {
            view: u64::decode(r)?,
            seq: u64::decode(r)?,
            batch_digest: Digest::decode(r)?,
            replica: u32::decode(r)?,
        })
    }
    fn wire_len(&self) -> usize {
        8 + 8 + 16 + 4
    }
}

/// The result carried in a reply: the full bytes, or just their digest
/// (the digest-replies optimization).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplyBody {
    /// Full result bytes.
    Full(Vec<u8>),
    /// Digest of the result.
    Digest(Digest),
}

impl ReplyBody {
    /// The digest of the result regardless of representation.
    pub fn result_digest(&self) -> Digest {
        match self {
            ReplyBody::Full(bytes) => bft_crypto::digest(bytes),
            ReplyBody::Digest(d) => *d,
        }
    }

    /// True if the full bytes are present.
    pub fn is_full(&self) -> bool {
        matches!(self, ReplyBody::Full(_))
    }
}

impl Wire for ReplyBody {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            ReplyBody::Full(b) => {
                buf.push(0);
                b.encode(buf);
            }
            ReplyBody::Digest(d) => {
                buf.push(1);
                d.encode(buf);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(ReplyBody::Full(Vec::<u8>::decode(r)?)),
            1 => Ok(ReplyBody::Digest(Digest::decode(r)?)),
            t => Err(WireError::BadTag(t)),
        }
    }
    fn wire_len(&self) -> usize {
        match self {
            ReplyBody::Full(b) => 1 + 8 + b.len(),
            ReplyBody::Digest(_) => 1 + 16,
        }
    }
}

/// REPLY: a replica's answer to a client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// View in which the request executed (lets clients track the
    /// primary).
    pub view: View,
    /// Echo of the request timestamp.
    pub timestamp: Timestamp,
    /// The client being answered.
    pub client: ClientId,
    /// Answering replica.
    pub replica: ReplicaId,
    /// True if the execution was tentative (client then needs `2f+1`
    /// matching replies instead of `f+1`).
    pub tentative: bool,
    /// The result or its digest.
    pub body: ReplyBody,
}

impl Wire for Reply {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.view.encode(buf);
        self.timestamp.encode(buf);
        self.client.encode(buf);
        self.replica.encode(buf);
        self.tentative.encode(buf);
        self.body.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Reply {
            view: u64::decode(r)?,
            timestamp: u64::decode(r)?,
            client: u32::decode(r)?,
            replica: u32::decode(r)?,
            tentative: bool::decode(r)?,
            body: ReplyBody::decode(r)?,
        })
    }
    fn wire_len(&self) -> usize {
        8 + 8 + 4 + 4 + 1 + self.body.wire_len()
    }
}

/// CHECKPOINT: a replica's claim about its state digest at a checkpoint
/// sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// The checkpoint sequence number (a multiple of the checkpoint
    /// interval).
    pub seq: SeqNum,
    /// Digest of the service state after executing all requests up to and
    /// including `seq`.
    pub state_digest: Digest,
    /// Claiming replica.
    pub replica: ReplicaId,
}

impl Wire for Checkpoint {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.seq.encode(buf);
        self.state_digest.encode(buf);
        self.replica.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Checkpoint {
            seq: u64::decode(r)?,
            state_digest: Digest::decode(r)?,
            replica: u32::decode(r)?,
        })
    }
    fn wire_len(&self) -> usize {
        8 + 16 + 4
    }
}

/// A summary of a prepared certificate, carried in view-change messages
/// (an element of the paper's `P` set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreparedInfo {
    /// Sequence number of the prepared batch.
    pub seq: SeqNum,
    /// The view in which it prepared.
    pub view: View,
    /// The batch digest.
    pub batch_digest: Digest,
}

impl Wire for PreparedInfo {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.seq.encode(buf);
        self.view.encode(buf);
        self.batch_digest.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(PreparedInfo {
            seq: u64::decode(r)?,
            view: u64::decode(r)?,
            batch_digest: Digest::decode(r)?,
        })
    }
    fn wire_len(&self) -> usize {
        8 + 8 + 16
    }
}

/// VIEW-CHANGE: a replica's vote to move to a new view, carrying its
/// stable checkpoint and prepared certificates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewChange {
    /// The view being moved to.
    pub new_view: View,
    /// The sender's last stable checkpoint sequence number.
    pub last_stable: SeqNum,
    /// Digest of the stable checkpoint state.
    pub stable_digest: Digest,
    /// Prepared certificates with sequence numbers above `last_stable`.
    pub prepared: Vec<PreparedInfo>,
    /// Fast-path vote reports above `last_stable`: every batch this
    /// replica voted for (pre-prepare accepted and prepare multicast, or
    /// proposed as primary), whether or not it assembled a prepared
    /// certificate. `f+1` matching reports prove a fast-committed batch
    /// into the new view. Empty when the fast path is disabled.
    pub fast_votes: Vec<PreparedInfo>,
    /// Sending replica.
    pub replica: ReplicaId,
}

impl Wire for ViewChange {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.new_view.encode(buf);
        self.last_stable.encode(buf);
        self.stable_digest.encode(buf);
        self.prepared.encode(buf);
        self.fast_votes.encode(buf);
        self.replica.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ViewChange {
            new_view: u64::decode(r)?,
            last_stable: u64::decode(r)?,
            stable_digest: Digest::decode(r)?,
            prepared: Vec::<PreparedInfo>::decode(r)?,
            fast_votes: Vec::<PreparedInfo>::decode(r)?,
            replica: u32::decode(r)?,
        })
    }
    fn wire_len(&self) -> usize {
        8 + 8 + 16 + self.prepared.wire_len() + self.fast_votes.wire_len() + 4
    }
}

/// NEW-VIEW: the new primary's proof of the view change and the
/// pre-prepares (`O` set) that carry ordering into the new view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NewView {
    /// The view being installed.
    pub view: View,
    /// The `2f+1` view-change messages justifying the change.
    pub view_changes: Vec<ViewChange>,
    /// The recomputed `O` set: `(seq, batch digest)` pairs, with
    /// [`NULL_DIGEST`] for null requests filling gaps.
    pub pre_prepares: Vec<(SeqNum, Digest)>,
    /// Batch bodies the new primary already has, so backups usually avoid
    /// a fetch round.
    pub batches: Vec<(SeqNum, Vec<BatchEntry>)>,
}

impl Wire for NewView {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.view.encode(buf);
        self.view_changes.encode(buf);
        self.pre_prepares.encode(buf);
        self.batches.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(NewView {
            view: u64::decode(r)?,
            view_changes: Vec::<ViewChange>::decode(r)?,
            pre_prepares: Vec::<(u64, Digest)>::decode(r)?,
            batches: Vec::<(u64, Vec<BatchEntry>)>::decode(r)?,
        })
    }
    fn wire_len(&self) -> usize {
        8 + self.view_changes.wire_len() + self.pre_prepares.wire_len() + self.batches.wire_len()
    }
}

/// Request for the checkpointed state at `seq` (state transfer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchState {
    /// Checkpoint sequence number wanted.
    pub seq: SeqNum,
}

impl Wire for FetchState {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.seq.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(FetchState {
            seq: u64::decode(r)?,
        })
    }
    fn wire_len(&self) -> usize {
        8
    }
}

/// Checkpoint metadata answering a [`FetchState`]: the partition leaf
/// digests of the checkpoint's Merkle tree. The fetcher verifies the
/// leaves against the quorum-certified checkpoint digest, then requests
/// only the partitions whose leaves differ from its own state
/// ([`FetchParts`]) — hierarchical partial state transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateMeta {
    /// The checkpoint sequence number.
    pub seq: SeqNum,
    /// The Merkle leaves: one digest per service partition, followed by
    /// the reply-cache leaf. Their root must equal the checkpoint digest
    /// in the fetcher's certificate.
    pub leaves: Vec<Digest>,
}

impl Wire for StateMeta {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.seq.encode(buf);
        self.leaves.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(StateMeta {
            seq: u64::decode(r)?,
            leaves: Vec::<Digest>::decode(r)?,
        })
    }
    fn wire_len(&self) -> usize {
        8 + 8 + 16 * self.leaves.len()
    }
}

/// Request for the serialized bytes of specific checkpoint partitions.
/// The final partition index (`leaves.len() - 1` in the [`StateMeta`])
/// addresses the reply cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchParts {
    /// Checkpoint sequence number wanted.
    pub seq: SeqNum,
    /// Indices of the wanted partitions.
    pub parts: Vec<u32>,
}

impl Wire for FetchParts {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.seq.encode(buf);
        self.parts.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(FetchParts {
            seq: u64::decode(r)?,
            parts: Vec::<u32>::decode(r)?,
        })
    }
    fn wire_len(&self) -> usize {
        8 + 8 + 4 * self.parts.len()
    }
}

/// Partition bytes answering a [`FetchParts`]. The fetcher verifies each
/// partition against the corresponding [`StateMeta`] leaf before
/// installing it, so a faulty sender can only waste bandwidth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartData {
    /// The checkpoint sequence number.
    pub seq: SeqNum,
    /// `(partition index, serialized partition bytes)` pairs.
    pub parts: Vec<(u32, Vec<u8>)>,
}

impl Wire for PartData {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.seq.encode(buf);
        self.parts.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(PartData {
            seq: u64::decode(r)?,
            parts: Vec::<(u32, Vec<u8>)>::decode(r)?,
        })
    }
    fn wire_len(&self) -> usize {
        8 + self.parts.wire_len()
    }
}

/// Request for the body of a batch known only by digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchBatch {
    /// Sequence number of the wanted batch.
    pub seq: SeqNum,
    /// Its batch digest.
    pub batch_digest: Digest,
}

impl Wire for FetchBatch {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.seq.encode(buf);
        self.batch_digest.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(FetchBatch {
            seq: u64::decode(r)?,
            batch_digest: Digest::decode(r)?,
        })
    }
    fn wire_len(&self) -> usize {
        8 + 16
    }
}

/// Request for individual request bodies by digest — the cheap recovery
/// path when a replica holds a pre-prepare but lost some of the
/// separately-transmitted request bodies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchRequests {
    /// Digests of the wanted requests.
    pub digests: Vec<Digest>,
}

impl Wire for FetchRequests {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.digests.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(FetchRequests {
            digests: Vec::<Digest>::decode(r)?,
        })
    }
    fn wire_len(&self) -> usize {
        8 + 16 * self.digests.len()
    }
}

/// Request bodies answering a [`FetchRequests`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestData {
    /// The recovered requests.
    pub requests: Vec<Request>,
}

impl Wire for RequestData {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.requests.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(RequestData {
            requests: Vec::<Request>::decode(r)?,
        })
    }
    fn wire_len(&self) -> usize {
        self.requests.wire_len()
    }
}

/// A batch body answering a [`FetchBatch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchData {
    /// Sequence number of the batch.
    pub seq: SeqNum,
    /// The batch entries (fully inlined).
    pub entries: Vec<BatchEntry>,
}

impl Wire for BatchData {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.seq.encode(buf);
        self.entries.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(BatchData {
            seq: u64::decode(r)?,
            entries: Vec::<BatchEntry>::decode(r)?,
        })
    }
    fn wire_len(&self) -> usize {
        8 + self.entries.wire_len()
    }
}

/// Periodic status gossip driving retransmission: peers that see a
/// lagging replica re-send what it is missing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// Sender's current view.
    pub view: View,
    /// Sender's last stable checkpoint.
    pub last_stable: SeqNum,
    /// Sender's highest executed sequence number.
    pub last_executed: SeqNum,
}

impl Wire for Status {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.view.encode(buf);
        self.last_stable.encode(buf);
        self.last_executed.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Status {
            view: u64::decode(r)?,
            last_stable: u64::decode(r)?,
            last_executed: u64::decode(r)?,
        })
    }
    fn wire_len(&self) -> usize {
        8 + 8 + 8
    }
}

/// A peer's assertion that a batch committed, used to backfill holes at a
/// lagging replica. MAC-authenticated assertions are not transferable
/// certificates, so receivers act only on `f+1` matching assertions from
/// distinct peers — at least one of which must be correct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommittedBatch {
    /// The committed sequence number.
    pub seq: SeqNum,
    /// Its batch digest.
    pub batch_digest: Digest,
    /// The batch entries (digest-checked by the receiver).
    pub entries: Vec<BatchEntry>,
}

impl Wire for CommittedBatch {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.seq.encode(buf);
        self.batch_digest.encode(buf);
        self.entries.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(CommittedBatch {
            seq: u64::decode(r)?,
            batch_digest: Digest::decode(r)?,
            entries: Vec::<BatchEntry>::decode(r)?,
        })
    }
    fn wire_len(&self) -> usize {
        8 + 16 + self.entries.wire_len()
    }
}

/// NEW-KEY: a replica announces a fresh inbound-key epoch. In the real
/// system this carries RSA-encrypted per-sender keys and a signature (see
/// `bft-crypto`'s `rsa` module and the `key_exchange` integration test);
/// in the simulation the directional keys derive from the epoch itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NewKey {
    /// The announcing replica.
    pub replica: ReplicaId,
    /// Its new inbound-key epoch.
    pub epoch: u64,
}

impl Wire for NewKey {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.replica.encode(buf);
        self.epoch.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(NewKey {
            replica: u32::decode(r)?,
            epoch: u64::decode(r)?,
        })
    }
    fn wire_len(&self) -> usize {
        4 + 8
    }
}

/// RECOVER: a replica announces it is proactively recovering. Peers grant
/// it a recovery lease (so staggered watchdogs keep at most one replica
/// in-recovery at a time), adopt the fresh MAC epoch carried here, and
/// answer with a [`RecoverAttest`] for their stable checkpoint. A second
/// RECOVER with `done` set releases the lease early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recover {
    /// The recovering replica.
    pub replica: ReplicaId,
    /// Its freshly rotated inbound-key epoch.
    pub epoch: u64,
    /// True when recovery completed and the lease can be released.
    pub done: bool,
}

impl Wire for Recover {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.replica.encode(buf);
        self.epoch.encode(buf);
        self.done.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Recover {
            replica: u32::decode(r)?,
            epoch: u64::decode(r)?,
            done: bool::decode(r)?,
        })
    }
    fn wire_len(&self) -> usize {
        4 + 8 + 1
    }
}

/// RECOVER-ATTEST: a peer's point-to-point answer to [`Recover`], naming
/// its stable checkpoint. The recovering replica trusts nothing it holds
/// locally, so it waits for `f+1` matching attestations — at least one
/// from a correct replica — before auditing its state against the
/// attested Merkle root.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoverAttest {
    /// The attester's stable checkpoint sequence number.
    pub seq: SeqNum,
    /// The checkpoint's Merkle root.
    pub state_digest: Digest,
    /// The attesting replica.
    pub replica: ReplicaId,
}

impl Wire for RecoverAttest {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.seq.encode(buf);
        self.state_digest.encode(buf);
        self.replica.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(RecoverAttest {
            seq: u64::decode(r)?,
            state_digest: Digest::decode(r)?,
            replica: u32::decode(r)?,
        })
    }
    fn wire_len(&self) -> usize {
        8 + 16 + 4
    }
}

/// LEASE: the primary of `view` grants every backup a time-bounded read
/// lease (arXiv:2107.11144). While a holder's lease is valid it answers
/// read-only requests locally in one round; the primary defers ordering
/// writes until every grant is revoked ([`LeaseRevoke`]) or has expired,
/// so all up-to-date holders reply from the same quiescent state and the
/// client's `2f+1` matching rule completes without a read-write fallback.
///
/// `epoch` totally orders grants and revokes within a view: a holder
/// ignores any lease message carrying an epoch below the highest it has
/// seen, so a grant delayed past its own revoke cannot resurrect a lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// The granting view (a lease is void outside it).
    pub view: View,
    /// Grant/revoke sequence counter, primary-local per view.
    pub epoch: u64,
    /// The primary's highest assigned sequence number at grant time; a
    /// holder serves reads only once it has executed through it.
    pub seq: SeqNum,
    /// Lease validity window, measured from receipt.
    pub duration_ns: u64,
}

impl Wire for Lease {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.view.encode(buf);
        self.epoch.encode(buf);
        self.seq.encode(buf);
        self.duration_ns.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Lease {
            view: u64::decode(r)?,
            epoch: u64::decode(r)?,
            seq: u64::decode(r)?,
            duration_ns: u64::decode(r)?,
        })
    }
    fn wire_len(&self) -> usize {
        8 + 8 + 8 + 8
    }
}

/// LEASE-RENEW: a holder's acknowledgment of a [`Lease`] grant — echoes
/// the acked epoch and reports the holder's execution progress. Doubles
/// as the primary's per-backup liveness evidence: a primary that stops
/// hearing these (and other view-matching traffic) from `2f` backups
/// withholds further grants, so a partitioned or deposed primary's
/// outstanding leases drain out within one duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseRenew {
    /// The granting view.
    pub view: View,
    /// The grant epoch being acknowledged.
    pub epoch: u64,
    /// The acknowledging holder.
    pub replica: ReplicaId,
    /// The holder's highest executed sequence number (telemetry: how far
    /// behind the grant's `seq` the holder was at accept time).
    pub seq: SeqNum,
}

impl Wire for LeaseRenew {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.view.encode(buf);
        self.epoch.encode(buf);
        self.replica.encode(buf);
        self.seq.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(LeaseRenew {
            view: u64::decode(r)?,
            epoch: u64::decode(r)?,
            replica: u32::decode(r)?,
            seq: u64::decode(r)?,
        })
    }
    fn wire_len(&self) -> usize {
        8 + 8 + 4 + 8
    }
}

/// LEASE-REVOKE: with `ack == false`, the primary's write fence — holders
/// must drop their lease and answer with `ack == true`. The primary
/// resumes ordering once every backup acked
/// ([`crate::types::Quorums::lease_revoke_quorum`]) or the last grant's
/// conservative expiry passed, whichever comes first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseRevoke {
    /// The view whose leases are being revoked.
    pub view: View,
    /// Epoch of the revocation (supersedes lower-epoch grants).
    pub epoch: u64,
    /// The sender (primary for requests, holder for acks).
    pub replica: ReplicaId,
    /// False: revoke request from the primary. True: holder's ack.
    pub ack: bool,
}

impl Wire for LeaseRevoke {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.view.encode(buf);
        self.epoch.encode(buf);
        self.replica.encode(buf);
        self.ack.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(LeaseRevoke {
            view: u64::decode(r)?,
            epoch: u64::decode(r)?,
            replica: u32::decode(r)?,
            ack: bool::decode(r)?,
        })
    }
    fn wire_len(&self) -> usize {
        8 + 8 + 4 + 1
    }
}

/// BUSY: a replica's overload pushback to a client. Sent instead of
/// silently dropping a request when admission control sheds it — the
/// per-client in-flight quota is exhausted or a request queue is at its
/// high watermark. The client backs off for at least `retry_after_ns`
/// (with deterministic per-client jitter) before retransmitting, and
/// under persistent pushback degrades from optimistic paths back to the
/// classic ordered path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Busy {
    /// The client whose request was shed.
    pub client: ClientId,
    /// The shed request's client timestamp.
    pub timestamp: Timestamp,
    /// The overloaded replica.
    pub replica: ReplicaId,
    /// Minimum back-off the client should apply before retrying.
    pub retry_after_ns: u64,
}

impl Wire for Busy {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.client.encode(buf);
        self.timestamp.encode(buf);
        self.replica.encode(buf);
        self.retry_after_ns.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Busy {
            client: u32::decode(r)?,
            timestamp: u64::decode(r)?,
            replica: u32::decode(r)?,
            retry_after_ns: u64::decode(r)?,
        })
    }
    fn wire_len(&self) -> usize {
        4 + 8 + 4 + 8
    }
}

/// All protocol messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// Client request.
    Request(Request),
    /// Primary ordering proposal.
    PrePrepare(PrePrepare),
    /// Backup agreement.
    Prepare(Prepare),
    /// Commit announcement.
    Commit(Commit),
    /// Result to a client.
    Reply(Reply),
    /// Checkpoint claim.
    Checkpoint(Checkpoint),
    /// View-change vote.
    ViewChange(ViewChange),
    /// New-view installation.
    NewView(NewView),
    /// State-transfer request.
    FetchState(FetchState),
    /// State-transfer checkpoint metadata (partition leaf digests).
    StateMeta(StateMeta),
    /// Partition-bytes request (partial state transfer).
    FetchParts(FetchParts),
    /// Partition bytes.
    PartData(PartData),
    /// Batch-body request.
    FetchBatch(FetchBatch),
    /// Batch-body data.
    BatchData(BatchData),
    /// Individual request-body recovery request.
    FetchRequests(FetchRequests),
    /// Individual request-body recovery data.
    RequestData(RequestData),
    /// Periodic status gossip.
    Status(Status),
    /// Committed-batch backfill assertion.
    CommittedBatch(CommittedBatch),
    /// Inbound-key epoch announcement.
    NewKey(NewKey),
    /// Proactive-recovery announcement (lease + fresh epoch).
    Recover(Recover),
    /// Stable-checkpoint attestation for a recovering replica.
    RecoverAttest(RecoverAttest),
    /// Read-lease grant from the primary.
    Lease(Lease),
    /// Read-lease grant acknowledgment (holder to primary).
    LeaseRenew(LeaseRenew),
    /// Read-lease revocation (request or ack).
    LeaseRevoke(LeaseRevoke),
    /// Overload pushback: a replica shed a request under admission
    /// control and asks the client to back off before retrying.
    Busy(Busy),
}

impl Msg {
    /// A short name for metrics and debugging.
    pub fn kind(&self) -> &'static str {
        match self {
            Msg::Request(_) => "request",
            Msg::PrePrepare(_) => "pre-prepare",
            Msg::Prepare(_) => "prepare",
            Msg::Commit(_) => "commit",
            Msg::Reply(_) => "reply",
            Msg::Checkpoint(_) => "checkpoint",
            Msg::ViewChange(_) => "view-change",
            Msg::NewView(_) => "new-view",
            Msg::FetchState(_) => "fetch-state",
            Msg::StateMeta(_) => "state-meta",
            Msg::FetchParts(_) => "fetch-parts",
            Msg::PartData(_) => "part-data",
            Msg::FetchBatch(_) => "fetch-batch",
            Msg::BatchData(_) => "batch-data",
            Msg::FetchRequests(_) => "fetch-requests",
            Msg::RequestData(_) => "request-data",
            Msg::Status(_) => "status",
            Msg::CommittedBatch(_) => "committed-batch",
            Msg::NewKey(_) => "new-key",
            Msg::Recover(_) => "recover",
            Msg::RecoverAttest(_) => "recover-attest",
            Msg::Lease(_) => "lease",
            Msg::LeaseRenew(_) => "lease-renew",
            Msg::LeaseRevoke(_) => "lease-revoke",
            Msg::Busy(_) => "busy",
        }
    }

    /// The pre-interned per-kind receive counter name (`msg.<kind>`), so
    /// the hot receive path records without allocating a key.
    pub fn metric_name(&self) -> &'static str {
        match self {
            Msg::Request(_) => "msg.request",
            Msg::PrePrepare(_) => "msg.pre-prepare",
            Msg::Prepare(_) => "msg.prepare",
            Msg::Commit(_) => "msg.commit",
            Msg::Reply(_) => "msg.reply",
            Msg::Checkpoint(_) => "msg.checkpoint",
            Msg::ViewChange(_) => "msg.view-change",
            Msg::NewView(_) => "msg.new-view",
            Msg::FetchState(_) => "msg.fetch-state",
            Msg::StateMeta(_) => "msg.state-meta",
            Msg::FetchParts(_) => "msg.fetch-parts",
            Msg::PartData(_) => "msg.part-data",
            Msg::FetchBatch(_) => "msg.fetch-batch",
            Msg::BatchData(_) => "msg.batch-data",
            Msg::FetchRequests(_) => "msg.fetch-requests",
            Msg::RequestData(_) => "msg.request-data",
            Msg::Status(_) => "msg.status",
            Msg::CommittedBatch(_) => "msg.committed-batch",
            Msg::NewKey(_) => "msg.new-key",
            Msg::Recover(_) => "msg.recover",
            Msg::RecoverAttest(_) => "msg.recover-attest",
            Msg::Lease(_) => "msg.lease",
            Msg::LeaseRenew(_) => "msg.lease-renew",
            Msg::LeaseRevoke(_) => "msg.lease-revoke",
            Msg::Busy(_) => "msg.busy",
        }
    }

    /// The wire tag byte (the discriminant [`Wire::encode`] writes).
    /// Indexes the per-tag send/receive arrays in the health counter
    /// registry (`bft_sim::health`).
    pub fn tag(&self) -> u8 {
        match self {
            Msg::Request(_) => 0,
            Msg::PrePrepare(_) => 1,
            Msg::Prepare(_) => 2,
            Msg::Commit(_) => 3,
            Msg::Reply(_) => 4,
            Msg::Checkpoint(_) => 5,
            Msg::ViewChange(_) => 6,
            Msg::NewView(_) => 7,
            Msg::FetchState(_) => 8,
            Msg::StateMeta(_) => 9,
            Msg::FetchBatch(_) => 10,
            Msg::BatchData(_) => 11,
            Msg::FetchRequests(_) => 12,
            Msg::RequestData(_) => 13,
            Msg::Status(_) => 14,
            Msg::CommittedBatch(_) => 15,
            Msg::NewKey(_) => 16,
            Msg::FetchParts(_) => 17,
            Msg::PartData(_) => 18,
            Msg::Recover(_) => 19,
            Msg::RecoverAttest(_) => 20,
            Msg::Lease(_) => 21,
            Msg::LeaseRenew(_) => 22,
            Msg::LeaseRevoke(_) => 23,
            Msg::Busy(_) => 24,
        }
    }
}

impl Wire for Msg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Msg::Request(m) => {
                buf.push(0);
                m.encode(buf);
            }
            Msg::PrePrepare(m) => {
                buf.push(1);
                m.encode(buf);
            }
            Msg::Prepare(m) => {
                buf.push(2);
                m.encode(buf);
            }
            Msg::Commit(m) => {
                buf.push(3);
                m.encode(buf);
            }
            Msg::Reply(m) => {
                buf.push(4);
                m.encode(buf);
            }
            Msg::Checkpoint(m) => {
                buf.push(5);
                m.encode(buf);
            }
            Msg::ViewChange(m) => {
                buf.push(6);
                m.encode(buf);
            }
            Msg::NewView(m) => {
                buf.push(7);
                m.encode(buf);
            }
            Msg::FetchState(m) => {
                buf.push(8);
                m.encode(buf);
            }
            Msg::StateMeta(m) => {
                buf.push(9);
                m.encode(buf);
            }
            Msg::FetchParts(m) => {
                buf.push(17);
                m.encode(buf);
            }
            Msg::PartData(m) => {
                buf.push(18);
                m.encode(buf);
            }
            Msg::FetchBatch(m) => {
                buf.push(10);
                m.encode(buf);
            }
            Msg::BatchData(m) => {
                buf.push(11);
                m.encode(buf);
            }
            Msg::FetchRequests(m) => {
                buf.push(12);
                m.encode(buf);
            }
            Msg::RequestData(m) => {
                buf.push(13);
                m.encode(buf);
            }
            Msg::Status(m) => {
                buf.push(14);
                m.encode(buf);
            }
            Msg::CommittedBatch(m) => {
                buf.push(15);
                m.encode(buf);
            }
            Msg::NewKey(m) => {
                buf.push(16);
                m.encode(buf);
            }
            Msg::Recover(m) => {
                buf.push(19);
                m.encode(buf);
            }
            Msg::RecoverAttest(m) => {
                buf.push(20);
                m.encode(buf);
            }
            Msg::Lease(m) => {
                buf.push(21);
                m.encode(buf);
            }
            Msg::LeaseRenew(m) => {
                buf.push(22);
                m.encode(buf);
            }
            Msg::LeaseRevoke(m) => {
                buf.push(23);
                m.encode(buf);
            }
            Msg::Busy(m) => {
                buf.push(24);
                m.encode(buf);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match u8::decode(r)? {
            0 => Msg::Request(Request::decode(r)?),
            1 => Msg::PrePrepare(PrePrepare::decode(r)?),
            2 => Msg::Prepare(Prepare::decode(r)?),
            3 => Msg::Commit(Commit::decode(r)?),
            4 => Msg::Reply(Reply::decode(r)?),
            5 => Msg::Checkpoint(Checkpoint::decode(r)?),
            6 => Msg::ViewChange(ViewChange::decode(r)?),
            7 => Msg::NewView(NewView::decode(r)?),
            8 => Msg::FetchState(FetchState::decode(r)?),
            9 => Msg::StateMeta(StateMeta::decode(r)?),
            10 => Msg::FetchBatch(FetchBatch::decode(r)?),
            11 => Msg::BatchData(BatchData::decode(r)?),
            12 => Msg::FetchRequests(FetchRequests::decode(r)?),
            13 => Msg::RequestData(RequestData::decode(r)?),
            14 => Msg::Status(Status::decode(r)?),
            15 => Msg::CommittedBatch(CommittedBatch::decode(r)?),
            16 => Msg::NewKey(NewKey::decode(r)?),
            17 => Msg::FetchParts(FetchParts::decode(r)?),
            18 => Msg::PartData(PartData::decode(r)?),
            19 => Msg::Recover(Recover::decode(r)?),
            20 => Msg::RecoverAttest(RecoverAttest::decode(r)?),
            21 => Msg::Lease(Lease::decode(r)?),
            22 => Msg::LeaseRenew(LeaseRenew::decode(r)?),
            23 => Msg::LeaseRevoke(LeaseRevoke::decode(r)?),
            24 => Msg::Busy(Busy::decode(r)?),
            t => return Err(WireError::BadTag(t)),
        })
    }
    fn wire_len(&self) -> usize {
        1 + match self {
            Msg::Request(m) => m.wire_len(),
            Msg::PrePrepare(m) => m.wire_len(),
            Msg::Prepare(m) => m.wire_len(),
            Msg::Commit(m) => m.wire_len(),
            Msg::Reply(m) => m.wire_len(),
            Msg::Checkpoint(m) => m.wire_len(),
            Msg::ViewChange(m) => m.wire_len(),
            Msg::NewView(m) => m.wire_len(),
            Msg::FetchState(m) => m.wire_len(),
            Msg::StateMeta(m) => m.wire_len(),
            Msg::FetchParts(m) => m.wire_len(),
            Msg::PartData(m) => m.wire_len(),
            Msg::FetchBatch(m) => m.wire_len(),
            Msg::BatchData(m) => m.wire_len(),
            Msg::FetchRequests(m) => m.wire_len(),
            Msg::RequestData(m) => m.wire_len(),
            Msg::Status(m) => m.wire_len(),
            Msg::CommittedBatch(m) => m.wire_len(),
            Msg::NewKey(m) => m.wire_len(),
            Msg::Recover(m) => m.wire_len(),
            Msg::RecoverAttest(m) => m.wire_len(),
            Msg::Lease(m) => m.wire_len(),
            Msg::LeaseRenew(m) => m.wire_len(),
            Msg::LeaseRevoke(m) => m.wire_len(),
            Msg::Busy(m) => m.wire_len(),
        }
    }
}

/// A network datagram: message body plus packet-level authentication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// The protocol message.
    pub body: Msg,
    /// Packet-level authentication over the body's digest.
    pub auth: AuthTag,
}

impl Packet {
    /// Wraps a body with no packet-level authentication.
    pub fn unauthenticated(body: Msg) -> Packet {
        Packet {
            body,
            auth: AuthTag::None,
        }
    }

    /// Total bytes on the wire.
    pub fn wire_bytes(&self) -> usize {
        self.body.wire_len() + self.auth.wire_bytes()
    }

    /// Digest of the encoded body — the value MACs are computed over.
    pub fn body_digest(&self) -> Digest {
        bft_crypto::digest(&self.body.to_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> Request {
        Request {
            client: 7,
            timestamp: 3,
            op: vec![1, 2, 3, 4],
            read_only: false,
            replier: 2,
            auth: AuthTag::Mac(Mac {
                nonce: 9,
                tag: [1; 8],
            }),
        }
    }

    fn roundtrip(msg: Msg) {
        let bytes = msg.to_bytes();
        assert_eq!(bytes[0], msg.tag(), "tag() must match the wire tag");
        assert_ne!(bft_sim::health::tag_name(msg.tag()), "?", "tag unnamed");
        assert_eq!(Msg::from_bytes(&bytes).expect("decode"), msg);
    }

    #[test]
    fn all_messages_roundtrip() {
        let req = sample_request();
        let d = req.digest();
        roundtrip(Msg::Request(req.clone()));
        roundtrip(Msg::PrePrepare(PrePrepare {
            view: 1,
            seq: 2,
            entries: vec![
                BatchEntry::Full(req.clone()),
                BatchEntry::Ref {
                    client: 8,
                    timestamp: 1,
                    digest: d,
                },
            ],
            batch_digest: d,
            piggy_commits: vec![(1, d)],
        }));
        roundtrip(Msg::Prepare(Prepare {
            view: 1,
            seq: 2,
            batch_digest: d,
            replica: 3,
            piggy_commits: vec![],
        }));
        roundtrip(Msg::Commit(Commit {
            view: 1,
            seq: 2,
            batch_digest: d,
            replica: 0,
        }));
        roundtrip(Msg::Reply(Reply {
            view: 1,
            timestamp: 3,
            client: 7,
            replica: 2,
            tentative: true,
            body: ReplyBody::Full(vec![9, 9]),
        }));
        roundtrip(Msg::Reply(Reply {
            view: 1,
            timestamp: 3,
            client: 7,
            replica: 2,
            tentative: false,
            body: ReplyBody::Digest(d),
        }));
        roundtrip(Msg::Checkpoint(Checkpoint {
            seq: 128,
            state_digest: d,
            replica: 1,
        }));
        roundtrip(Msg::ViewChange(ViewChange {
            new_view: 2,
            last_stable: 128,
            stable_digest: d,
            prepared: vec![PreparedInfo {
                seq: 130,
                view: 1,
                batch_digest: d,
            }],
            fast_votes: vec![PreparedInfo {
                seq: 131,
                view: 1,
                batch_digest: d,
            }],
            replica: 3,
        }));
        roundtrip(Msg::NewView(NewView {
            view: 2,
            view_changes: vec![],
            pre_prepares: vec![(129, NULL_DIGEST), (130, d)],
            batches: vec![(130, vec![BatchEntry::Full(req)])],
        }));
        roundtrip(Msg::FetchState(FetchState { seq: 128 }));
        roundtrip(Msg::StateMeta(StateMeta {
            seq: 128,
            leaves: vec![d, NULL_DIGEST, d],
        }));
        roundtrip(Msg::FetchParts(FetchParts {
            seq: 128,
            parts: vec![0, 2, 63],
        }));
        roundtrip(Msg::PartData(PartData {
            seq: 128,
            parts: vec![(0, vec![1, 2, 3]), (2, Vec::new())],
        }));
        roundtrip(Msg::FetchBatch(FetchBatch {
            seq: 130,
            batch_digest: d,
        }));
        roundtrip(Msg::BatchData(BatchData {
            seq: 130,
            entries: vec![],
        }));
        roundtrip(Msg::FetchRequests(FetchRequests { digests: vec![d] }));
        roundtrip(Msg::RequestData(RequestData {
            requests: vec![sample_request()],
        }));
        roundtrip(Msg::Status(Status {
            view: 3,
            last_stable: 128,
            last_executed: 140,
        }));
        roundtrip(Msg::CommittedBatch(CommittedBatch {
            seq: 135,
            batch_digest: d,
            entries: vec![BatchEntry::Ref {
                client: 9,
                timestamp: 2,
                digest: d,
            }],
        }));
        roundtrip(Msg::NewKey(NewKey {
            replica: 2,
            epoch: 7,
        }));
        roundtrip(Msg::Recover(Recover {
            replica: 1,
            epoch: 3,
            done: false,
        }));
        roundtrip(Msg::Recover(Recover {
            replica: 1,
            epoch: 3,
            done: true,
        }));
        roundtrip(Msg::RecoverAttest(RecoverAttest {
            seq: 128,
            state_digest: d,
            replica: 0,
        }));
        roundtrip(Msg::Lease(Lease {
            view: 2,
            epoch: 9,
            seq: 140,
            duration_ns: 100_000_000,
        }));
        roundtrip(Msg::LeaseRenew(LeaseRenew {
            view: 2,
            epoch: 10,
            replica: 3,
            seq: 145,
        }));
        roundtrip(Msg::LeaseRevoke(LeaseRevoke {
            view: 2,
            epoch: 11,
            replica: 0,
            ack: false,
        }));
        roundtrip(Msg::LeaseRevoke(LeaseRevoke {
            view: 2,
            epoch: 11,
            replica: 3,
            ack: true,
        }));
        roundtrip(Msg::Busy(Busy {
            client: 7,
            timestamp: 42,
            replica: 1,
            retry_after_ns: 5_000_000,
        }));
    }

    #[test]
    fn request_digest_ignores_replier_and_auth() {
        let base = sample_request();
        let mut other = base.clone();
        other.replier = REPLIER_ALL;
        other.auth = AuthTag::None;
        assert_eq!(base.digest(), other.digest());
        let mut changed = base.clone();
        changed.op.push(5);
        assert_ne!(base.digest(), changed.digest());
        let mut ro = base;
        ro.read_only = true;
        assert_ne!(ro.digest(), sample_request().digest());
    }

    #[test]
    fn batch_digest_depends_on_order_and_content() {
        let a = BatchEntry::Full(sample_request());
        let b = BatchEntry::Ref {
            client: 9,
            timestamp: 1,
            digest: bft_crypto::digest(b"other"),
        };
        let d1 = batch_digest(&[a.clone(), b.clone()]);
        let d2 = batch_digest(&[b, a]);
        assert_ne!(d1, d2);
        assert_ne!(d1, batch_digest(&[]));
    }

    #[test]
    fn batch_entry_forms_agree_on_digest() {
        let req = sample_request();
        let full = BatchEntry::Full(req.clone());
        let by_ref = BatchEntry::Ref {
            client: req.client,
            timestamp: req.timestamp,
            digest: req.digest(),
        };
        assert_eq!(batch_digest(&[full]), batch_digest(&[by_ref]));
    }

    #[test]
    fn packet_sizes_account_for_auth() {
        let body = Msg::Commit(Commit {
            view: 0,
            seq: 1,
            batch_digest: NULL_DIGEST,
            replica: 0,
        });
        let bare = Packet::unauthenticated(body.clone());
        let mut kc = bft_crypto::KeyChain::new(0, 4);
        let auth = kc.authenticate(bare.body_digest().as_bytes());
        let sealed = Packet {
            body,
            auth: AuthTag::Vector(auth),
        };
        assert!(sealed.wire_bytes() > bare.wire_bytes());
        // 3 entries × 17 bytes + tag byte + length.
        assert_eq!(sealed.wire_bytes() - bare.wire_bytes(), 8 + 3 * 17);
    }

    #[test]
    fn corrupted_body_changes_digest() {
        let p = Packet::unauthenticated(Msg::FetchState(FetchState { seq: 1 }));
        let q = Packet::unauthenticated(Msg::FetchState(FetchState { seq: 2 }));
        assert_ne!(p.body_digest(), q.body_digest());
    }

    #[test]
    fn bad_tag_rejected() {
        assert_eq!(Msg::from_bytes(&[200]), Err(WireError::BadTag(200)));
    }

    #[test]
    fn kind_names_cover_all_variants() {
        let req = sample_request();
        assert_eq!(Msg::Request(req).kind(), "request");
        assert_eq!(Msg::FetchState(FetchState { seq: 0 }).kind(), "fetch-state");
    }
}
