//! Protocol invariant checking for chaos tests.
//!
//! The [`InvariantChecker`] is wired into [`Cluster::run_with_plan`] and
//! evaluates, after every simulation event:
//!
//! - **Agreement** — no two untainted replicas finalize different batch
//!   digests at the same sequence number;
//! - **View monotonicity** — a replica's view never decreases;
//! - **Checkpoint consistency** — no two untainted replicas announce
//!   different state digests for the checkpoint at the same sequence
//!   number;
//! - **Linearizability** of the counter service as observed by clients,
//!   including read-only replies (reads must never return a value older
//!   than any operation that completed before they were invoked).
//!
//! Replicas the fault plan makes Byzantine are *tainted*: their local
//! state is arbitrary by definition, so their audit records are drained
//! but not checked (the protocol promises safety to correct replicas and
//! clients, not to the adversary). Crashed replicas are fail-stop — their
//! state stays honest — and remain checked.
//!
//! The counter-specific linearizability argument: `add(k)` returns the
//! register value *after* the increment and `get` returns the current
//! value, so every completed operation yields a point on the register's
//! monotone timeline. If `m` is the largest value returned by any
//! operation that completed before operation `X` was invoked, then the
//! register was at least `m` for the whole of `X`'s lifetime — so `X`
//! must return at least `m` (at least `m + k` for `add(k)`). Conversely
//! `X` cannot return more than the sum of all increments invoked before
//! it completed. Two different `add`s can never return the same value,
//! and at quiescence the sorted `add` results must chain exactly
//! (`v_i = v_{i-1} + k_i`).
//!
//! [`Cluster::run_with_plan`]: crate::cluster::Cluster::run_with_plan

use crate::client::{Client, ClientDriver};
use crate::cluster::Cluster;
use crate::replica::Replica;
use crate::service::Service;
use crate::types::{ClientId, ReplicaId, SeqNum, Timestamp, View};
use bft_crypto::md5::Digest;
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Safety-relevant events recorded by a replica for the checker: batches
/// finalized with a commit certificate and checkpoints announced to the
/// cluster. Drained via [`Replica::drain_audit`]; bounded when nobody
/// drains so non-chaos runs pay only a small memory cost.
#[derive(Debug, Clone, Default)]
pub struct ReplicaAudit {
    /// `(seq, batch digest)` for every batch executed as final.
    pub committed: Vec<(SeqNum, Digest)>,
    /// `(seq, batch digest)` for every batch committed via the fast
    /// path (the full fast quorum of prepare votes, no commit phase).
    pub fast_committed: Vec<(SeqNum, Digest)>,
    /// `(seq, state digest)` for every checkpoint announced.
    pub checkpoints: Vec<(SeqNum, Digest)>,
    /// `(seq, state digest, completed at ns)` for every proactive
    /// recovery completed: the attested checkpoint the replica's state
    /// was audited against.
    pub recoveries: Vec<(SeqNum, Digest, u64)>,
    /// `(client, timestamp, served at ns, result)` for every read-only
    /// request answered locally under a read lease (arXiv:2107.11144).
    /// The checker holds each one to the global linearization order: at
    /// its serve instant the value must be at least the largest value any
    /// completed operation returned, and at most the sum of increments
    /// invoked so far.
    pub lease_reads: Vec<(ClientId, Timestamp, u64, Vec<u8>)>,
}

impl ReplicaAudit {
    /// Retention bound when the audit is never drained.
    const CAP: usize = 8_192;

    /// Records a finalized batch.
    pub fn note_committed(&mut self, seq: SeqNum, digest: Digest) {
        self.committed.push((seq, digest));
        if self.committed.len() > Self::CAP {
            self.committed.drain(..Self::CAP / 2);
        }
    }

    /// Records a fast-path commit.
    pub fn note_fast_committed(&mut self, seq: SeqNum, digest: Digest) {
        self.fast_committed.push((seq, digest));
        if self.fast_committed.len() > Self::CAP {
            self.fast_committed.drain(..Self::CAP / 2);
        }
    }

    /// Records an announced checkpoint.
    pub fn note_checkpoint(&mut self, seq: SeqNum, digest: Digest) {
        self.checkpoints.push((seq, digest));
        if self.checkpoints.len() > Self::CAP {
            self.checkpoints.drain(..Self::CAP / 2);
        }
    }

    /// Records a completed proactive recovery.
    pub fn note_recovery(&mut self, seq: SeqNum, digest: Digest, at_ns: u64) {
        self.recoveries.push((seq, digest, at_ns));
        if self.recoveries.len() > Self::CAP {
            self.recoveries.drain(..Self::CAP / 2);
        }
    }

    /// Records a read-only request answered locally under a read lease.
    pub fn note_lease_read(
        &mut self,
        client: ClientId,
        timestamp: Timestamp,
        at_ns: u64,
        result: Vec<u8>,
    ) {
        self.lease_reads.push((client, timestamp, at_ns, result));
        if self.lease_reads.len() > Self::CAP {
            self.lease_reads.drain(..Self::CAP / 2);
        }
    }
}

/// A client-observed operation event, recorded by [`crate::client::Client`]
/// and consumed by the linearizability checker.
#[derive(Debug, Clone)]
pub enum OpEvent {
    /// An operation was submitted.
    Invoke {
        /// The invoking client.
        client: ClientId,
        /// The client's timestamp for the operation.
        timestamp: Timestamp,
        /// The operation bytes (counter-service encoding).
        op: Vec<u8>,
        /// Simulated time of submission.
        at_ns: u64,
    },
    /// An operation completed with an accepted reply quorum.
    Complete {
        /// The invoking client.
        client: ClientId,
        /// The client's timestamp for the operation.
        timestamp: Timestamp,
        /// The accepted result bytes.
        result: Vec<u8>,
        /// Simulated time of completion.
        at_ns: u64,
    },
}

impl OpEvent {
    fn at_ns(&self) -> u64 {
        match self {
            OpEvent::Invoke { at_ns, .. } | OpEvent::Complete { at_ns, .. } => *at_ns,
        }
    }
}

/// A detected protocol invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Two replicas finalized different batches at one sequence number.
    Agreement {
        /// The disputed sequence number.
        seq: SeqNum,
        /// First replica and its digest.
        a: (ReplicaId, Digest),
        /// Second replica and its conflicting digest.
        b: (ReplicaId, Digest),
    },
    /// *Fast-commit safety*: two replicas fast-committed different
    /// batches at one sequence number, or a fast commit disagrees with
    /// what the cluster finalized there.
    FastCommitDivergence {
        /// The disputed sequence number.
        seq: SeqNum,
        /// First replica and its digest.
        a: (ReplicaId, Digest),
        /// Second replica and its conflicting digest.
        b: (ReplicaId, Digest),
    },
    /// A replica's view number decreased.
    ViewRegression {
        /// The regressing replica.
        replica: ReplicaId,
        /// The view it was seen in before.
        from: View,
        /// The smaller view it reported afterwards.
        to: View,
    },
    /// Two replicas announced different digests for one checkpoint.
    CheckpointDivergence {
        /// The checkpoint sequence number.
        seq: SeqNum,
        /// First replica and its digest.
        a: (ReplicaId, Digest),
        /// Second replica and its conflicting digest.
        b: (ReplicaId, Digest),
    },
    /// A client observed a non-linearizable counter history.
    Linearizability {
        /// The observing client.
        client: ClientId,
        /// The client timestamp of the offending operation.
        timestamp: Timestamp,
        /// Human-readable explanation.
        detail: String,
    },
    /// The cluster failed to complete the workload after faults healed.
    Liveness {
        /// Human-readable explanation.
        detail: String,
    },
    /// *Recovery completeness*: a replica finished a proactive recovery
    /// with a state root that disagrees with the honest quorum's digest
    /// for the same checkpoint — the audit let corrupt state through.
    RecoveryDivergence {
        /// The recovered replica.
        replica: ReplicaId,
        /// The checkpoint it claims to have been audited against.
        seq: SeqNum,
        /// The digest the recovered replica reports.
        ours: Digest,
        /// The digest the honest quorum announced for that checkpoint.
        quorum: Digest,
    },
    /// *Lease-read linearizability*: a replica answered a read-only
    /// request locally under a read lease with a value inconsistent with
    /// the global linearization order at the serve instant — older than
    /// something a completed operation already observed, or newer than
    /// everything invoked so far.
    StaleLeaseRead {
        /// The serving replica.
        replica: ReplicaId,
        /// The client whose read was served.
        client: ClientId,
        /// The client timestamp of the read.
        timestamp: Timestamp,
        /// Human-readable explanation.
        detail: String,
    },
    /// *Bounded heal*: a silently corrupted replica did not complete a
    /// clean recovery within the configured deadline after corruption.
    UnhealedCorruption {
        /// The still-corrupt replica.
        replica: ReplicaId,
        /// When the corruption was injected (ns).
        corrupted_at_ns: u64,
        /// The deadline it missed (ns).
        deadline_ns: u64,
    },
    /// *Bounded queues*: a replica collection guarded by admission
    /// control grew past its configured cap — overload armor leaked.
    UnboundedGrowth {
        /// The replica whose queue overflowed.
        replica: ReplicaId,
        /// Which collection (see [`Replica::queue_bounds`]).
        ///
        /// [`Replica::queue_bounds`]: crate::replica::Replica::queue_bounds
        queue: &'static str,
        /// Its observed length.
        len: usize,
        /// The cap it was supposed to respect.
        cap: usize,
    },
    /// *Overload fairness*: an honest client's operation ran out of its
    /// bounded retry budget — admission control starved a well-behaved
    /// client instead of shedding the misbehaving load.
    ClientStarvation {
        /// The starved honest client.
        client: ClientId,
        /// Its total budget-exhausted operations so far.
        starved_ops: u64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Agreement { seq, a, b } => write!(
                f,
                "agreement: replica {} finalized {} at seq {seq} but replica {} finalized {}",
                a.0, a.1, b.0, b.1
            ),
            Violation::FastCommitDivergence { seq, a, b } => write!(
                f,
                "fast-commit divergence: replica {} fast-committed {} at seq {seq} but replica {} \
                 holds {}",
                a.0, a.1, b.0, b.1
            ),
            Violation::ViewRegression { replica, from, to } => {
                write!(f, "view regression: replica {replica} went from view {from} back to {to}")
            }
            Violation::CheckpointDivergence { seq, a, b } => write!(
                f,
                "checkpoint divergence at seq {seq}: replica {} announced {} but replica {} announced {}",
                a.0, a.1, b.0, b.1
            ),
            Violation::Linearizability {
                client,
                timestamp,
                detail,
            } => write!(
                f,
                "linearizability: client {client} op ts {timestamp}: {detail}"
            ),
            Violation::Liveness { detail } => write!(f, "liveness: {detail}"),
            Violation::RecoveryDivergence {
                replica,
                seq,
                ours,
                quorum,
            } => write!(
                f,
                "recovery divergence: replica {replica} rejoined at seq {seq} with state {ours} \
                 but the quorum's checkpoint digest is {quorum}"
            ),
            Violation::StaleLeaseRead {
                replica,
                client,
                timestamp,
                detail,
            } => write!(
                f,
                "stale lease read: replica {replica} served client {client} ts {timestamp}: {detail}"
            ),
            Violation::UnhealedCorruption {
                replica,
                corrupted_at_ns,
                deadline_ns,
            } => write!(
                f,
                "unhealed corruption: replica {replica} corrupted at {corrupted_at_ns}ns had not \
                 completed a clean recovery by {deadline_ns}ns"
            ),
            Violation::UnboundedGrowth {
                replica,
                queue,
                len,
                cap,
            } => write!(
                f,
                "unbounded growth: replica {replica} queue {queue} holds {len} entries, cap {cap}"
            ),
            Violation::ClientStarvation {
                client,
                starved_ops,
            } => write!(
                f,
                "client starvation: honest client {client} exhausted its retry budget \
                 ({starved_ops} starved ops)"
            ),
        }
    }
}

/// What a pending (invoked, not yet completed) operation looks like to
/// the linearizability checker.
#[derive(Debug, Clone, Copy)]
enum OpKind {
    Add(u64),
    Get,
}

fn parse_op(op: &[u8]) -> Option<OpKind> {
    match op.first() {
        Some(&0) => Some(OpKind::Add(u64::from(op.get(1).copied().unwrap_or(0)))),
        Some(&1) => Some(OpKind::Get),
        _ => None,
    }
}

#[derive(Debug, Clone)]
struct PendingLin {
    kind: OpKind,
    invoked_ns: u64,
}

#[derive(Debug, Clone, Copy)]
struct DoneLin {
    completed_ns: u64,
    value: u64,
}

/// Incremental linearizability checker for the counter service.
#[derive(Debug, Default)]
struct CounterLinearizability {
    pending: BTreeMap<(ClientId, Timestamp), PendingLin>,
    /// Completed operations, used for the real-time lower bound.
    done: Vec<DoneLin>,
    /// `(invoke time, cumulative add amount invoked so far)`, in invoke
    /// order; upper bound on any observable register value.
    invoked_adds: Vec<(u64, u64)>,
    /// Result value of each completed add -> its amount. Adds strictly
    /// increase the register, so values must be unique and must chain.
    add_values: BTreeMap<u64, (ClientId, Timestamp, u64)>,
}

impl CounterLinearizability {
    fn invoke(
        &mut self,
        client: ClientId,
        timestamp: Timestamp,
        op: &[u8],
        at_ns: u64,
    ) -> Result<(), Violation> {
        let Some(kind) = parse_op(op) else {
            return Err(Violation::Linearizability {
                client,
                timestamp,
                detail: format!("unrecognized counter op {op:?}"),
            });
        };
        if let OpKind::Add(k) = kind {
            let sum = self.invoked_adds.last().map_or(0, |&(_, s)| s) + k;
            self.invoked_adds.push((at_ns, sum));
        }
        self.pending.insert(
            (client, timestamp),
            PendingLin {
                kind,
                invoked_ns: at_ns,
            },
        );
        Ok(())
    }

    /// Sum of add amounts invoked at or before `t`.
    fn invoked_sum_at(&self, t: u64) -> u64 {
        match self.invoked_adds.partition_point(|&(at, _)| at <= t) {
            0 => 0,
            i => self.invoked_adds[i - 1].1,
        }
    }

    fn complete(
        &mut self,
        client: ClientId,
        timestamp: Timestamp,
        result: &[u8],
        at_ns: u64,
    ) -> Result<(), Violation> {
        let fail = |detail: String| Violation::Linearizability {
            client,
            timestamp,
            detail,
        };
        let Some(p) = self.pending.remove(&(client, timestamp)) else {
            return Err(fail("completion without a matching invocation".into()));
        };
        let Ok(bytes) = <[u8; 8]>::try_from(result) else {
            return Err(fail(format!("malformed result ({} bytes)", result.len())));
        };
        let value = u64::from_le_bytes(bytes);
        // Real-time lower bound: the largest value returned by any
        // operation that completed before this one was invoked.
        let floor = self
            .done
            .iter()
            .filter(|d| d.completed_ns <= p.invoked_ns)
            .map(|d| d.value)
            .max()
            .unwrap_or(0);
        // Upper bound: everything invoked before this op completed.
        let ceiling = self.invoked_sum_at(at_ns);
        if value > ceiling {
            return Err(fail(format!(
                "returned {value} but only {ceiling} was ever added before completion"
            )));
        }
        match p.kind {
            OpKind::Get => {
                if value < floor {
                    return Err(fail(format!(
                        "stale read: returned {value} after an op completed with {floor}"
                    )));
                }
            }
            OpKind::Add(k) => {
                if value < floor + k {
                    return Err(fail(format!(
                        "add({k}) returned {value}, below the observed floor {floor} + {k}"
                    )));
                }
                // Adds strictly increase the register: results are unique
                // and neighbours on the value line must be k apart or more.
                if let Some((&pv, &(pc, pt, _))) = self.add_values.range(..=value).next_back() {
                    if pv == value {
                        return Err(fail(format!(
                            "add({k}) returned {value}, already returned to client {pc} ts {pt}"
                        )));
                    }
                    if value - k < pv {
                        return Err(fail(format!(
                            "add({k}) returned {value}, overlapping the add that returned {pv}"
                        )));
                    }
                }
                if let Some((&nv, &(_, _, nk))) = self.add_values.range(value + 1..).next() {
                    if nv - nk < value {
                        return Err(fail(format!(
                            "add({k}) returned {value}, overlapping the add that returned {nv}"
                        )));
                    }
                }
                self.add_values.insert(value, (client, timestamp, k));
            }
        }
        self.done.push(DoneLin {
            completed_ns: at_ns,
            value,
        });
        Ok(())
    }

    /// Checks a lease-served read against the linearization order at its
    /// serve instant: the value must cover everything any completed
    /// operation already observed, without exceeding what was invoked.
    fn check_lease_read(
        &self,
        replica: ReplicaId,
        client: ClientId,
        timestamp: Timestamp,
        serve_ns: u64,
        result: &[u8],
    ) -> Result<(), Violation> {
        let fail = |detail: String| Violation::StaleLeaseRead {
            replica,
            client,
            timestamp,
            detail,
        };
        let Ok(bytes) = <[u8; 8]>::try_from(result) else {
            return Err(fail(format!("malformed result ({} bytes)", result.len())));
        };
        let value = u64::from_le_bytes(bytes);
        let floor = self
            .done
            .iter()
            .filter(|d| d.completed_ns <= serve_ns)
            .map(|d| d.value)
            .max()
            .unwrap_or(0);
        if value < floor {
            return Err(fail(format!(
                "served {value} at {serve_ns}ns after an op had completed with {floor}"
            )));
        }
        let ceiling = self.invoked_sum_at(serve_ns);
        if value > ceiling {
            return Err(fail(format!(
                "served {value} at {serve_ns}ns but only {ceiling} was ever added by then"
            )));
        }
        Ok(())
    }

    /// Final check at quiescence: with no adds outstanding, the completed
    /// adds must chain exactly from zero.
    fn finish(&self) -> Result<(), Violation> {
        let outstanding_add = self
            .pending
            .values()
            .any(|p| matches!(p.kind, OpKind::Add(_)));
        if outstanding_add {
            return Ok(());
        }
        let mut prev = 0u64;
        for (&v, &(client, timestamp, k)) in &self.add_values {
            if v != prev + k {
                return Err(Violation::Linearizability {
                    client,
                    timestamp,
                    detail: format!(
                        "add chain broken: add({k}) returned {v} but the previous total was {prev}"
                    ),
                });
            }
            prev = v;
        }
        Ok(())
    }
}

/// The protocol invariant checker. Create one per run and pass it to
/// [`Cluster::run_with_plan`]; call [`InvariantChecker::finish`] once the
/// run reaches quiescence.
///
/// [`Cluster::run_with_plan`]: crate::cluster::Cluster::run_with_plan
#[derive(Debug, Default)]
pub struct InvariantChecker {
    committed: BTreeMap<SeqNum, (ReplicaId, Digest)>,
    fast_committed: BTreeMap<SeqNum, (ReplicaId, Digest)>,
    checkpoints: BTreeMap<SeqNum, (ReplicaId, Digest)>,
    views: BTreeMap<ReplicaId, View>,
    tainted: BTreeSet<ReplicaId>,
    /// Replicas with silently corrupted service state, keyed by injection
    /// time. Unlike `tainted` this exemption is *revocable*: it only
    /// suspends the checkpoint-consistency check (the replica's state
    /// digests legitimately diverge until it heals) and is lifted the
    /// moment a completed recovery's attested root matches the honest
    /// quorum — after which the replica is held to every invariant again.
    corrupted: BTreeMap<ReplicaId, u64>,
    /// *Bounded heal* deadline: a corrupted replica must complete a clean
    /// recovery within this many ns of the corruption. 0 disables.
    heal_deadline_ns: u64,
    /// Clients currently misbehaving under a chaos plan: their operations
    /// may legitimately never complete, so the starvation audit absorbs
    /// (rather than reports) their budget exhaustions.
    tainted_clients: BTreeSet<ClientId>,
    /// Last observed per-client starvation counter, for delta detection.
    starved_seen: BTreeMap<ClientId, u64>,
    lin: CounterLinearizability,
}

impl InvariantChecker {
    /// Creates a fresh checker.
    pub fn new() -> InvariantChecker {
        InvariantChecker::default()
    }

    /// Marks a replica as Byzantine: its audit records are drained but no
    /// longer checked. Called automatically when a fault plan applies a
    /// Byzantine mutation. Taint subsumes any pending corruption-heal
    /// obligation: a Byzantine replica's state is arbitrary by
    /// definition, so there is nothing meaningful left to heal (plan
    /// minimization can produce corrupt-then-Byzantine orderings the
    /// generator's budget never would).
    pub fn mark_tainted(&mut self, replica: ReplicaId) {
        self.tainted.insert(replica);
        self.corrupted.remove(&replica);
    }

    /// Marks a replica as silently corrupted at `at_ns`. Called
    /// automatically when a fault plan injects state corruption. The
    /// earliest injection time is kept so the heal deadline cannot be
    /// pushed out by corrupting the same replica twice. Corrupting an
    /// already-tainted replica is a no-op for the same reason taint
    /// clears the corruption mark above.
    pub fn mark_corrupted(&mut self, replica: ReplicaId, at_ns: u64) {
        if self.tainted.contains(&replica) {
            return;
        }
        self.corrupted.entry(replica).or_insert(at_ns);
    }

    /// Marks a client as misbehaving (chaos client faults): its retry
    /// budget exhaustions are absorbed instead of reported, since a
    /// flooding client abandons its own operations by design.
    pub fn mark_client_tainted(&mut self, client: ClientId) {
        self.tainted_clients.insert(client);
    }

    /// Lifts a client's taint after a chaos `Restore`: from the next
    /// observation on, the client is held to the starvation invariant
    /// again (exhaustions while misbehaving were already absorbed).
    pub fn restore_client(&mut self, client: ClientId) {
        self.tainted_clients.remove(&client);
    }

    /// Sets the *bounded heal* deadline (0 disables). With a deadline,
    /// [`InvariantChecker::observe`] reports a violation for any replica
    /// still corrupt `deadline` ns after its corruption was injected.
    pub fn set_heal_deadline(&mut self, deadline_ns: u64) {
        self.heal_deadline_ns = deadline_ns;
    }

    /// Replicas currently marked corrupt (and not yet cleanly recovered).
    pub fn corrupted_replicas(&self) -> impl Iterator<Item = ReplicaId> + '_ {
        self.corrupted.keys().copied()
    }

    /// Drains every node's audit records and checks all invariants.
    /// `S` and `D` are the cluster's service and client-driver types.
    pub fn observe<S: Service, D: ClientDriver>(
        &mut self,
        cluster: &mut Cluster,
    ) -> Result<(), Violation> {
        // Lease-served reads are checked only after this round's client
        // events are fed to the linearizability model below: a completion
        // that precedes the serve instant may sit in the same drain batch.
        let mut lease_reads: Vec<(ReplicaId, ClientId, Timestamp, u64, Vec<u8>)> = Vec::new();
        for i in 0..cluster.cfg.n() {
            let replica: &mut Replica<S> = cluster.replica_mut(i);
            let view = replica.view();
            let audit = replica.drain_audit();
            // *Bounded queues*: every request-holding collection must
            // respect its cap at every observable instant — checked even
            // on tainted replicas, since admission control is local code
            // that runs regardless of the protocol-level behavior mode.
            for (queue, len, cap) in replica.queue_bounds() {
                if len > cap {
                    return Err(Violation::UnboundedGrowth {
                        replica: i,
                        queue,
                        len,
                        cap,
                    });
                }
            }
            if self.tainted.contains(&i) {
                continue;
            }
            // Captured before the checkpoint loop below, which may heal
            // (and unmark) the replica within this same drain batch.
            let corrupt_since_ns = self.corrupted.get(&i).copied();
            let prev = self.views.entry(i).or_insert(0);
            if view < *prev {
                return Err(Violation::ViewRegression {
                    replica: i,
                    from: *prev,
                    to: view,
                });
            }
            *prev = view;
            for (seq, digest) in audit.committed {
                if let Some(&(other, other_digest)) = self.fast_committed.get(&seq) {
                    if other_digest != digest {
                        return Err(Violation::FastCommitDivergence {
                            seq,
                            a: (other, other_digest),
                            b: (i, digest),
                        });
                    }
                }
                match self.committed.entry(seq) {
                    Entry::Occupied(e) => {
                        let &(other, other_digest) = e.get();
                        if other_digest != digest {
                            return Err(Violation::Agreement {
                                seq,
                                a: (other, other_digest),
                                b: (i, digest),
                            });
                        }
                    }
                    Entry::Vacant(v) => {
                        v.insert((i, digest));
                    }
                }
            }
            // *Fast-commit safety*: fast commits must agree across
            // replicas and with whatever the cluster finalizes at the
            // same sequence number — a per-slot fallback or a view
            // change must never land a different batch there, and no two
            // replicas may fast-commit different batches at one seq.
            for (seq, digest) in audit.fast_committed {
                if let Some(&(other, other_digest)) = self.committed.get(&seq) {
                    if other_digest != digest {
                        return Err(Violation::FastCommitDivergence {
                            seq,
                            a: (i, digest),
                            b: (other, other_digest),
                        });
                    }
                }
                match self.fast_committed.entry(seq) {
                    Entry::Occupied(e) => {
                        let &(other, other_digest) = e.get();
                        if other_digest != digest {
                            return Err(Violation::FastCommitDivergence {
                                seq,
                                a: (other, other_digest),
                                b: (i, digest),
                            });
                        }
                    }
                    Entry::Vacant(v) => {
                        v.insert((i, digest));
                    }
                }
            }
            // A corrupted replica's checkpoint digests legitimately
            // diverge until it heals; its batch digests and views above
            // do not (corruption touches service state, not the log), so
            // only this check is suspended — and never used as the
            // reference other replicas are compared against.
            if !self.corrupted.contains_key(&i) {
                for (seq, digest) in audit.checkpoints {
                    match self.checkpoints.entry(seq) {
                        Entry::Occupied(e) => {
                            let &(other, other_digest) = e.get();
                            if other_digest != digest {
                                return Err(Violation::CheckpointDivergence {
                                    seq,
                                    a: (other, other_digest),
                                    b: (i, digest),
                                });
                            }
                        }
                        Entry::Vacant(v) => {
                            v.insert((i, digest));
                        }
                    }
                }
            }
            // *Recovery completeness*: a completed recovery's attested
            // root must agree with the honest quorum's digest for that
            // checkpoint. A match also heals a corrupted replica — the
            // audit provably brought its state back to the quorum root —
            // which revokes its checkpoint exemption from here on.
            for (seq, digest, _at_ns) in audit.recoveries {
                match self.checkpoints.entry(seq) {
                    Entry::Occupied(e) => {
                        let &(_, quorum) = e.get();
                        if quorum != digest {
                            return Err(Violation::RecoveryDivergence {
                                replica: i,
                                seq,
                                ours: digest,
                                quorum,
                            });
                        }
                    }
                    Entry::Vacant(v) => {
                        // No honest announcement seen yet for this seq;
                        // the recovered root carried f+1 attestations, so
                        // it can serve as the reference.
                        v.insert((i, digest));
                    }
                }
                self.corrupted.remove(&i);
            }
            for (client, timestamp, at_ns, result) in audit.lease_reads {
                // A silently corrupted replica serves garbage until its
                // recovery audit heals it; the client's 2f+1 matching
                // rule discards those replies, so they are excused here
                // exactly like the checkpoint-digest check above — the
                // lease invariant binds only reads served from state no
                // fault was injected into.
                if corrupt_since_ns.is_some_and(|at| at_ns >= at) {
                    continue;
                }
                lease_reads.push((i, client, timestamp, at_ns, result));
            }
        }
        // *Bounded heal*: every corrupted replica must have completed a
        // clean recovery within the deadline of its injection.
        if self.heal_deadline_ns > 0 {
            let now = cluster.sim.now().nanos();
            for (&replica, &at_ns) in &self.corrupted {
                let deadline = at_ns.saturating_add(self.heal_deadline_ns);
                if now > deadline && !self.tainted.contains(&replica) {
                    return Err(Violation::UnhealedCorruption {
                        replica,
                        corrupted_at_ns: at_ns,
                        deadline_ns: deadline,
                    });
                }
            }
        }
        let mut events = Vec::new();
        for id in cluster.clients.clone() {
            let client: &mut Client<D> = cluster.client_mut(id);
            events.extend(client.drain_audit());
            // *Overload fairness*: an honest client must never exhaust
            // its retry budget. Misbehaving clients have their deltas
            // absorbed so only post-restore exhaustions can fire.
            let starved = client.starvation_events();
            let seen = self.starved_seen.entry(id).or_insert(0);
            if starved > *seen {
                *seen = starved;
                if !self.tainted_clients.contains(&id) {
                    return Err(Violation::ClientStarvation {
                        client: id,
                        starved_ops: starved,
                    });
                }
            }
        }
        // Drains may interleave clients; feed the checker in time order.
        events.sort_by_key(OpEvent::at_ns);
        for ev in events {
            match ev {
                OpEvent::Invoke {
                    client,
                    timestamp,
                    op,
                    at_ns,
                } => self.lin.invoke(client, timestamp, &op, at_ns)?,
                OpEvent::Complete {
                    client,
                    timestamp,
                    result,
                    at_ns,
                } => self.lin.complete(client, timestamp, &result, at_ns)?,
            }
        }
        // *Lease-read linearizability*: every locally served read must be
        // consistent with the global order at its serve instant.
        for (replica, client, timestamp, at_ns, result) in lease_reads {
            self.lin
                .check_lease_read(replica, client, timestamp, at_ns, &result)?;
        }
        Ok(())
    }

    /// Final quiescence checks (exact add-chain reconstruction).
    pub fn finish(&self) -> Result<(), Violation> {
        self.lin.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add(k: u64) -> Vec<u8> {
        vec![0, k as u8]
    }
    fn get() -> Vec<u8> {
        vec![1]
    }
    fn val(v: u64) -> Vec<u8> {
        v.to_le_bytes().to_vec()
    }

    #[test]
    fn sequential_history_passes() {
        let mut lin = CounterLinearizability::default();
        lin.invoke(4, 1, &add(5), 0).unwrap();
        lin.complete(4, 1, &val(5), 10).unwrap();
        lin.invoke(4, 2, &get(), 20).unwrap();
        lin.complete(4, 2, &val(5), 30).unwrap();
        lin.invoke(5, 1, &add(3), 40).unwrap();
        lin.complete(5, 1, &val(8), 50).unwrap();
        lin.finish().unwrap();
    }

    #[test]
    fn stale_read_is_caught() {
        let mut lin = CounterLinearizability::default();
        lin.invoke(4, 1, &add(5), 0).unwrap();
        lin.complete(4, 1, &val(5), 10).unwrap();
        // Read invoked after the add completed must not return 0.
        lin.invoke(5, 1, &get(), 20).unwrap();
        let err = lin.complete(5, 1, &val(0), 30).unwrap_err();
        assert!(matches!(err, Violation::Linearizability { .. }));
        assert!(err.to_string().contains("stale read"));
    }

    #[test]
    fn forged_value_exceeding_invoked_sum_is_caught() {
        let mut lin = CounterLinearizability::default();
        lin.invoke(4, 1, &add(5), 0).unwrap();
        assert!(lin.complete(4, 1, &val(500), 10).is_err());
    }

    #[test]
    fn duplicate_add_result_is_caught() {
        let mut lin = CounterLinearizability::default();
        // Concurrent adds (neither completes before the other is invoked)
        // must still return distinct totals.
        lin.invoke(4, 1, &add(5), 0).unwrap();
        lin.invoke(5, 1, &add(5), 1).unwrap();
        lin.complete(4, 1, &val(5), 10).unwrap();
        let err = lin.complete(5, 1, &val(5), 20).unwrap_err();
        assert!(err.to_string().contains("already returned"));
    }

    #[test]
    fn concurrent_reads_may_disagree_within_bounds() {
        let mut lin = CounterLinearizability::default();
        // Add in flight; two concurrent reads see old and new values.
        lin.invoke(4, 1, &add(7), 0).unwrap();
        lin.invoke(5, 1, &get(), 1).unwrap();
        lin.invoke(6, 1, &get(), 2).unwrap();
        lin.complete(5, 1, &val(7), 20).unwrap();
        lin.complete(6, 1, &val(0), 21).unwrap();
        lin.complete(4, 1, &val(7), 30).unwrap();
        lin.finish().unwrap();
    }

    #[test]
    fn broken_add_chain_is_caught_at_finish() {
        let mut lin = CounterLinearizability::default();
        lin.invoke(4, 1, &add(5), 0).unwrap();
        lin.invoke(5, 1, &add(3), 1).unwrap();
        // Both adds claim disjoint, non-chaining totals: 5 then 3+5=8 is
        // correct; 5 then 7 is not reachable by add(3).
        lin.complete(4, 1, &val(5), 10).unwrap();
        assert!(lin.complete(5, 1, &val(7), 20).is_err());
    }

    #[test]
    fn lease_read_within_bounds_passes() {
        let mut lin = CounterLinearizability::default();
        lin.invoke(4, 1, &add(5), 0).unwrap();
        lin.complete(4, 1, &val(5), 10).unwrap();
        // A concurrent add is in flight; serving either 5 or 8 is fine.
        lin.invoke(5, 1, &add(3), 15).unwrap();
        lin.check_lease_read(2, 6, 1, 20, &val(5)).unwrap();
        lin.check_lease_read(2, 6, 1, 20, &val(8)).unwrap();
    }

    #[test]
    fn stale_lease_read_is_caught() {
        let mut lin = CounterLinearizability::default();
        lin.invoke(4, 1, &add(5), 0).unwrap();
        lin.complete(4, 1, &val(5), 10).unwrap();
        // Served after the add completed, yet missing it: stale.
        let err = lin.check_lease_read(2, 6, 1, 20, &val(0)).unwrap_err();
        assert!(matches!(err, Violation::StaleLeaseRead { replica: 2, .. }));
        assert!(err.to_string().contains("completed with 5"));
    }

    #[test]
    fn forged_lease_read_is_caught() {
        let mut lin = CounterLinearizability::default();
        lin.invoke(4, 1, &add(5), 0).unwrap();
        // Serving a value above everything invoked: fabricated state.
        let err = lin.check_lease_read(2, 6, 1, 20, &val(9)).unwrap_err();
        assert!(err.to_string().contains("ever added"));
    }

    #[test]
    fn lease_read_before_completion_may_lag() {
        let mut lin = CounterLinearizability::default();
        lin.invoke(4, 1, &add(5), 0).unwrap();
        // The add has not completed anywhere; a read served at 5ns may
        // legitimately predate its execution.
        lin.check_lease_read(2, 6, 1, 5, &val(0)).unwrap();
        lin.complete(4, 1, &val(5), 10).unwrap();
        // But a serve instant after the completion must reflect it.
        assert!(lin.check_lease_read(2, 6, 1, 11, &val(0)).is_err());
    }

    #[test]
    fn out_of_order_completions_chain() {
        let mut lin = CounterLinearizability::default();
        // Two concurrent adds complete in the opposite order of their
        // linearization points.
        lin.invoke(4, 1, &add(5), 0).unwrap();
        lin.invoke(5, 1, &add(3), 1).unwrap();
        lin.complete(5, 1, &val(8), 20).unwrap();
        lin.complete(4, 1, &val(5), 21).unwrap();
        lin.finish().unwrap();
    }
}
