//! The replica message log: per-sequence-number slots accumulating
//! pre-prepare/prepare/commit certificates within the water marks.

use crate::messages::{BatchEntry, Request, NULL_DIGEST};
use crate::types::{Quorums, ReplicaId, SeqNum, View};
use bft_crypto::md5::Digest;
use std::collections::BTreeMap;

/// Protocol state for one sequence number.
#[derive(Debug, Clone, Default)]
pub struct Slot {
    /// View of the accepted pre-prepare.
    pub view: View,
    /// Batch digest from the accepted pre-prepare.
    pub digest: Option<Digest>,
    /// Resolved request bodies (present once every `Ref` entry has been
    /// matched with a multicast request body).
    pub requests: Option<Vec<Request>>,
    /// The raw batch entries as proposed (served to fetchers).
    pub raw_entries: Option<Vec<BatchEntry>>,
    /// Prepares received, by sender, with the digest each vouched for.
    /// Ordered (BTreeMap) so certificate iteration order can never leak
    /// hasher randomness into protocol behaviour.
    pub prepares: BTreeMap<ReplicaId, Digest>,
    /// Commits received, by sender. Ordered for the same reason.
    pub commits: BTreeMap<ReplicaId, Digest>,
    /// Whether this replica already multicast its prepare.
    pub prepare_sent: bool,
    /// Whether this replica already multicast (or queued) its commit.
    pub commit_sent: bool,
    /// Whether the batch has been executed tentatively.
    pub executed_tentative: bool,
    /// Whether the batch has been executed with a committed certificate.
    pub executed_final: bool,
    /// True for null batches installed by a new view.
    pub is_null: bool,
    /// Set when `f+1` peers asserted this batch committed (backfill); the
    /// committed predicate then holds without local certificates.
    pub force_committed: bool,
    /// Fast path: prepared and waiting for the full fast quorum of
    /// prepare votes before committing (commit deliberately withheld).
    pub fast_wait: bool,
    /// Fast path: this slot fell back to the classic commit phase
    /// (timeout, conflicting votes, or a peer's explicit commit) and
    /// must not re-enter the fast wait.
    pub fast_fallback: bool,
    /// Fast path: the full fast quorum of matching prepare votes was
    /// observed; the slot is committed without a commit certificate.
    pub fast_committed: bool,
}

impl Slot {
    /// True once a pre-prepare (or new-view equivalent) is accepted.
    pub fn has_pre_prepare(&self) -> bool {
        self.digest.is_some()
    }

    /// True once the request bodies needed for execution are available.
    pub fn executable(&self) -> bool {
        self.is_null || self.requests.is_some()
    }

    /// The *prepared* predicate: an accepted pre-prepare plus `2f`
    /// matching prepares from replicas other than the view's primary.
    pub fn prepared(&self, q: &Quorums) -> bool {
        let Some(d) = self.digest else { return false };
        let primary = q.primary(self.view);
        let matching = self
            .prepares
            .iter()
            .filter(|&(&r, &pd)| r != primary && pd == d)
            .count();
        matching >= q.prepare_quorum()
    }

    /// The *committed-local* predicate: prepared plus `2f+1` matching
    /// commits (own commit included once sent), or a completed fast
    /// quorum, or a backfill assertion.
    pub fn committed(&self, q: &Quorums) -> bool {
        let Some(d) = self.digest else { return false };
        if self.force_committed || self.fast_committed {
            return true;
        }
        if !self.prepared(q) {
            return false;
        }
        let matching = self.commits.values().filter(|&&cd| cd == d).count();
        matching >= q.commit_quorum()
    }

    /// Number of fast-path prepare votes observed for the accepted
    /// digest: the primary's pre-prepare counts as its vote, every
    /// non-primary vote arrives as a prepare (own prepare included once
    /// sent).
    fn fast_votes(&self, q: &Quorums) -> usize {
        let Some(d) = self.digest else { return 0 };
        let primary = q.primary(self.view);
        1 + self
            .prepares
            .iter()
            .filter(|&(&r, &pd)| r != primary && pd == d)
            .count()
    }

    /// True once every replica's prepare vote for the accepted digest has
    /// been observed — the fast-path commit certificate.
    pub fn fast_quorum_complete(&self, q: &Quorums) -> bool {
        self.fast_votes(q) >= q.fast_quorum()
    }

    /// True when the fast quorum can no longer complete: some replica
    /// voted for a *different* digest, so even with every missing vote
    /// arriving the matching count stays short. (The primary cannot
    /// conflict — its vote *is* the accepted pre-prepare.)
    pub fn fast_quorum_unreachable(&self, q: &Quorums) -> bool {
        let Some(d) = self.digest else { return false };
        let primary = q.primary(self.view);
        let conflicting = self
            .prepares
            .iter()
            .filter(|&(&r, &pd)| r != primary && pd != d)
            .count();
        // Max achievable votes = n - conflicting (conflicting voters
        // never re-vote; correct replicas vote once per view and seq).
        q.n as usize - conflicting < q.fast_quorum()
    }
}

/// The log: slots between the low water mark `h` (exclusive) and
/// `h + L` (inclusive).
#[derive(Debug, Clone)]
pub struct Log {
    slots: BTreeMap<SeqNum, Slot>,
    low: SeqNum,
    window: u64,
}

impl Log {
    /// Creates an empty log with low water mark 0.
    pub fn new(window: u64) -> Log {
        Log {
            slots: BTreeMap::new(),
            low: 0,
            window,
        }
    }

    /// The low water mark `h` (the last stable checkpoint).
    pub fn low(&self) -> SeqNum {
        self.low
    }

    /// The high water mark `H = h + L`.
    pub fn high(&self) -> SeqNum {
        self.low + self.window
    }

    /// True if `seq` is within `(h, H]`.
    pub fn in_window(&self, seq: SeqNum) -> bool {
        seq > self.low && seq <= self.high()
    }

    /// The slot for `seq`, creating it if absent.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is outside the water marks.
    pub fn slot_mut(&mut self, seq: SeqNum) -> &mut Slot {
        assert!(
            self.in_window(seq),
            "seq {seq} outside ({}, {}]",
            self.low,
            self.high()
        );
        self.slots.entry(seq).or_default()
    }

    /// The slot for `seq` if it exists.
    pub fn slot(&self, seq: SeqNum) -> Option<&Slot> {
        self.slots.get(&seq)
    }

    /// Iterates over populated slots in sequence order.
    pub fn iter(&self) -> impl Iterator<Item = (SeqNum, &Slot)> {
        self.slots.iter().map(|(&s, slot)| (s, slot))
    }

    /// Advances the low water mark to a new stable checkpoint, discarding
    /// everything at or below it.
    pub fn collect_garbage(&mut self, new_low: SeqNum) {
        if new_low <= self.low {
            return;
        }
        self.low = new_low;
        self.slots = self.slots.split_off(&(new_low + 1));
    }

    /// Summaries of prepared batches above the low water mark — the `P`
    /// set for a view-change message.
    pub fn prepared_infos(&self, q: &Quorums) -> Vec<crate::messages::PreparedInfo> {
        self.slots
            .iter()
            .filter(|(_, slot)| slot.prepared(q) && slot.digest != Some(NULL_DIGEST))
            .map(|(&seq, slot)| crate::messages::PreparedInfo {
                seq,
                view: slot.view,
                batch_digest: slot.digest.expect("prepared implies digest"),
            })
            .collect()
    }

    /// Summaries of batches this replica *voted* for (accepted the
    /// pre-prepare and multicast its prepare, or proposed as primary) —
    /// the fast-vote report for a view-change message. A fast-committed
    /// batch is provable in the new view because all `n` replicas voted,
    /// so any view-change quorum carries `f+1` correct matching reports;
    /// a bare vote that never fast-committed is harmless to adopt (it is
    /// a valid proposal from the old view, deduplicated on execution by
    /// the reply cache).
    pub fn fast_vote_infos(
        &self,
        me: ReplicaId,
        q: &Quorums,
    ) -> Vec<crate::messages::PreparedInfo> {
        self.slots
            .iter()
            .filter(|(_, slot)| {
                slot.digest.is_some()
                    && slot.digest != Some(NULL_DIGEST)
                    && (slot.prepare_sent || q.primary(slot.view) == me)
            })
            .map(|(&seq, slot)| crate::messages::PreparedInfo {
                seq,
                view: slot.view,
                batch_digest: slot.digest.expect("filtered on digest"),
            })
            .collect()
    }

    /// Resets certificate state for a new view, preserving request bodies
    /// (so the new primary can re-propose them and fetches can be served)
    /// and execution flags.
    pub fn reset_for_view(&mut self) {
        for slot in self.slots.values_mut() {
            slot.digest = None;
            slot.prepares.clear();
            slot.commits.clear();
            slot.prepare_sent = false;
            slot.commit_sent = false;
            slot.force_committed = false;
            slot.fast_wait = false;
            slot.fast_fallback = false;
            slot.fast_committed = false;
            // requests/raw_entries retained; executed_* retained.
        }
    }

    /// Clears execution markers on every slot above `seq`. Adopting a
    /// fetched checkpoint can move execution *backwards* (a recovery
    /// audit targets the group's stable point, which may trail what this
    /// replica executed while the fetch was in flight); slots above the
    /// adopted state must then re-execute, and a stale tentative marker
    /// would otherwise wedge the execution loop in `finalize_tentative`.
    pub fn clear_executed_above(&mut self, seq: SeqNum) {
        for (&s, slot) in self.slots.iter_mut() {
            if s > seq {
                slot.executed_tentative = false;
                slot.executed_final = false;
            }
        }
    }

    /// Restarts the window at `low` for a proactive recovery, keeping
    /// every slot above it that accepted a pre-prepare — certificates
    /// and all. Recovery must not forget certificate state: a batch this
    /// replica *finalized* is client-visible (a view change racing the
    /// recovery would otherwise find no prepared certificate anywhere
    /// and legally re-order that sequence number), and a batch it merely
    /// *prepared* may be exactly the certificate protecting someone
    /// else's commit — PBFT's commit safety counts on every honest
    /// preparer reporting it in the next view change. Batch bodies are
    /// re-verified against the accepted digest (null batches carry
    /// nothing to check); a mismatch strips just the bodies — the
    /// certificate survives and the bodies are re-fetched from peers
    /// before execution.
    pub fn reset_keep_certs(&mut self, low: SeqNum) {
        self.slots
            .retain(|&s, slot| s > low && slot.has_pre_prepare());
        for slot in self.slots.values_mut() {
            let bodies_ok = slot.is_null
                || slot
                    .raw_entries
                    .as_deref()
                    .is_some_and(|e| Some(crate::messages::batch_digest(e)) == slot.digest);
            if !bodies_ok {
                slot.raw_entries = None;
                slot.requests = None;
            }
        }
        self.low = low;
    }

    /// Number of populated slots (diagnostics).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no slots are populated.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> Quorums {
        Quorums::minimal(1)
    }

    fn digest(tag: u8) -> Digest {
        bft_crypto::digest(&[tag])
    }

    fn accepted_slot(view: View, d: Digest) -> Slot {
        Slot {
            view,
            digest: Some(d),
            requests: Some(vec![]),
            ..Slot::default()
        }
    }

    #[test]
    fn prepared_needs_2f_matching_from_non_primary() {
        let mut slot = accepted_slot(0, digest(1));
        assert!(!slot.prepared(&q()));
        // Primary of view 0 is replica 0; its prepare must not count.
        slot.prepares.insert(0, digest(1));
        slot.prepares.insert(1, digest(1));
        assert!(!slot.prepared(&q()), "one backup prepare is not enough");
        slot.prepares.insert(2, digest(1));
        assert!(slot.prepared(&q()));
    }

    #[test]
    fn mismatched_prepare_digests_do_not_count() {
        let mut slot = accepted_slot(0, digest(1));
        slot.prepares.insert(1, digest(2));
        slot.prepares.insert(2, digest(2));
        slot.prepares.insert(3, digest(2));
        assert!(!slot.prepared(&q()), "prepares for a different digest");
    }

    #[test]
    fn committed_needs_prepared_plus_quorum() {
        let mut slot = accepted_slot(1, digest(1));
        // Primary of view 1 is replica 1.
        slot.prepares.insert(0, digest(1));
        slot.prepares.insert(2, digest(1));
        slot.commits.insert(0, digest(1));
        slot.commits.insert(2, digest(1));
        assert!(!slot.committed(&q()), "2 commits < 2f+1");
        slot.commits.insert(3, digest(1));
        assert!(slot.committed(&q()));
    }

    #[test]
    fn commit_without_prepared_is_not_committed() {
        let mut slot = accepted_slot(0, digest(1));
        for r in 0..4 {
            slot.commits.insert(r, digest(1));
        }
        assert!(!slot.committed(&q()), "no prepared certificate");
    }

    #[test]
    fn fast_quorum_needs_every_vote() {
        let mut slot = accepted_slot(0, digest(1));
        // Primary of view 0 is replica 0: its vote is the pre-prepare.
        slot.prepares.insert(1, digest(1));
        slot.prepares.insert(2, digest(1));
        assert!(slot.prepared(&q()));
        assert!(!slot.fast_quorum_complete(&q()), "one vote still missing");
        assert!(!slot.fast_quorum_unreachable(&q()));
        slot.prepares.insert(3, digest(1));
        assert!(slot.fast_quorum_complete(&q()));
    }

    #[test]
    fn conflicting_vote_makes_fast_quorum_unreachable() {
        let mut slot = accepted_slot(0, digest(1));
        slot.prepares.insert(1, digest(1));
        slot.prepares.insert(2, digest(1));
        slot.prepares.insert(3, digest(2));
        assert!(slot.prepared(&q()));
        assert!(!slot.fast_quorum_complete(&q()));
        assert!(slot.fast_quorum_unreachable(&q()), "3 voted elsewhere");
    }

    #[test]
    fn fast_committed_flag_satisfies_committed() {
        let mut slot = accepted_slot(0, digest(1));
        assert!(!slot.committed(&q()));
        slot.fast_committed = true;
        assert!(slot.committed(&q()));
    }

    #[test]
    fn fast_vote_infos_reports_own_votes() {
        let mut log = Log::new(256);
        {
            let s = log.slot_mut(5);
            s.view = 0;
            s.digest = Some(digest(7));
            s.prepare_sent = true; // backup voted
        }
        {
            let s = log.slot_mut(6);
            s.view = 0;
            s.digest = Some(digest(8));
            // no prepare sent and not the primary: not a vote
        }
        // Backup 1's report: only seq 5.
        let infos = log.fast_vote_infos(1, &q());
        assert_eq!(infos.len(), 1);
        assert_eq!(infos[0].seq, 5);
        // Primary 0's report: both (its pre-prepares are its votes).
        let infos = log.fast_vote_infos(0, &q());
        assert_eq!(infos.len(), 2);
    }

    #[test]
    fn reset_for_view_clears_fast_state() {
        let mut log = Log::new(256);
        {
            let s = log.slot_mut(3);
            s.digest = Some(digest(1));
            s.fast_wait = true;
            s.fast_fallback = true;
            s.fast_committed = true;
        }
        log.reset_for_view();
        let s = log.slot(3).expect("slot kept");
        assert!(!s.fast_wait && !s.fast_fallback && !s.fast_committed);
    }

    #[test]
    fn window_bounds() {
        let mut log = Log::new(256);
        assert!(log.in_window(1));
        assert!(log.in_window(256));
        assert!(!log.in_window(0));
        assert!(!log.in_window(257));
        log.collect_garbage(128);
        assert!(!log.in_window(128));
        assert!(log.in_window(384));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn slot_outside_window_panics() {
        let mut log = Log::new(256);
        log.slot_mut(1000);
    }

    #[test]
    fn reset_keep_certs_retains_certificates_and_verified_bodies() {
        use crate::messages::{batch_digest, BatchEntry};
        let entries = vec![BatchEntry::Ref {
            client: 1,
            timestamp: 1,
            digest: digest(9),
        }];
        let mut log = Log::new(256);
        // Finalized, digest-verified: survives whole.
        {
            let s = log.slot_mut(49);
            s.digest = Some(batch_digest(&entries));
            s.raw_entries = Some(entries.clone());
            s.executed_final = true;
            s.prepares.insert(1, batch_digest(&entries));
        }
        // Stored batch no longer matches its digest: the certificate
        // survives but the bodies are stripped for re-fetch.
        {
            let s = log.slot_mut(50);
            s.digest = Some(digest(2));
            s.raw_entries = Some(entries.clone());
            s.prepares.insert(1, digest(2));
            s.prepares.insert(3, digest(2));
        }
        // Prepared but never committed: survives — this certificate may
        // be what protects a partitioned peer's commit at the next view
        // change.
        {
            let s = log.slot_mut(51);
            s.digest = Some(batch_digest(&entries));
            s.raw_entries = Some(entries);
            s.prepares.insert(1, digest(1));
        }
        log.reset_keep_certs(48);
        assert_eq!(log.low(), 48);
        let kept = log.slot(49).expect("finalized slot survives recovery");
        assert!(kept.executed_final);
        assert_eq!(kept.prepares.len(), 1, "certificates survive with it");
        let stripped = log.slot(50).expect("certificate survives mismatch");
        assert!(
            stripped.raw_entries.is_none(),
            "corrupt bodies are stripped"
        );
        assert!(stripped.requests.is_none());
        assert_eq!(stripped.prepares.len(), 2);
        assert!(log.slot(51).is_some(), "prepared-only slots survive");
    }

    #[test]
    fn reset_keep_certs_drops_everything_at_or_below_checkpoint() {
        let mut log = Log::new(256);
        log.slot_mut(5).digest = Some(digest(1));
        log.slot_mut(48).digest = Some(digest(2));
        log.reset_keep_certs(48);
        assert!(log.is_empty());
        assert_eq!(log.low(), 48);
    }

    #[test]
    fn gc_discards_old_slots() {
        let mut log = Log::new(256);
        log.slot_mut(1).digest = Some(digest(1));
        log.slot_mut(128).digest = Some(digest(2));
        log.slot_mut(129).digest = Some(digest(3));
        log.collect_garbage(128);
        assert!(log.slot(1).is_none());
        assert!(log.slot(128).is_none());
        assert!(log.slot(129).is_some());
        // GC never regresses.
        log.collect_garbage(1);
        assert_eq!(log.low(), 128);
    }

    #[test]
    fn prepared_infos_reports_p_set() {
        let mut log = Log::new(256);
        {
            let s = log.slot_mut(5);
            s.view = 0;
            s.digest = Some(digest(7));
            s.requests = Some(vec![]);
            s.prepares.insert(1, digest(7));
            s.prepares.insert(2, digest(7));
        }
        log.slot_mut(6).digest = Some(digest(8)); // not prepared
        let infos = log.prepared_infos(&q());
        assert_eq!(infos.len(), 1);
        assert_eq!(infos[0].seq, 5);
        assert_eq!(infos[0].batch_digest, digest(7));
    }

    #[test]
    fn reset_for_view_clears_certificates_keeps_bodies() {
        let mut log = Log::new(256);
        {
            let s = log.slot_mut(3);
            s.digest = Some(digest(1));
            s.raw_entries = Some(vec![]);
            s.requests = Some(vec![]);
            s.prepares.insert(1, digest(1));
            s.prepare_sent = true;
            s.executed_final = true;
        }
        log.reset_for_view();
        let s = log.slot(3).expect("slot kept");
        assert!(s.digest.is_none());
        assert!(s.prepares.is_empty());
        assert!(!s.prepare_sent);
        assert!(s.requests.is_some(), "bodies survive view changes");
        assert!(s.executed_final, "execution state survives");
    }

    #[test]
    fn null_slot_is_executable_without_requests() {
        let slot = Slot {
            is_null: true,
            digest: Some(NULL_DIGEST),
            ..Slot::default()
        };
        assert!(slot.executable());
    }
}
