//! The deterministic state machine interface.
//!
//! BFT replicates any service expressible as a deterministic state machine
//! (Section 2): all non-faulty replicas must produce identical results when
//! executing the same operations in the same order. The extra methods
//! support the protocol machinery:
//!
//! - `state_digest`/`snapshot`/`restore` for checkpoints and state
//!   transfer;
//! - `commit_prefix`/`rollback_suffix` for the *tentative execution*
//!   optimization — a tentatively executed batch may be undone if a view
//!   change reorders it;
//! - `execute_read_only` for the *read-only* optimization;
//! - `exec_cost_ns` so the simulation can charge the CPU time the real
//!   service would use.
//!
//! # Partitioned checkpointing
//!
//! The paper keeps checkpoints cheap with incremental hierarchical state
//! digests over copy-on-write partitions. The partition hooks expose that
//! design: a service may split its state into `partition_count()` fixed
//! partitions, report which ones each execution dirtied
//! (`take_dirty_partitions`), digest and serialize partitions
//! individually, and retain copy-on-write checkpoint versions so
//! snapshots are only encoded when a lagging peer actually requests
//! state transfer. Every hook has a default treating the whole state as
//! one always-dirty partition, so a plain [`Service`] implementation
//! keeps working — it just checkpoints at O(state) instead of O(dirty).

use crate::types::ClientId;
use bft_crypto::md5::Digest;

/// Error restoring a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestoreError(pub String);

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "snapshot restore failed: {}", self.0)
    }
}

impl std::error::Error for RestoreError {}

/// A deterministic state machine replicated by the BFT library.
pub trait Service: 'static {
    /// Executes a (possibly state-mutating) operation and returns its
    /// result. Implementations must record enough undo information to
    /// support [`Service::rollback_suffix`] until the operation is covered
    /// by [`Service::commit_prefix`].
    fn execute(&mut self, client: ClientId, op: &[u8]) -> Vec<u8>;

    /// Executes an operation that [`Service::is_read_only`] classified as
    /// read-only, without mutating state.
    fn execute_read_only(&self, client: ClientId, op: &[u8]) -> Vec<u8>;

    /// True if `op` cannot modify service state. Replicas *verify* this
    /// classification; a faulty client cannot corrupt state by mislabeling
    /// a write as a read.
    fn is_read_only(&self, op: &[u8]) -> bool;

    /// Simulated CPU cost of executing `op` (service computation the paper
    /// says reduces the relative overhead of replication).
    fn exec_cost_ns(&self, _op: &[u8], _result: &[u8]) -> u64 {
        0
    }

    /// A digest of the current logical state. Must be a deterministic
    /// function of the sequence of executed operations, and must be
    /// preserved by a `snapshot`/`restore` round trip.
    fn state_digest(&self) -> Digest;

    /// Serializes the full state for state transfer and checkpointing.
    fn snapshot(&self) -> Vec<u8>;

    /// Replaces the state from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`RestoreError`] if the snapshot is malformed; the state is
    /// unspecified afterwards and the caller must retry with a good
    /// snapshot.
    fn restore(&mut self, snapshot: &[u8]) -> Result<(), RestoreError>;

    /// Declares the `ops` oldest uncommitted executions final; their undo
    /// information may be discarded.
    fn commit_prefix(&mut self, _ops: usize) {}

    /// Undoes the `ops` most recent executions (those not yet covered by
    /// [`Service::commit_prefix`]), newest first.
    fn rollback_suffix(&mut self, _ops: usize) {}

    // --- Partitioned checkpointing hooks -------------------------------

    /// Number of fixed state partitions. Stable over the life of the
    /// service; partition indices are `0..partition_count()`.
    fn partition_count(&self) -> u32 {
        1
    }

    /// Digest of partition `p`'s current logical content. Must be a
    /// deterministic function of the executed operations that touched
    /// `p`, and must be preserved by a `partition_snapshot`/
    /// `restore_partition` round trip.
    fn partition_digest(&self, _p: u32) -> Digest {
        self.state_digest()
    }

    /// Serializes partition `p`'s current content for state transfer.
    fn partition_snapshot(&self, _p: u32) -> Vec<u8> {
        self.snapshot()
    }

    /// Approximate encoded size of partition `p` in bytes, used by the
    /// simulation to charge digest CPU time proportional to the bytes
    /// actually re-hashed at a checkpoint.
    fn partition_size(&self, _p: u32) -> usize {
        4096
    }

    /// Returns the partitions modified since the previous call and resets
    /// the dirty set. The checkpoint manager re-digests exactly these.
    /// The default conservatively reports every partition dirty.
    fn take_dirty_partitions(&mut self) -> Vec<u32> {
        (0..self.partition_count()).collect()
    }

    /// Replaces partition `p` from serialized `bytes`, verifying the
    /// content digests to `expect` *before* committing the change.
    ///
    /// The default (valid only for single-partition services) restores
    /// the bytes as a full snapshot and checks the digest afterwards; on
    /// mismatch the state is unspecified and the caller re-fetches, so
    /// no fallback snapshot needs to be materialized up front.
    ///
    /// # Errors
    ///
    /// Returns [`RestoreError`] if `bytes` is malformed or does not
    /// digest to `expect`.
    fn restore_partition(
        &mut self,
        _p: u32,
        bytes: &[u8],
        expect: &Digest,
    ) -> Result<(), RestoreError> {
        self.restore(bytes)?;
        if self.partition_digest(0) != *expect {
            return Err(RestoreError("partition digest mismatch".into()));
        }
        Ok(())
    }

    /// Asks the service to retain a copy-on-write version of the current
    /// state, identified by `token` (tokens increase monotonically).
    /// Returning `true` promises that [`Service::retained_partition`] can
    /// later serve any partition as of this point; returning `false`
    /// (the default) makes the checkpoint manager eagerly serialize the
    /// partitions instead.
    fn retain_checkpoint(&mut self, _token: u64) -> bool {
        false
    }

    /// Serializes partition `p` as of retained checkpoint `token`.
    /// Returns `None` if that version is no longer (or was never)
    /// retained.
    fn retained_partition(&self, _token: u64, _p: u32) -> Option<Vec<u8>> {
        None
    }

    /// Discards retained checkpoint versions older than `token`; their
    /// copy-on-write saves may be freed.
    fn release_checkpoints_below(&mut self, _token: u64) {}

    // --- Chaos hooks ---------------------------------------------------

    /// Test-only fault injection: silently flip bits in the live state
    /// *without* marking anything dirty, modelling memory corruption or a
    /// latent disk fault. The incremental checkpoint tracker must not
    /// notice (that is the point — only a proactive-recovery audit against
    /// a quorum-attested root can catch it). `salt` makes distinct
    /// corruptions distinguishable and seed-reproducible. The default does
    /// nothing, so services that cannot model corruption are unaffected.
    fn corrupt_silently(&mut self, _salt: u64) {}
}

/// A service with no state whose operations return empty results. The
/// skeleton used when only protocol behaviour matters.
#[derive(Debug, Default, Clone)]
pub struct NullService;

impl Service for NullService {
    fn execute(&mut self, _client: ClientId, _op: &[u8]) -> Vec<u8> {
        Vec::new()
    }
    fn execute_read_only(&self, _client: ClientId, _op: &[u8]) -> Vec<u8> {
        Vec::new()
    }
    fn is_read_only(&self, _op: &[u8]) -> bool {
        false
    }
    fn state_digest(&self) -> Digest {
        Digest::ZERO
    }
    fn snapshot(&self) -> Vec<u8> {
        Vec::new()
    }
    fn restore(&mut self, _snapshot: &[u8]) -> Result<(), RestoreError> {
        Ok(())
    }
}

/// A tiny deterministic service used throughout the test suite: a single
/// `u64` register supporting `add` and `get`, with full undo support so
/// rollback paths can be exercised.
///
/// Operations: `[0, k]` adds `k` (1 byte) to the register and returns the
/// new value; `[1]` reads the register (read-only).
#[derive(Debug, Default, Clone)]
pub struct CounterService {
    value: u64,
    /// Undo log: previous values of executed-but-uncommitted operations.
    undo: Vec<u64>,
    /// Whether the register changed since the last dirty-set drain.
    dirty: bool,
    /// Retained checkpoint versions: token -> register value then. The
    /// state is one word, so "copy-on-write" degenerates to copying it.
    retained: std::collections::BTreeMap<u64, u64>,
}

impl CounterService {
    /// Op encoding for "add k".
    pub fn add_op(k: u8) -> Vec<u8> {
        vec![0, k]
    }

    /// Op encoding for "get".
    pub fn get_op() -> Vec<u8> {
        vec![1]
    }

    /// Current register value.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Number of uncommitted operations.
    pub fn uncommitted(&self) -> usize {
        self.undo.len()
    }
}

impl Service for CounterService {
    fn execute(&mut self, _client: ClientId, op: &[u8]) -> Vec<u8> {
        self.undo.push(self.value);
        // Bytes beyond the opcode and operand are padding (used by tests
        // exercising large-request paths).
        if op.first() == Some(&0) {
            self.value += u64::from(op.get(1).copied().unwrap_or(0));
            self.dirty = true;
        }
        self.value.to_le_bytes().to_vec()
    }

    fn execute_read_only(&self, _client: ClientId, _op: &[u8]) -> Vec<u8> {
        self.value.to_le_bytes().to_vec()
    }

    fn is_read_only(&self, op: &[u8]) -> bool {
        op.first() == Some(&1)
    }

    fn state_digest(&self) -> Digest {
        bft_crypto::digest(&self.value.to_le_bytes())
    }

    fn snapshot(&self) -> Vec<u8> {
        self.value.to_le_bytes().to_vec()
    }

    fn restore(&mut self, snapshot: &[u8]) -> Result<(), RestoreError> {
        let bytes: [u8; 8] = snapshot
            .try_into()
            .map_err(|_| RestoreError(format!("want 8 bytes, got {}", snapshot.len())))?;
        self.value = u64::from_le_bytes(bytes);
        self.undo.clear();
        self.retained.clear();
        self.dirty = true;
        Ok(())
    }

    fn commit_prefix(&mut self, ops: usize) {
        let n = ops.min(self.undo.len());
        self.undo.drain(..n);
    }

    fn rollback_suffix(&mut self, ops: usize) {
        for _ in 0..ops {
            if let Some(prev) = self.undo.pop() {
                self.value = prev;
                self.dirty = true;
            }
        }
    }

    fn partition_size(&self, _p: u32) -> usize {
        8
    }

    fn take_dirty_partitions(&mut self) -> Vec<u32> {
        if std::mem::take(&mut self.dirty) {
            vec![0]
        } else {
            Vec::new()
        }
    }

    fn restore_partition(
        &mut self,
        _p: u32,
        bytes: &[u8],
        expect: &Digest,
    ) -> Result<(), RestoreError> {
        let arr: [u8; 8] = bytes
            .try_into()
            .map_err(|_| RestoreError(format!("want 8 bytes, got {}", bytes.len())))?;
        // Verify against the expected digest *before* mutating anything.
        if bft_crypto::digest(&arr) != *expect {
            return Err(RestoreError("partition digest mismatch".into()));
        }
        self.value = u64::from_le_bytes(arr);
        self.undo.clear();
        self.dirty = true;
        Ok(())
    }

    fn retain_checkpoint(&mut self, token: u64) -> bool {
        self.retained.insert(token, self.value);
        true
    }

    fn retained_partition(&self, token: u64, p: u32) -> Option<Vec<u8>> {
        if p != 0 {
            return None;
        }
        self.retained.get(&token).map(|v| v.to_le_bytes().to_vec())
    }

    fn release_checkpoints_below(&mut self, token: u64) {
        self.retained = self.retained.split_off(&token);
    }

    fn corrupt_silently(&mut self, salt: u64) {
        // Deliberately does NOT set `dirty`: the incremental tracker must
        // keep digesting the stale value it believes is current.
        self.value ^= 1 << (salt % 64);
        if salt & 1 == 1 {
            // Also corrupt the retained checkpoint copies, so recovery
            // cannot heal from a local restore and must exercise the
            // re-fetch path (restore_partition's verify fails).
            for v in self.retained.values_mut() {
                *v ^= 1 << (salt % 64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_service_is_inert() {
        let mut s = NullService;
        assert!(s.execute(9, b"anything").is_empty());
        assert_eq!(s.state_digest(), Digest::ZERO);
        s.restore(&s.snapshot()).expect("restore");
    }

    #[test]
    fn counter_executes_and_reads() {
        let mut s = CounterService::default();
        assert_eq!(s.execute(1, &CounterService::add_op(5)), 5u64.to_le_bytes());
        assert_eq!(s.execute(1, &CounterService::add_op(3)), 8u64.to_le_bytes());
        assert_eq!(
            s.execute_read_only(1, &CounterService::get_op()),
            8u64.to_le_bytes()
        );
        assert!(s.is_read_only(&CounterService::get_op()));
        assert!(!s.is_read_only(&CounterService::add_op(1)));
    }

    #[test]
    fn rollback_undoes_uncommitted_suffix() {
        let mut s = CounterService::default();
        s.execute(1, &CounterService::add_op(10));
        s.commit_prefix(1);
        s.execute(1, &CounterService::add_op(5));
        s.execute(1, &CounterService::add_op(2));
        assert_eq!(s.value(), 17);
        s.rollback_suffix(2);
        assert_eq!(s.value(), 10, "back to the committed prefix");
        assert_eq!(s.uncommitted(), 0);
    }

    #[test]
    fn commit_prefix_pins_operations() {
        let mut s = CounterService::default();
        s.execute(1, &CounterService::add_op(1));
        s.execute(1, &CounterService::add_op(2));
        s.commit_prefix(2);
        // Nothing uncommitted: rollback is a no-op.
        s.rollback_suffix(5);
        assert_eq!(s.value(), 3);
    }

    #[test]
    fn snapshot_restore_roundtrip_preserves_digest() {
        let mut s = CounterService::default();
        s.execute(1, &CounterService::add_op(42));
        let d = s.state_digest();
        let snap = s.snapshot();
        let mut t = CounterService::default();
        t.restore(&snap).expect("restore");
        assert_eq!(t.state_digest(), d);
        assert_eq!(t.value(), 42);
    }

    #[test]
    fn restore_rejects_malformed() {
        let mut s = CounterService::default();
        assert!(s.restore(&[1, 2, 3]).is_err());
    }

    #[test]
    fn dirty_tracking_drains() {
        let mut s = CounterService::default();
        assert!(s.take_dirty_partitions().is_empty(), "clean at start");
        s.execute(1, &CounterService::add_op(3));
        assert_eq!(s.take_dirty_partitions(), vec![0]);
        assert!(s.take_dirty_partitions().is_empty(), "drained");
        s.execute(1, &CounterService::get_op());
        assert!(
            s.take_dirty_partitions().is_empty(),
            "a no-op execution leaves the partition clean"
        );
        s.execute(1, &CounterService::add_op(1));
        s.rollback_suffix(2);
        assert_eq!(s.take_dirty_partitions(), vec![0], "rollback dirties");
    }

    #[test]
    fn retained_checkpoints_serve_old_versions() {
        let mut s = CounterService::default();
        s.execute(1, &CounterService::add_op(5));
        assert!(s.retain_checkpoint(10));
        s.execute(1, &CounterService::add_op(7));
        assert!(s.retain_checkpoint(20));
        assert_eq!(
            s.retained_partition(10, 0),
            Some(5u64.to_le_bytes().to_vec())
        );
        assert_eq!(
            s.retained_partition(20, 0),
            Some(12u64.to_le_bytes().to_vec())
        );
        assert_eq!(s.retained_partition(10, 1), None, "only partition 0 exists");
        s.release_checkpoints_below(20);
        assert_eq!(s.retained_partition(10, 0), None, "released");
        assert_eq!(
            s.retained_partition(20, 0),
            Some(12u64.to_le_bytes().to_vec()),
            "newer version survives"
        );
    }

    #[test]
    fn restore_partition_verifies_before_applying() {
        let mut s = CounterService::default();
        s.execute(1, &CounterService::add_op(9));
        let good = 42u64.to_le_bytes().to_vec();
        let expect = bft_crypto::digest(&good);
        // Wrong digest: state must be untouched.
        let bad_digest = bft_crypto::digest(b"something else");
        assert!(s.restore_partition(0, &good, &bad_digest).is_err());
        assert_eq!(s.value(), 9);
        // Malformed bytes: also untouched.
        assert!(s.restore_partition(0, &[1, 2], &expect).is_err());
        assert_eq!(s.value(), 9);
        // Good restore applies and matches the partition digest.
        s.restore_partition(0, &good, &expect).expect("restore");
        assert_eq!(s.value(), 42);
        assert_eq!(s.partition_digest(0), expect);
    }

    #[test]
    fn default_hooks_treat_state_as_one_partition() {
        let mut s = NullService;
        assert_eq!(s.partition_count(), 1);
        assert_eq!(s.partition_digest(0), s.state_digest());
        assert_eq!(s.partition_snapshot(0), s.snapshot());
        assert_eq!(
            s.take_dirty_partitions(),
            vec![0],
            "default is always dirty"
        );
        assert!(!s.retain_checkpoint(1), "default cannot retain");
        assert_eq!(s.retained_partition(1, 0), None);
    }

    #[test]
    fn silent_corruption_changes_state_without_dirtying() {
        let mut s = CounterService::default();
        s.execute(1, &CounterService::add_op(5));
        s.take_dirty_partitions();
        let before = s.state_digest();
        s.corrupt_silently(2);
        assert_ne!(s.state_digest(), before, "the state really changed");
        assert!(
            s.take_dirty_partitions().is_empty(),
            "corruption must be invisible to the dirty tracker"
        );
        // Odd salts also poison retained checkpoint copies.
        let mut t = CounterService::default();
        t.execute(1, &CounterService::add_op(5));
        assert!(t.retain_checkpoint(3));
        t.corrupt_silently(7);
        assert_ne!(
            t.retained_partition(3, 0),
            Some(5u64.to_le_bytes().to_vec()),
            "odd salt corrupts retained versions too"
        );
    }

    #[test]
    fn digests_distinguish_states() {
        let mut a = CounterService::default();
        let mut b = CounterService::default();
        a.execute(1, &CounterService::add_op(1));
        b.execute(1, &CounterService::add_op(2));
        assert_ne!(a.state_digest(), b.state_digest());
    }
}
