//! The deterministic state machine interface.
//!
//! BFT replicates any service expressible as a deterministic state machine
//! (Section 2): all non-faulty replicas must produce identical results when
//! executing the same operations in the same order. The extra methods
//! support the protocol machinery:
//!
//! - `state_digest`/`snapshot`/`restore` for checkpoints and state
//!   transfer;
//! - `commit_prefix`/`rollback_suffix` for the *tentative execution*
//!   optimization — a tentatively executed batch may be undone if a view
//!   change reorders it;
//! - `execute_read_only` for the *read-only* optimization;
//! - `exec_cost_ns` so the simulation can charge the CPU time the real
//!   service would use.

use crate::types::ClientId;
use bft_crypto::md5::Digest;

/// Error restoring a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestoreError(pub String);

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "snapshot restore failed: {}", self.0)
    }
}

impl std::error::Error for RestoreError {}

/// A deterministic state machine replicated by the BFT library.
pub trait Service: 'static {
    /// Executes a (possibly state-mutating) operation and returns its
    /// result. Implementations must record enough undo information to
    /// support [`Service::rollback_suffix`] until the operation is covered
    /// by [`Service::commit_prefix`].
    fn execute(&mut self, client: ClientId, op: &[u8]) -> Vec<u8>;

    /// Executes an operation that [`Service::is_read_only`] classified as
    /// read-only, without mutating state.
    fn execute_read_only(&self, client: ClientId, op: &[u8]) -> Vec<u8>;

    /// True if `op` cannot modify service state. Replicas *verify* this
    /// classification; a faulty client cannot corrupt state by mislabeling
    /// a write as a read.
    fn is_read_only(&self, op: &[u8]) -> bool;

    /// Simulated CPU cost of executing `op` (service computation the paper
    /// says reduces the relative overhead of replication).
    fn exec_cost_ns(&self, _op: &[u8], _result: &[u8]) -> u64 {
        0
    }

    /// A digest of the current logical state. Must be a deterministic
    /// function of the sequence of executed operations, and must be
    /// preserved by a `snapshot`/`restore` round trip.
    fn state_digest(&self) -> Digest;

    /// Serializes the full state for state transfer and checkpointing.
    fn snapshot(&self) -> Vec<u8>;

    /// Replaces the state from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`RestoreError`] if the snapshot is malformed; the state is
    /// unspecified afterwards and the caller must retry with a good
    /// snapshot.
    fn restore(&mut self, snapshot: &[u8]) -> Result<(), RestoreError>;

    /// Declares the `ops` oldest uncommitted executions final; their undo
    /// information may be discarded.
    fn commit_prefix(&mut self, _ops: usize) {}

    /// Undoes the `ops` most recent executions (those not yet covered by
    /// [`Service::commit_prefix`]), newest first.
    fn rollback_suffix(&mut self, _ops: usize) {}
}

/// A service with no state whose operations return empty results. The
/// skeleton used when only protocol behaviour matters.
#[derive(Debug, Default, Clone)]
pub struct NullService;

impl Service for NullService {
    fn execute(&mut self, _client: ClientId, _op: &[u8]) -> Vec<u8> {
        Vec::new()
    }
    fn execute_read_only(&self, _client: ClientId, _op: &[u8]) -> Vec<u8> {
        Vec::new()
    }
    fn is_read_only(&self, _op: &[u8]) -> bool {
        false
    }
    fn state_digest(&self) -> Digest {
        Digest::ZERO
    }
    fn snapshot(&self) -> Vec<u8> {
        Vec::new()
    }
    fn restore(&mut self, _snapshot: &[u8]) -> Result<(), RestoreError> {
        Ok(())
    }
}

/// A tiny deterministic service used throughout the test suite: a single
/// `u64` register supporting `add` and `get`, with full undo support so
/// rollback paths can be exercised.
///
/// Operations: `[0, k]` adds `k` (1 byte) to the register and returns the
/// new value; `[1]` reads the register (read-only).
#[derive(Debug, Default, Clone)]
pub struct CounterService {
    value: u64,
    /// Undo log: previous values of executed-but-uncommitted operations.
    undo: Vec<u64>,
}

impl CounterService {
    /// Op encoding for "add k".
    pub fn add_op(k: u8) -> Vec<u8> {
        vec![0, k]
    }

    /// Op encoding for "get".
    pub fn get_op() -> Vec<u8> {
        vec![1]
    }

    /// Current register value.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Number of uncommitted operations.
    pub fn uncommitted(&self) -> usize {
        self.undo.len()
    }
}

impl Service for CounterService {
    fn execute(&mut self, _client: ClientId, op: &[u8]) -> Vec<u8> {
        self.undo.push(self.value);
        // Bytes beyond the opcode and operand are padding (used by tests
        // exercising large-request paths).
        if op.first() == Some(&0) {
            self.value += u64::from(op.get(1).copied().unwrap_or(0));
        }
        self.value.to_le_bytes().to_vec()
    }

    fn execute_read_only(&self, _client: ClientId, _op: &[u8]) -> Vec<u8> {
        self.value.to_le_bytes().to_vec()
    }

    fn is_read_only(&self, op: &[u8]) -> bool {
        op.first() == Some(&1)
    }

    fn state_digest(&self) -> Digest {
        bft_crypto::digest(&self.value.to_le_bytes())
    }

    fn snapshot(&self) -> Vec<u8> {
        self.value.to_le_bytes().to_vec()
    }

    fn restore(&mut self, snapshot: &[u8]) -> Result<(), RestoreError> {
        let bytes: [u8; 8] = snapshot
            .try_into()
            .map_err(|_| RestoreError(format!("want 8 bytes, got {}", snapshot.len())))?;
        self.value = u64::from_le_bytes(bytes);
        self.undo.clear();
        Ok(())
    }

    fn commit_prefix(&mut self, ops: usize) {
        let n = ops.min(self.undo.len());
        self.undo.drain(..n);
    }

    fn rollback_suffix(&mut self, ops: usize) {
        for _ in 0..ops {
            if let Some(prev) = self.undo.pop() {
                self.value = prev;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_service_is_inert() {
        let mut s = NullService;
        assert!(s.execute(9, b"anything").is_empty());
        assert_eq!(s.state_digest(), Digest::ZERO);
        s.restore(&s.snapshot()).expect("restore");
    }

    #[test]
    fn counter_executes_and_reads() {
        let mut s = CounterService::default();
        assert_eq!(s.execute(1, &CounterService::add_op(5)), 5u64.to_le_bytes());
        assert_eq!(s.execute(1, &CounterService::add_op(3)), 8u64.to_le_bytes());
        assert_eq!(
            s.execute_read_only(1, &CounterService::get_op()),
            8u64.to_le_bytes()
        );
        assert!(s.is_read_only(&CounterService::get_op()));
        assert!(!s.is_read_only(&CounterService::add_op(1)));
    }

    #[test]
    fn rollback_undoes_uncommitted_suffix() {
        let mut s = CounterService::default();
        s.execute(1, &CounterService::add_op(10));
        s.commit_prefix(1);
        s.execute(1, &CounterService::add_op(5));
        s.execute(1, &CounterService::add_op(2));
        assert_eq!(s.value(), 17);
        s.rollback_suffix(2);
        assert_eq!(s.value(), 10, "back to the committed prefix");
        assert_eq!(s.uncommitted(), 0);
    }

    #[test]
    fn commit_prefix_pins_operations() {
        let mut s = CounterService::default();
        s.execute(1, &CounterService::add_op(1));
        s.execute(1, &CounterService::add_op(2));
        s.commit_prefix(2);
        // Nothing uncommitted: rollback is a no-op.
        s.rollback_suffix(5);
        assert_eq!(s.value(), 3);
    }

    #[test]
    fn snapshot_restore_roundtrip_preserves_digest() {
        let mut s = CounterService::default();
        s.execute(1, &CounterService::add_op(42));
        let d = s.state_digest();
        let snap = s.snapshot();
        let mut t = CounterService::default();
        t.restore(&snap).expect("restore");
        assert_eq!(t.state_digest(), d);
        assert_eq!(t.value(), 42);
    }

    #[test]
    fn restore_rejects_malformed() {
        let mut s = CounterService::default();
        assert!(s.restore(&[1, 2, 3]).is_err());
    }

    #[test]
    fn digests_distinguish_states() {
        let mut a = CounterService::default();
        let mut b = CounterService::default();
        a.execute(1, &CounterService::add_op(1));
        b.execute(1, &CounterService::add_op(2));
        assert_ne!(a.state_digest(), b.state_digest());
    }
}
