#![warn(missing_docs)]

//! The BFT state-machine-replication library — a reproduction of the
//! system evaluated in *Byzantine Fault Tolerance Can Be Fast* (Castro &
//! Liskov, DSN 2001).
//!
//! BFT replicates any deterministic [`service::Service`] across `3f + 1`
//! replicas, tolerating `f` Byzantine faults while providing
//! linearizability to correct clients. It authenticates all protocol
//! messages with symmetric-key MACs (public-key cryptography is used only
//! for session-key establishment), and implements the paper's normal-case
//! optimizations:
//!
//! - digest replies,
//! - tentative execution,
//! - read-only operations,
//! - request batching with a sliding window,
//! - separate request transmission, and
//! - (optionally) piggybacked commits.
//!
//! Replicas and clients are [`bft_sim::Node`]s; a cluster runs inside the
//! deterministic simulation from `bft-sim`, which models the paper's
//! testbed (600 MHz Pentium III machines on 100 Mb/s switched Ethernet).
//!
//! # Quickstart
//!
//! ```
//! use bft_core::prelude::*;
//!
//! // Closed-loop driver issuing increments against a counter service.
//! struct Adder { left: u32 }
//! impl ClientDriver for Adder {
//!     fn on_start(&mut self, api: &mut ClientApi<'_, '_>) {
//!         api.submit(CounterService::add_op(1), false);
//!     }
//!     fn on_complete(&mut self, api: &mut ClientApi<'_, '_>, _r: &[u8], _lat: u64) {
//!         self.left -= 1;
//!         if self.left > 0 {
//!             api.submit(CounterService::add_op(1), false);
//!         }
//!     }
//! }
//!
//! let cfg = Config::new(1); // 4 replicas, f = 1
//! let mut cluster = Cluster::new(42, NetConfig::LOSSLESS_100MBPS, cfg, |_| {
//!     CounterService::default()
//! });
//! cluster.add_client(Adder { left: 10 });
//! cluster.run_for(bft_sim::dur::secs(2));
//! assert_eq!(cluster.completed_ops(), 10);
//! assert_eq!(cluster.replica::<CounterService>(0).service().value(), 10);
//! ```

pub mod checkpoint;
pub mod client;
pub mod cluster;
pub mod config;
pub mod fuzz;
pub mod invariants;
pub mod log;
pub mod messages;
pub mod recovery;
pub mod replica;
pub mod service;
pub mod types;
pub mod viewchange;
pub mod wire;

pub use client::{Client, ClientApi, ClientBehavior, ClientDriver};
pub use cluster::{derive_seed, Cluster, ClusterBuilder};
pub use config::{Config, Optimizations};
pub use invariants::{InvariantChecker, OpEvent, ReplicaAudit, Violation};
pub use messages::{Msg, Packet};
pub use recovery::{RecoveryManager, RecoveryStage};
pub use replica::{Behavior, Replica};
pub use service::{CounterService, NullService, Service};
pub use types::{ClientId, Quorums, ReplicaId, SeqNum, Timestamp, View};

/// Common imports for building and driving clusters.
pub mod prelude {
    pub use crate::client::{Client, ClientApi, ClientDriver};
    pub use crate::cluster::{derive_seed, Cluster, ClusterBuilder};
    pub use crate::config::{Config, Optimizations};
    pub use crate::invariants::{InvariantChecker, Violation};
    pub use crate::messages::Packet;
    pub use crate::replica::{Behavior, Replica};
    pub use crate::service::{CounterService, NullService, Service};
    pub use crate::types::{ClientId, Quorums, ReplicaId};
    pub use bft_sim::chaos::{ChaosConfig, FaultPlan};
    pub use bft_sim::{dur, NetConfig, SimTime};
}
