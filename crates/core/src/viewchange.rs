//! View-change bookkeeping: vote collection and the new-view computation.
//!
//! When backups suspect the primary they multicast VIEW-CHANGE messages;
//! the primary of the next view collects `2f+1` of them, recomputes the
//! ordering decisions that must survive (the `O` set), and multicasts a
//! NEW-VIEW. Backups *re-derive* `O` from the included view-change
//! messages and refuse the new view if the primary computed it wrong.

use crate::messages::{NewView, PreparedInfo, ViewChange, NULL_DIGEST};
use crate::types::{Quorums, ReplicaId, SeqNum, View};
use bft_crypto::md5::Digest;
use std::collections::{BTreeMap, BTreeSet};

/// Collected view-change votes, per target view. Both levels are
/// ordered maps so every replica walks votes in the same order.
#[derive(Debug, Clone, Default)]
pub struct ViewChangeSet {
    votes: BTreeMap<View, BTreeMap<ReplicaId, ViewChange>>,
}

impl ViewChangeSet {
    /// Creates an empty vote set.
    pub fn new() -> ViewChangeSet {
        ViewChangeSet::default()
    }

    /// Records a vote (later votes from the same replica for the same view
    /// replace earlier ones).
    pub fn add(&mut self, vc: ViewChange) {
        self.votes
            .entry(vc.new_view)
            .or_default()
            .insert(vc.replica, vc);
    }

    /// Number of distinct voters for `view`.
    pub fn count(&self, view: View) -> usize {
        self.votes.get(&view).map_or(0, BTreeMap::len)
    }

    /// True if `replica` has voted for `view`.
    pub fn has_vote(&self, view: View, replica: ReplicaId) -> bool {
        self.votes
            .get(&view)
            .is_some_and(|m| m.contains_key(&replica))
    }

    /// The votes for `view` in replica-id order, if a `2f+1` quorum
    /// exists. Exactly `2f+1` votes are returned (the lowest replica ids),
    /// so every replica derives the same set.
    pub fn quorum(&self, view: View, q: &Quorums) -> Option<Vec<ViewChange>> {
        let votes = self.votes.get(&view)?;
        if votes.len() < q.view_change_quorum() {
            return None;
        }
        // BTreeMap iteration is already replica-id order.
        Some(
            votes
                .values()
                .take(q.view_change_quorum())
                .cloned()
                .collect(),
        )
    }

    /// The smallest view strictly greater than `current` for which at
    /// least `f+1` replicas have voted — evidence a correct replica should
    /// join that view change.
    pub fn join_view(&self, current: View, q: &Quorums) -> Option<View> {
        self.votes
            .iter()
            .find(|&(&v, m)| v > current && m.len() >= q.witness_quorum())
            .map(|(&v, _)| v)
    }

    /// Drops votes for views at or below `view` (already installed).
    pub fn prune_through(&mut self, view: View) {
        self.votes = self.votes.split_off(&(view + 1));
    }
}

/// The deterministic new-view computation shared by the new primary
/// (building) and the backups (validating).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NewViewPlan {
    /// `min-s`: the highest stable checkpoint among the view changes.
    pub min_s: SeqNum,
    /// Digest of that checkpoint (asserted by the vote that carried it).
    pub min_s_digest: Digest,
    /// `max-s`: the highest prepared sequence number.
    pub max_s: SeqNum,
    /// The `O` set: `(seq, digest)` for each `min_s < seq <= max_s`, with
    /// [`NULL_DIGEST`] where no vote carried a prepared certificate.
    pub pre_prepares: Vec<(SeqNum, Digest)>,
}

/// Computes the new-view plan from a quorum of view-change messages.
pub fn compute_plan(view_changes: &[ViewChange], q: &Quorums) -> NewViewPlan {
    let (min_s, min_s_digest) = view_changes
        .iter()
        .map(|vc| (vc.last_stable, vc.stable_digest))
        .max_by_key(|&(s, _)| s)
        .unwrap_or((0, Digest::ZERO));

    // For each sequence number above min_s, the certificate from the
    // highest view wins (certificates for the same (view, seq) cannot
    // conflict among correct replicas).
    let mut best: BTreeMap<SeqNum, PreparedInfo> = BTreeMap::new();
    for vc in view_changes {
        for info in &vc.prepared {
            if info.seq <= min_s {
                continue;
            }
            match best.get(&info.seq) {
                Some(cur) if cur.view >= info.view => {}
                _ => {
                    best.insert(info.seq, *info);
                }
            }
        }
    }

    // Fast-path candidates: a batch backed by `f+1` *distinct* replicas'
    // matching fast-vote reports is adopted like a prepared certificate.
    // A fast-committed batch always clears this bar — all `n` replicas
    // voted for it, so any `2f+1` view-change quorum carries at least
    // `f+1` correct matching reports — while a conflicting candidate at
    // the same view cannot: correct replicas vote once per (view, seq),
    // so a second digest can only be backed by the `≤ f` Byzantine
    // replicas. Candidates that merely gathered votes without
    // fast-committing are safe to adopt too (they are valid proposals
    // from the old view; the reply cache deduplicates re-execution).
    // Classic certificates win ties at the same view: a classically
    // committed batch is only guaranteed a certificate reporter — not
    // `f+1` fast-vote reporters — in a worst-case quorum, so the
    // certificate must not be outvoted by a bare-vote candidate.
    let mut support: BTreeMap<(SeqNum, View, Digest), BTreeSet<ReplicaId>> = BTreeMap::new();
    for vc in view_changes {
        for info in &vc.fast_votes {
            if info.seq <= min_s {
                continue;
            }
            support
                .entry((info.seq, info.view, info.batch_digest))
                .or_default()
                .insert(vc.replica);
        }
    }
    for (&(seq, view, digest), reporters) in &support {
        if reporters.len() < q.witness_quorum() {
            continue;
        }
        match best.get(&seq) {
            Some(cur) if cur.view >= view => {}
            _ => {
                best.insert(
                    seq,
                    PreparedInfo {
                        seq,
                        view,
                        batch_digest: digest,
                    },
                );
            }
        }
    }
    let max_s = best.keys().next_back().copied().unwrap_or(min_s);
    let pre_prepares = (min_s + 1..=max_s)
        .map(|seq| (seq, best.get(&seq).map_or(NULL_DIGEST, |i| i.batch_digest)))
        .collect();
    NewViewPlan {
        min_s,
        min_s_digest,
        max_s,
        pre_prepares,
    }
}

/// Validation failures for a NEW-VIEW message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NewViewError {
    /// Fewer than `2f+1` distinct view-change votes.
    InsufficientVotes,
    /// A vote targets a different view.
    MixedViews,
    /// The `O` set does not match the deterministic recomputation.
    WrongComputation,
}

impl std::fmt::Display for NewViewError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NewViewError::InsufficientVotes => write!(f, "insufficient view-change votes"),
            NewViewError::MixedViews => write!(f, "view-change votes for mixed views"),
            NewViewError::WrongComputation => write!(f, "new-view O set was computed incorrectly"),
        }
    }
}

impl std::error::Error for NewViewError {}

/// Validates a NEW-VIEW against the deterministic recomputation.
///
/// # Errors
///
/// Returns the first [`NewViewError`] found.
pub fn validate_new_view(nv: &NewView, q: &Quorums) -> Result<NewViewPlan, NewViewError> {
    let mut voters: Vec<ReplicaId> = nv.view_changes.iter().map(|vc| vc.replica).collect();
    voters.sort_unstable();
    voters.dedup();
    if voters.len() < q.view_change_quorum() {
        return Err(NewViewError::InsufficientVotes);
    }
    if nv.view_changes.iter().any(|vc| vc.new_view != nv.view) {
        return Err(NewViewError::MixedViews);
    }
    let plan = compute_plan(&nv.view_changes, q);
    if plan.pre_prepares != nv.pre_prepares {
        return Err(NewViewError::WrongComputation);
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> Quorums {
        Quorums::minimal(1)
    }

    fn d(tag: u8) -> Digest {
        bft_crypto::digest(&[tag])
    }

    fn vc(
        replica: ReplicaId,
        new_view: View,
        last_stable: SeqNum,
        prepared: Vec<PreparedInfo>,
    ) -> ViewChange {
        ViewChange {
            new_view,
            last_stable,
            stable_digest: d(last_stable as u8),
            prepared,
            fast_votes: vec![],
            replica,
        }
    }

    fn vcf(
        replica: ReplicaId,
        new_view: View,
        last_stable: SeqNum,
        prepared: Vec<PreparedInfo>,
        fast_votes: Vec<PreparedInfo>,
    ) -> ViewChange {
        ViewChange {
            fast_votes,
            ..vc(replica, new_view, last_stable, prepared)
        }
    }

    fn pi(seq: SeqNum, view: View, tag: u8) -> PreparedInfo {
        PreparedInfo {
            seq,
            view,
            batch_digest: d(tag),
        }
    }

    #[test]
    fn vote_counting_and_quorum() {
        let mut set = ViewChangeSet::new();
        set.add(vc(0, 1, 0, vec![]));
        set.add(vc(1, 1, 0, vec![]));
        assert_eq!(set.count(1), 2);
        assert!(set.quorum(1, &q()).is_none());
        set.add(vc(2, 1, 0, vec![]));
        let quorum = set.quorum(1, &q()).expect("quorum");
        assert_eq!(quorum.len(), 3);
        // Duplicate votes do not inflate the count.
        set.add(vc(2, 1, 0, vec![]));
        assert_eq!(set.count(1), 3);
    }

    #[test]
    fn quorum_is_deterministic() {
        let mut a = ViewChangeSet::new();
        let mut b = ViewChangeSet::new();
        for &r in &[3u32, 0, 2, 1] {
            a.add(vc(r, 1, 0, vec![]));
        }
        for &r in &[1u32, 2, 0, 3] {
            b.add(vc(r, 1, 0, vec![]));
        }
        assert_eq!(a.quorum(1, &q()), b.quorum(1, &q()));
    }

    #[test]
    fn join_view_needs_f_plus_one() {
        let mut set = ViewChangeSet::new();
        set.add(vc(1, 3, 0, vec![]));
        assert_eq!(set.join_view(0, &q()), None);
        set.add(vc(2, 3, 0, vec![]));
        assert_eq!(set.join_view(0, &q()), Some(3));
        assert_eq!(set.join_view(3, &q()), None, "not above current");
    }

    #[test]
    fn prune_discards_installed_views() {
        let mut set = ViewChangeSet::new();
        set.add(vc(0, 1, 0, vec![]));
        set.add(vc(0, 5, 0, vec![]));
        set.prune_through(1);
        assert_eq!(set.count(1), 0);
        assert_eq!(set.count(5), 1);
    }

    #[test]
    fn plan_spans_min_to_max_with_nulls() {
        let votes = [
            vc(0, 1, 128, vec![pi(130, 0, 7)]),
            vc(1, 1, 100, vec![pi(132, 0, 9)]),
            vc(2, 1, 128, vec![]),
        ];
        let plan = compute_plan(&votes, &q());
        assert_eq!(plan.min_s, 128);
        assert_eq!(plan.max_s, 132);
        assert_eq!(
            plan.pre_prepares,
            vec![
                (129, NULL_DIGEST),
                (130, d(7)),
                (131, NULL_DIGEST),
                (132, d(9)),
            ]
        );
    }

    #[test]
    fn higher_view_certificate_wins() {
        let votes = [
            vc(0, 2, 0, vec![pi(1, 0, 7)]),
            vc(1, 2, 0, vec![pi(1, 1, 9)]),
            vc(2, 2, 0, vec![]),
        ];
        let plan = compute_plan(&votes, &q());
        assert_eq!(plan.pre_prepares, vec![(1, d(9))]);
    }

    #[test]
    fn fast_candidate_with_witness_support_is_adopted() {
        // No prepared certificate anywhere, but f+1 = 2 distinct replicas
        // report having voted for the same batch: the plan must carry it
        // (this is how a fast-committed batch survives the view change).
        let votes = [
            vcf(0, 1, 0, vec![], vec![pi(1, 0, 7)]),
            vcf(1, 1, 0, vec![], vec![pi(1, 0, 7)]),
            vcf(2, 1, 0, vec![], vec![]),
        ];
        let plan = compute_plan(&votes, &q());
        assert_eq!(plan.pre_prepares, vec![(1, d(7))]);
    }

    #[test]
    fn fast_candidate_below_witness_support_is_ignored() {
        let votes = [
            vcf(0, 1, 0, vec![], vec![pi(1, 0, 7)]),
            vcf(1, 1, 0, vec![], vec![]),
            vcf(2, 1, 0, vec![], vec![]),
        ];
        let plan = compute_plan(&votes, &q());
        assert!(
            plan.pre_prepares.is_empty(),
            "a single report may be Byzantine; it must not enter the plan"
        );
    }

    #[test]
    fn classic_certificate_beats_fast_candidate_at_same_view() {
        // An equivocating primary left a prepared certificate for d(7)
        // and a victim's lone-plus-Byzantine fast votes for d(9) in the
        // same view. The certificate must win: d(7) may be classically
        // committed, while d(9) provably never fast-committed (a fast
        // commit would have made every correct replica vote d(9)).
        let votes = [
            vcf(0, 1, 0, vec![pi(1, 0, 7)], vec![pi(1, 0, 9)]),
            vcf(1, 1, 0, vec![], vec![pi(1, 0, 9)]),
            vcf(2, 1, 0, vec![], vec![]),
        ];
        let plan = compute_plan(&votes, &q());
        assert_eq!(plan.pre_prepares, vec![(1, d(7))]);
    }

    #[test]
    fn higher_view_fast_candidate_beats_older_certificate() {
        let votes = [
            vcf(0, 2, 0, vec![pi(1, 0, 7)], vec![]),
            vcf(1, 2, 0, vec![], vec![pi(1, 1, 9)]),
            vcf(2, 2, 0, vec![], vec![pi(1, 1, 9)]),
        ];
        let plan = compute_plan(&votes, &q());
        assert_eq!(plan.pre_prepares, vec![(1, d(9))]);
    }

    #[test]
    fn duplicate_fast_reports_from_one_replica_do_not_inflate_support() {
        // A Byzantine replica lists the same candidate twice in one
        // message: support counts distinct reporters, so it stays at 1.
        let votes = [
            vcf(0, 1, 0, vec![], vec![pi(1, 0, 7), pi(1, 0, 7)]),
            vcf(1, 1, 0, vec![], vec![]),
            vcf(2, 1, 0, vec![], vec![]),
        ];
        let plan = compute_plan(&votes, &q());
        assert!(plan.pre_prepares.is_empty());
    }

    #[test]
    fn fast_votes_below_min_s_are_dropped() {
        let votes = [
            vcf(0, 1, 128, vec![], vec![pi(100, 0, 7)]),
            vcf(1, 1, 128, vec![], vec![pi(100, 0, 7)]),
            vcf(2, 1, 128, vec![], vec![]),
        ];
        let plan = compute_plan(&votes, &q());
        assert_eq!(plan.max_s, 128);
        assert!(plan.pre_prepares.is_empty());
    }

    #[test]
    fn certificates_below_min_s_are_dropped() {
        let votes = [
            vc(0, 1, 128, vec![pi(100, 0, 7)]),
            vc(1, 1, 128, vec![]),
            vc(2, 1, 128, vec![]),
        ];
        let plan = compute_plan(&votes, &q());
        assert_eq!(plan.max_s, 128);
        assert!(plan.pre_prepares.is_empty());
    }

    #[test]
    fn empty_votes_plan_is_empty() {
        let plan = compute_plan(&[], &q());
        assert_eq!(plan.min_s, 0);
        assert!(plan.pre_prepares.is_empty());
    }

    #[test]
    fn validate_accepts_correct_new_view() {
        let votes = vec![
            vc(0, 1, 0, vec![pi(1, 0, 7)]),
            vc(1, 1, 0, vec![]),
            vc(2, 1, 0, vec![]),
        ];
        let plan = compute_plan(&votes, &q());
        let nv = NewView {
            view: 1,
            view_changes: votes,
            pre_prepares: plan.pre_prepares.clone(),
            batches: vec![],
        };
        assert_eq!(validate_new_view(&nv, &q()), Ok(plan));
    }

    #[test]
    fn validate_rejects_wrong_o_set() {
        let votes = vec![
            vc(0, 1, 0, vec![pi(1, 0, 7)]),
            vc(1, 1, 0, vec![]),
            vc(2, 1, 0, vec![]),
        ];
        let nv = NewView {
            view: 1,
            view_changes: votes,
            pre_prepares: vec![(1, d(9))], // forged digest
            batches: vec![],
        };
        assert_eq!(
            validate_new_view(&nv, &q()),
            Err(NewViewError::WrongComputation)
        );
    }

    #[test]
    fn validate_rejects_thin_or_mixed_quorums() {
        let votes = vec![vc(0, 1, 0, vec![]), vc(1, 1, 0, vec![])];
        let nv = NewView {
            view: 1,
            view_changes: votes,
            pre_prepares: vec![],
            batches: vec![],
        };
        assert_eq!(
            validate_new_view(&nv, &q()),
            Err(NewViewError::InsufficientVotes)
        );

        let votes = vec![
            vc(0, 1, 0, vec![]),
            vc(1, 2, 0, vec![]),
            vc(2, 1, 0, vec![]),
        ];
        let nv = NewView {
            view: 1,
            view_changes: votes,
            pre_prepares: vec![],
            batches: vec![],
        };
        assert_eq!(validate_new_view(&nv, &q()), Err(NewViewError::MixedViews));
    }

    #[test]
    fn duplicate_voters_rejected() {
        let votes = vec![
            vc(0, 1, 0, vec![]),
            vc(0, 1, 0, vec![]),
            vc(1, 1, 0, vec![]),
        ];
        let nv = NewView {
            view: 1,
            view_changes: votes,
            pre_prepares: vec![],
            batches: vec![],
        };
        assert_eq!(
            validate_new_view(&nv, &q()),
            Err(NewViewError::InsufficientVotes)
        );
    }
}
